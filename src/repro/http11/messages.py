"""HTTP/1.1 message model: headers, requests, responses, wire codecs.

SOAP rides on HTTP POST; the paper attributes part of SOAP-bin's remaining
overhead versus Sun RPC to exactly this layer ("The delay is mainly due to
SOAP-bin's use of HTTP for its transactions", §IV-A), so the reproduction
needs a real HTTP implementation rather than a function call in disguise —
header bytes, request lines and parsing all cost what they cost.

Scope: HTTP/1.1 with ``Content-Length`` framing and persistent connections.
``Transfer-Encoding: chunked`` is not implemented (both endpoints are ours
and always know their body sizes); messages carrying it are rejected.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from .errors import HttpConnectionClosed, HttpParseError, HttpTooLarge

#: Default cap on header-block size: plenty for SOAPAction + quality
#: headers.  Per-server overrides: ``HttpServer(max_header_bytes=...)``.
MAX_HEADER_BYTES = 64 * 1024
#: Default cap on body size (the biggest paper workload is ~1 MB images;
#: 256 MB leaves room for the stress tests).  Per-server overrides:
#: ``HttpServer(max_body_bytes=...)``.
MAX_BODY_BYTES = 256 * 1024 * 1024

REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class Headers:
    """A case-insensitive, order-preserving header multimap."""

    def __init__(self, items: Optional[List[Tuple[str, str]]] = None) -> None:
        self._items: List[Tuple[str, str]] = []
        if items:
            for name, value in items:
                self.add(name, value)

    def add(self, name: str, value: str) -> None:
        self._items.append((name, str(value)))

    def set(self, name: str, value: str) -> None:
        """Replace all values of ``name`` with one value."""
        lower = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lower]
        self._items.append((name, str(value)))

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        lower = name.lower()
        for n, v in self._items:
            if n.lower() == lower:
                return v
        return default

    def get_all(self, name: str) -> List[str]:
        lower = name.lower()
        return [v for n, v in self._items if n.lower() == lower]

    def remove(self, name: str) -> None:
        lower = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lower]

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"


@dataclass
class Request:
    """An HTTP request."""

    method: str = "POST"
    target: str = "/"
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "")

    def wants_keep_alive(self) -> bool:
        token = (self.headers.get("Connection") or "").lower()
        if self.version == "HTTP/1.0":
            return token == "keep-alive"
        return token != "close"

    def to_bytes(self) -> bytes:
        return _serialize(f"{self.method} {self.target} {self.version}",
                          self.headers, self.body)


@dataclass
class Response:
    """An HTTP response."""

    status: int = 200
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def reason(self) -> str:
        return REASONS.get(self.status, "Unknown")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "")

    def to_bytes(self) -> bytes:
        return _serialize(f"{self.version} {self.status} {self.reason}",
                          self.headers, self.body)

    @classmethod
    def text(cls, status: int, message: str) -> "Response":
        resp = cls(status=status, body=message.encode("utf-8"))
        resp.headers.set("Content-Type", "text/plain; charset=utf-8")
        return resp


def _serialize(start_line: str, headers: Headers, body: bytes) -> bytes:
    out = io.BytesIO()
    out.write(start_line.encode("latin-1"))
    out.write(b"\r\n")
    has_length = "content-length" in {n.lower() for n, _ in headers}
    for name, value in headers:
        out.write(f"{name}: {value}\r\n".encode("latin-1"))
    if not has_length:
        out.write(f"Content-Length: {len(body)}\r\n".encode("latin-1"))
    out.write(b"\r\n")
    out.write(body)
    return out.getvalue()


# ----------------------------------------------------------------------
# wire parsing
# ----------------------------------------------------------------------

class LineReader:
    """Buffered reader over a ``recv``-style byte source."""

    def __init__(self, recv, bufsize: int = 65536) -> None:
        self._recv = recv
        self._bufsize = bufsize
        self._buf = b""

    def _fill(self) -> bool:
        chunk = self._recv(self._bufsize)
        if not chunk:
            return False
        self._buf += chunk
        return True

    def read_line(self, limit: int = MAX_HEADER_BYTES) -> bytes:
        """Read one CRLF-terminated line (returned without the CRLF)."""
        while True:
            idx = self._buf.find(b"\r\n")
            if idx >= 0:
                line, self._buf = self._buf[:idx], self._buf[idx + 2:]
                return line
            if len(self._buf) > limit:
                raise HttpTooLarge("header line too long")
            if not self._fill():
                if self._buf:
                    raise HttpParseError("connection closed mid-line")
                raise HttpConnectionClosed("connection closed")

    def read_exact(self, n: int) -> bytes:
        while len(self._buf) < n:
            if not self._fill():
                raise HttpParseError(
                    f"connection closed with {n - len(self._buf)} body "
                    f"bytes outstanding")
        data, self._buf = self._buf[:n], self._buf[n:]
        return data

    def at_start(self) -> bool:
        """True when no buffered bytes are pending (between messages)."""
        return not self._buf


def _read_headers(reader: LineReader,
                  max_header_bytes: int = MAX_HEADER_BYTES) -> Headers:
    headers = Headers()
    total = 0
    while True:
        line = reader.read_line(limit=max_header_bytes)
        if not line:
            return headers
        total += len(line)
        if total > max_header_bytes:
            raise HttpTooLarge(
                f"header block exceeds limit of {max_header_bytes} bytes")
        if b":" not in line:
            raise HttpParseError(f"bad header line {line!r}")
        name, _, value = line.partition(b":")
        headers.add(name.decode("latin-1").strip(),
                    value.decode("latin-1").strip())


def _read_body(reader: LineReader, headers: Headers,
               max_body_bytes: int = MAX_BODY_BYTES) -> bytes:
    if headers.get("Transfer-Encoding"):
        raise HttpParseError("Transfer-Encoding is not supported")
    raw_length = headers.get("Content-Length")
    if raw_length is None:
        return b""
    try:
        length = int(raw_length)
    except ValueError:
        raise HttpParseError(f"bad Content-Length {raw_length!r}")
    if length < 0:
        raise HttpParseError("negative Content-Length")
    if length > max_body_bytes:
        raise HttpTooLarge(
            f"body of {length} bytes exceeds limit of "
            f"{max_body_bytes} bytes")
    return reader.read_exact(length)


def read_request(reader: LineReader,
                 max_header_bytes: int = MAX_HEADER_BYTES,
                 max_body_bytes: int = MAX_BODY_BYTES) -> Request:
    """Parse one request from the reader.

    Raises :class:`HttpConnectionClosed` when the peer closed cleanly
    between requests (the keep-alive loop exits on that).  The size limits
    default to the module constants; servers pass their own
    (``HttpServer(max_body_bytes=..., max_header_bytes=...)``).
    """
    line = reader.read_line(limit=max_header_bytes).decode("latin-1")
    parts = line.split(" ")
    if len(parts) != 3:
        raise HttpParseError(f"bad request line {line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpParseError(f"unsupported HTTP version {version!r}")
    headers = _read_headers(reader, max_header_bytes)
    body = _read_body(reader, headers, max_body_bytes)
    return Request(method=method, target=target, headers=headers, body=body,
                   version=version)


def read_response(reader: LineReader) -> Response:
    """Parse one response from the reader."""
    line = reader.read_line().decode("latin-1")
    parts = line.split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise HttpParseError(f"bad status line {line!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise HttpParseError(f"bad status code in {line!r}")
    headers = _read_headers(reader)
    body = _read_body(reader, headers)
    return Response(status=status, headers=headers, body=body,
                    version=parts[0])
