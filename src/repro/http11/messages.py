"""HTTP/1.1 message model: headers, requests, responses, wire codecs.

SOAP rides on HTTP POST; the paper attributes part of SOAP-bin's remaining
overhead versus Sun RPC to exactly this layer ("The delay is mainly due to
SOAP-bin's use of HTTP for its transactions", §IV-A), so the reproduction
needs a real HTTP implementation rather than a function call in disguise —
header bytes, request lines and parsing all cost what they cost.

Scope: HTTP/1.1 with ``Content-Length`` framing, persistent connections,
and ``Transfer-Encoding: chunked`` for the large-message streaming path
(docs/wire-compact.md): both the pull (:class:`LineReader`) and push
(:class:`_IncrementalParser`) parsers decode chunked bodies, and
:func:`encode_chunk` / :data:`LAST_CHUNK` frame outgoing streams.  Other
transfer codings are rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from .errors import HttpConnectionClosed, HttpParseError, HttpTooLarge

#: Default cap on header-block size: plenty for SOAPAction + quality
#: headers.  Per-server overrides: ``HttpServer(max_header_bytes=...)``.
MAX_HEADER_BYTES = 64 * 1024
#: Default cap on body size (the biggest paper workload is ~1 MB images;
#: 256 MB leaves room for the stress tests).  Per-server overrides:
#: ``HttpServer(max_body_bytes=...)``.
MAX_BODY_BYTES = 256 * 1024 * 1024

REASONS = {
    200: "OK",
    204: "No Content",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class Headers:
    """A case-insensitive, order-preserving header multimap.

    Stored as ``(name, value, lowercased-name)`` triples so lookups on
    the parse/serialize hot path never re-lowercase stored keys.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Optional[List[Tuple[str, str]]] = None) -> None:
        self._items: List[Tuple[str, str, str]] = []
        if items:
            for name, value in items:
                self.add(name, value)

    def add(self, name: str, value: str) -> None:
        self._items.append((name, str(value), name.lower()))

    def set(self, name: str, value: str) -> None:
        """Replace all values of ``name`` with one value."""
        lower = name.lower()
        items = self._items
        if any(t[2] == lower for t in items):
            self._items = [t for t in items if t[2] != lower]
        self._items.append((name, str(value), lower))

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        lower = name.lower()
        for _n, v, l in self._items:
            if l == lower:
                return v
        return default

    def get_all(self, name: str) -> List[str]:
        lower = name.lower()
        return [v for _n, v, l in self._items if l == lower]

    def remove(self, name: str) -> None:
        lower = name.lower()
        self._items = [t for t in self._items if t[2] != lower]

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter([(n, v) for n, v, _l in self._items])

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"Headers({[(n, v) for n, v, _l in self._items]!r})"


@dataclass
class Request:
    """An HTTP request."""

    method: str = "POST"
    target: str = "/"
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"
    #: True when the body is NOT in :attr:`body` but drains incrementally
    #: through ``RequestParser.drain_body`` (reactor streaming routes).
    streaming: bool = False

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "")

    def wants_keep_alive(self) -> bool:
        token = (self.headers.get("Connection") or "").lower()
        if self.version == "HTTP/1.0":
            return token == "keep-alive"
        return token != "close"

    def to_bytes(self) -> bytes:
        return _serialize(f"{self.method} {self.target} {self.version}",
                          self.headers, self.body)


@dataclass
class Response:
    """An HTTP response."""

    status: int = 200
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def reason(self) -> str:
        return REASONS.get(self.status, "Unknown")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "")

    def to_bytes(self) -> bytes:
        return _serialize(f"{self.version} {self.status} {self.reason}",
                          self.headers, self.body)

    @classmethod
    def text(cls, status: int, message: str) -> "Response":
        resp = cls(status=status, body=message.encode("utf-8"))
        resp.headers.set("Content-Type", "text/plain; charset=utf-8")
        return resp


def etag_matches(if_none_match: Optional[str], etag: Optional[str]) -> bool:
    """RFC 9110 ``If-None-Match`` evaluation against one strong ETag.

    ``if_none_match`` is the raw header value (may list several quoted
    tags, or ``*``); comparison is the strong one — quotes included,
    ``W/`` weak tags never match.  The list is scanned as quoted
    entity-tags, not split on commas: a comma is a legal ``etagc``, so a
    foreign tag like ``"a,b"`` is one candidate, not two.
    """
    if not if_none_match or not etag:
        return False
    header = if_none_match.strip()
    if header == "*":
        return True
    return any(candidate == etag for candidate in _iter_entity_tags(header))


def _iter_entity_tags(header: str) -> Iterator[str]:
    """Yield the entity-tags of an ``If-None-Match`` list.

    Quoted strings are scanned (entity-tags contain no escapes — DQUOTE
    is excluded from ``etagc``), so commas inside a tag never mis-split;
    weak tags keep their ``W/`` prefix, which makes them fail the strong
    comparison naturally.  Malformed unquoted segments are yielded up to
    the next comma, preserving the old lenient behaviour for them.
    """
    i, n = 0, len(header)
    while i < n:
        if header[i] in " \t,":
            i += 1
            continue
        start = i
        if header.startswith("W/", i):
            i += 2
        if i < n and header[i] == '"':
            end = header.find('"', i + 1)
            if end < 0:                 # unterminated quote: take the rest
                yield header[start:]
                return
            i = end + 1
            yield header[start:i]
        else:
            end = header.find(",", i)
            if end < 0:
                end = n
            yield header[start:end].strip()
            i = end


#: Terminal frame of a chunked body: zero-size chunk, no trailers.
LAST_CHUNK = b"0\r\n\r\n"

#: Cap on one chunk-size line (hex digits + optional extensions).
_MAX_CHUNK_LINE = 1024


def encode_chunk(data: bytes) -> bytes:
    """Frame one non-empty chunk for ``Transfer-Encoding: chunked``.

    Empty input returns ``b""`` (an empty chunk would read as the body
    terminator); send :data:`LAST_CHUNK` explicitly to finish a stream.
    """
    if not data:
        return b""
    return b"%x\r\n" % len(data) + bytes(data) + b"\r\n"


def _parse_transfer_encoding(value: Optional[str],
                             raw_length: Optional[str]) -> bool:
    """True when ``value`` declares a chunked body.

    Only the single ``chunked`` coding is supported; anything else — and
    the illegal combination with ``Content-Length`` — fails the message
    (framing would be ambiguous, RFC 9112 §6.3).
    """
    if not value:
        return False
    codings = [t.strip().lower() for t in value.split(",") if t.strip()]
    if codings != ["chunked"]:
        raise HttpParseError(f"unsupported Transfer-Encoding {value!r}")
    if raw_length is not None:
        raise HttpParseError(
            "message has both Content-Length and Transfer-Encoding: chunked")
    return True


def _parse_chunk_size(line: bytes) -> int:
    token = line.split(b";", 1)[0].strip()
    try:
        size = int(token, 16)
    except ValueError:
        raise HttpParseError(f"bad chunk size line {line!r}")
    if size < 0 or token.startswith((b"+", b"-")):
        raise HttpParseError(f"bad chunk size line {line!r}")
    return size


def _serialize(start_line: str, headers: Headers, body: bytes) -> bytes:
    parts = [start_line, "\r\n"]
    has_length = False
    for name, value, lower in headers._items:
        if lower in ("content-length", "transfer-encoding"):
            has_length = True
        parts += (name, ": ", value, "\r\n")
    if not has_length:
        parts += ("Content-Length: ", str(len(body)), "\r\n")
    parts.append("\r\n")
    return "".join(parts).encode("latin-1") + body


# ----------------------------------------------------------------------
# wire parsing
# ----------------------------------------------------------------------

class LineReader:
    """Buffered reader over a ``recv``-style byte source."""

    def __init__(self, recv, bufsize: int = 65536) -> None:
        self._recv = recv
        self._bufsize = bufsize
        self._buf = b""

    def _fill(self) -> bool:
        chunk = self._recv(self._bufsize)
        if not chunk:
            return False
        self._buf += chunk
        return True

    def read_line(self, limit: int = MAX_HEADER_BYTES) -> bytes:
        """Read one CRLF-terminated line (returned without the CRLF)."""
        while True:
            idx = self._buf.find(b"\r\n")
            if idx >= 0:
                line, self._buf = self._buf[:idx], self._buf[idx + 2:]
                return line
            if len(self._buf) > limit:
                raise HttpTooLarge("header line too long")
            if not self._fill():
                if self._buf:
                    raise HttpParseError("connection closed mid-line")
                raise HttpConnectionClosed("connection closed")

    def read_exact(self, n: int) -> bytes:
        while len(self._buf) < n:
            if not self._fill():
                raise HttpParseError(
                    f"connection closed with {n - len(self._buf)} body "
                    f"bytes outstanding")
        data, self._buf = self._buf[:n], self._buf[n:]
        return data

    def at_start(self) -> bool:
        """True when no buffered bytes are pending (between messages)."""
        return not self._buf


def _read_headers(reader: LineReader,
                  max_header_bytes: int = MAX_HEADER_BYTES) -> Headers:
    headers = Headers()
    total = 0
    while True:
        line = reader.read_line(limit=max_header_bytes)
        if not line:
            return headers
        total += len(line)
        if total > max_header_bytes:
            raise HttpTooLarge(
                f"header block exceeds limit of {max_header_bytes} bytes")
        if b":" not in line:
            raise HttpParseError(f"bad header line {line!r}")
        name, _, value = line.partition(b":")
        headers.add(name.decode("latin-1").strip(),
                    value.decode("latin-1").strip())


def _read_chunked_body(reader: LineReader, headers: Headers,
                       max_body_bytes: int) -> bytes:
    """Drain a chunked body (pull path), appending trailers to ``headers``.

    The cumulative size limit applies to the *decoded* body, mirroring the
    Content-Length check — a peer cannot smuggle an oversized payload by
    slicing it into small chunks.
    """
    parts: List[bytes] = []
    total = 0
    while True:
        size = _parse_chunk_size(reader.read_line(limit=_MAX_CHUNK_LINE))
        if size == 0:
            break
        total += size
        if total > max_body_bytes:
            raise HttpTooLarge(
                f"chunked body exceeds limit of {max_body_bytes} bytes")
        parts.append(reader.read_exact(size))
        if reader.read_exact(2) != b"\r\n":
            raise HttpParseError("chunk data not terminated by CRLF")
    while True:  # trailer section, ended by an empty line
        line = reader.read_line(limit=MAX_HEADER_BYTES)
        if not line:
            return b"".join(parts)
        if b":" not in line:
            raise HttpParseError(f"bad trailer line {line!r}")
        name, _, value = line.partition(b":")
        headers.add(name.decode("latin-1").strip(),
                    value.decode("latin-1").strip())


def _read_body(reader: LineReader, headers: Headers,
               max_body_bytes: int = MAX_BODY_BYTES) -> bytes:
    raw_length = headers.get("Content-Length")
    if _parse_transfer_encoding(headers.get("Transfer-Encoding"), raw_length):
        return _read_chunked_body(reader, headers, max_body_bytes)
    if raw_length is None:
        return b""
    try:
        length = int(raw_length)
    except ValueError:
        raise HttpParseError(f"bad Content-Length {raw_length!r}")
    if length < 0:
        raise HttpParseError("negative Content-Length")
    if length > max_body_bytes:
        raise HttpTooLarge(
            f"body of {length} bytes exceeds limit of "
            f"{max_body_bytes} bytes")
    return reader.read_exact(length)


def read_request(reader: LineReader,
                 max_header_bytes: int = MAX_HEADER_BYTES,
                 max_body_bytes: int = MAX_BODY_BYTES) -> Request:
    """Parse one request from the reader.

    Raises :class:`HttpConnectionClosed` when the peer closed cleanly
    between requests (the keep-alive loop exits on that).  The size limits
    default to the module constants; servers pass their own
    (``HttpServer(max_body_bytes=..., max_header_bytes=...)``).
    """
    line = reader.read_line(limit=max_header_bytes).decode("latin-1")
    parts = line.split(" ")
    if len(parts) != 3:
        raise HttpParseError(f"bad request line {line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpParseError(f"unsupported HTTP version {version!r}")
    headers = _read_headers(reader, max_header_bytes)
    body = _read_body(reader, headers, max_body_bytes)
    return Request(method=method, target=target, headers=headers, body=body,
                   version=version)


def read_response(reader: LineReader) -> Response:
    """Parse one response from the reader."""
    line = reader.read_line().decode("latin-1")
    parts = line.split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise HttpParseError(f"bad status line {line!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise HttpParseError(f"bad status code in {line!r}")
    headers = _read_headers(reader)
    body = _read_body(reader, headers)
    return Response(status=status, headers=headers, body=body,
                    version=parts[0])


# ----------------------------------------------------------------------
# incremental (push) parsing for event-driven endpoints
# ----------------------------------------------------------------------

class _IncrementalParser:
    """Push-style HTTP/1.1 message parser.

    Where :class:`LineReader` *pulls* bytes from a blocking socket, this
    parser is *fed* whatever bytes happen to arrive on a non-blocking one
    (:meth:`feed`) and hands out complete messages as they materialize
    (:meth:`next_message`, ``None`` while incomplete).  Back-to-back
    pipelined messages in one buffer come out one at a time; the parse
    state survives arbitrary fragmentation, including a header block
    split mid-CRLF.

    Errors are the same taxonomy as the pull path:
    :class:`~repro.http11.errors.HttpParseError` for malformed messages,
    :class:`~repro.http11.errors.HttpTooLarge` for limit violations.  An
    errored parser stays errored — the connection is unrecoverable because
    message framing is lost.
    """

    # chunked-parse states
    _CHUNK_SIZE, _CHUNK_DATA, _CHUNK_DATA_END, _CHUNK_TRAILERS = range(4)

    def __init__(self, max_header_bytes: int = MAX_HEADER_BYTES,
                 max_body_bytes: int = MAX_BODY_BYTES) -> None:
        self.max_header_bytes = max_header_bytes
        self.max_body_bytes = max_body_bytes
        self._buf = bytearray()
        #: consumption offset — bytes before it are already parsed.  The
        #: buffer is compacted lazily instead of ``del buf[:n]`` per
        #: message, which would memmove the whole tail and turn a large
        #: pipelined burst into O(n²) of copying.
        self._pos = 0
        self._scan = 0                  # resume offset for the \r\n\r\n hunt
        self._head: Optional[Tuple] = None   # parsed head awaiting its body
        self._body_length = 0
        self._failed = False
        # chunked-body state machine (Transfer-Encoding: chunked)
        self._chunked = False
        self._chunk_state = self._CHUNK_SIZE
        self._chunk_remaining = 0
        self._chunk_total = 0
        self._chunk_body = bytearray()
        #: streaming drain mode: the head was handed out already and body
        #: bytes leave through :meth:`drain_body` instead of accumulating
        self._streaming = False

    def feed(self, data: bytes) -> None:
        """Append freshly received bytes."""
        self._buf += data

    @property
    def mid_message(self) -> bool:
        """True while a partially received message is pending (the
        distinction between a quiet keep-alive hang-up and a 408)."""
        return (len(self._buf) > self._pos or self._head is not None
                or self._streaming)

    @property
    def buffered_bytes(self) -> int:
        return len(self._buf) - self._pos

    def _compact(self) -> None:
        if self._pos:
            del self._buf[:self._pos]
            self._scan = max(0, self._scan - self._pos)
            self._pos = 0

    def next_message(self):
        """Return the next complete message, or ``None`` if more bytes
        are needed.  Call repeatedly to drain a pipelined burst."""
        if self._failed:
            raise HttpParseError("parser already failed; framing lost")
        try:
            return self._next()
        except (HttpParseError, HttpTooLarge):
            self._failed = True
            raise

    def _next(self):
        if self._streaming:
            # The head is already out; body bytes leave via drain_body().
            return None
        if self._head is None:
            end = self._buf.find(b"\r\n\r\n",
                                 max(self._pos, self._scan - 3))
            if end < 0:
                if len(self._buf) - self._pos > self.max_header_bytes:
                    raise HttpTooLarge(
                        f"header block exceeds limit of "
                        f"{self.max_header_bytes} bytes")
                self._scan = len(self._buf)
                return None
            if end - self._pos > self.max_header_bytes:
                raise HttpTooLarge(
                    f"header block exceeds limit of "
                    f"{self.max_header_bytes} bytes")
            head = bytes(self._buf[self._pos:end])
            self._pos = end + 4
            self._scan = self._pos
            (start_line, headers, raw_length,
             transfer_encoding) = self._split_head(head)
            parsed_start = self._parse_start_line(start_line)
            self._body_length = self._content_length(raw_length,
                                                     transfer_encoding)
            self._head = (parsed_start, headers)
            if self._chunked and self._should_stream(parsed_start, headers):
                self._head = None
                self._streaming = True
                return self._build_streaming(parsed_start, headers)
        if self._chunked:
            return self._next_chunked()
        if len(self._buf) - self._pos < self._body_length:
            self._compact()  # keep the wait-for-body footprint small
            return None
        body = bytes(self._buf[self._pos:self._pos + self._body_length])
        self._pos += self._body_length
        if self._pos >= len(self._buf):
            del self._buf[:]            # cheap reset: all bytes consumed
            self._pos = self._scan = 0
        elif self._pos > 65536:
            self._compact()
        parsed_start, headers = self._head
        self._head = None
        self._body_length = 0
        return self._build(parsed_start, headers, body)

    # -- chunked bodies ------------------------------------------------
    def _next_chunked(self):
        if not self._pump_chunks(self._chunk_body):
            self._compact()
            return None
        body = bytes(self._chunk_body)
        parsed_start, headers = self._head
        self._head = None
        self._reset_chunk_state()
        self._finish_message_boundary()
        return self._build(parsed_start, headers, body)

    def drain_body(self) -> Tuple[bytes, bool]:
        """Streaming mode: decode whatever chunk data is buffered.

        Returns ``(data, done)``.  ``data`` may be empty while a chunk
        header straddles a read boundary; after ``done`` the parser is
        back at a message boundary, so pipelined bytes (if any) parse
        normally.  The decoded-body size limit is *not* applied here —
        constant memory is the whole point; the consumer sees every byte
        as it arrives and applies its own budget.
        """
        if not self._streaming:
            raise HttpParseError("parser is not draining a streamed body")
        if self._failed:
            raise HttpParseError("parser already failed; framing lost")
        sink = bytearray()
        try:
            done = self._pump_chunks(sink)
        except (HttpParseError, HttpTooLarge):
            self._failed = True
            raise
        if done:
            self._streaming = False
            self._reset_chunk_state()
            self._finish_message_boundary()
        else:
            self._compact()
        return bytes(sink), done

    def _pump_chunks(self, sink: bytearray) -> bool:
        """Advance the chunk state machine over the buffered bytes,
        appending decoded data to ``sink``.  True once the terminal chunk
        and trailer section are fully consumed."""
        buf = self._buf
        while True:
            n = len(buf)
            if self._chunk_state == self._CHUNK_SIZE:
                idx = buf.find(b"\r\n", self._pos)
                if idx < 0:
                    if n - self._pos > _MAX_CHUNK_LINE:
                        raise HttpParseError("chunk size line too long")
                    return False
                size = _parse_chunk_size(bytes(buf[self._pos:idx]))
                self._pos = idx + 2
                if size == 0:
                    self._chunk_state = self._CHUNK_TRAILERS
                    continue
                self._chunk_total += size
                if not self._streaming \
                        and self._chunk_total > self.max_body_bytes:
                    raise HttpTooLarge(
                        f"chunked body exceeds limit of "
                        f"{self.max_body_bytes} bytes")
                self._chunk_remaining = size
                self._chunk_state = self._CHUNK_DATA
            elif self._chunk_state == self._CHUNK_DATA:
                take = min(n - self._pos, self._chunk_remaining)
                if take <= 0:
                    return False
                sink += buf[self._pos:self._pos + take]
                self._pos += take
                self._chunk_remaining -= take
                if self._chunk_remaining == 0:
                    self._chunk_state = self._CHUNK_DATA_END
            elif self._chunk_state == self._CHUNK_DATA_END:
                if n - self._pos < 2:
                    return False
                if bytes(buf[self._pos:self._pos + 2]) != b"\r\n":
                    raise HttpParseError("chunk data not terminated by CRLF")
                self._pos += 2
                self._chunk_state = self._CHUNK_SIZE
            else:  # _CHUNK_TRAILERS — validated and discarded (push path)
                idx = buf.find(b"\r\n", self._pos)
                if idx < 0:
                    if n - self._pos > self.max_header_bytes:
                        raise HttpTooLarge("trailer section too large")
                    return False
                line = bytes(buf[self._pos:idx])
                self._pos = idx + 2
                if not line:
                    return True
                if b":" not in line:
                    raise HttpParseError(f"bad trailer line {line!r}")

    def _reset_chunk_state(self) -> None:
        self._chunked = False
        self._chunk_state = self._CHUNK_SIZE
        self._chunk_remaining = 0
        self._chunk_total = 0
        self._chunk_body = bytearray()

    def _finish_message_boundary(self) -> None:
        if self._pos >= len(self._buf):
            del self._buf[:]
            self._pos = self._scan = 0
        else:
            self._compact()

    def _should_stream(self, parsed_start, headers: Headers) -> bool:
        """Hook: hand the head out before the body finishes arriving.
        Only consulted for chunked messages; requests only."""
        return False

    def _build_streaming(self, parsed_start,
                         headers: Headers):  # pragma: no cover - abstract
        raise NotImplementedError

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _split_head(head: bytes) -> Tuple[str, Headers, Optional[str],
                                          Optional[str]]:
        """Split a header block; also captures the two framing headers
        (Content-Length, Transfer-Encoding) during the same pass so the
        hot path never re-scans the header list."""
        lines = head.decode("latin-1").split("\r\n")
        headers = Headers()
        items = headers._items
        content_length = transfer_encoding = None
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if not sep:
                raise HttpParseError(f"bad header line {line!r}")
            name = name.strip()
            value = value.strip()
            lower = name.lower()
            items.append((name, value, lower))
            if lower == "content-length":
                content_length = value
            elif lower == "transfer-encoding":
                transfer_encoding = value
        return lines[0], headers, content_length, transfer_encoding

    def _content_length(self, raw_length: Optional[str],
                        transfer_encoding: Optional[str]) -> int:
        if _parse_transfer_encoding(transfer_encoding, raw_length):
            self._chunked = True
            return 0
        if raw_length is None:
            return 0
        try:
            length = int(raw_length)
        except ValueError:
            raise HttpParseError(f"bad Content-Length {raw_length!r}")
        if length < 0:
            raise HttpParseError("negative Content-Length")
        if length > self.max_body_bytes:
            raise HttpTooLarge(
                f"body of {length} bytes exceeds limit of "
                f"{self.max_body_bytes} bytes")
        return length

    def _parse_start_line(self, line: str):  # pragma: no cover - abstract
        raise NotImplementedError

    def _build(self, parsed_start, headers: Headers,
               body: bytes):  # pragma: no cover - abstract
        raise NotImplementedError


class RequestParser(_IncrementalParser):
    """Incremental request parser (the reactor server's read path).

    Set :attr:`stream_decider` — ``(method, target, headers) -> bool`` —
    to opt chunked requests into streaming mode: the :class:`Request` is
    handed out as soon as its head parses (``streaming=True``, empty
    ``body``) and the body drains incrementally through
    :meth:`drain_body` instead of buffering.
    """

    stream_decider = None

    def _should_stream(self, parsed_start, headers: Headers) -> bool:
        decider = self.stream_decider
        if decider is None:
            return False
        method, target, _version = parsed_start
        return bool(decider(method, target, headers))

    def _build_streaming(self, parsed_start: Tuple[str, str, str],
                         headers: Headers) -> Request:
        method, target, version = parsed_start
        return Request(method=method, target=target, headers=headers,
                       body=b"", version=version, streaming=True)

    def _parse_start_line(self, line: str) -> Tuple[str, str, str]:
        parts = line.split(" ")
        if len(parts) != 3:
            raise HttpParseError(f"bad request line {line!r}")
        method, target, version = parts
        if version not in ("HTTP/1.1", "HTTP/1.0"):
            raise HttpParseError(f"unsupported HTTP version {version!r}")
        return method, target, version

    def _build(self, parsed_start: Tuple[str, str, str], headers: Headers,
               body: bytes) -> Request:
        method, target, version = parsed_start
        return Request(method=method, target=target, headers=headers,
                       body=body, version=version)

    def next_request(self) -> Optional[Request]:
        return self.next_message()


class ResponseParser(_IncrementalParser):
    """Incremental response parser (the pipelined client's read path)."""

    def _parse_start_line(self, line: str) -> Tuple[str, int]:
        parts = line.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise HttpParseError(f"bad status line {line!r}")
        try:
            status = int(parts[1])
        except ValueError:
            raise HttpParseError(f"bad status code in {line!r}")
        return parts[0], status

    def _build(self, parsed_start: Tuple[str, int], headers: Headers,
               body: bytes) -> Response:
        version, status = parsed_start
        return Response(status=status, headers=headers, body=body,
                        version=version)

    def next_response(self) -> Optional[Response]:
        return self.next_message()
