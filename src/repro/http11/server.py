"""HTTP/1.1 servers: a shared serving core with two concurrency models.

The server is handler-driven: you give it a callable
``handler(Request) -> Response`` and it owns sockets, keep-alive and error
responses.  The SOAP and SOAP-bin services plug their dispatchers in here.

Two concurrency models share one behavioural contract (`_ServerCore`):

* :class:`ThreadedHttpServer` — the historical thread-per-connection
  model: simple, but at keep-alive scale every idle client pins a thread;
* :class:`~repro.http11.reactor.ReactorHttpServer` — an event-driven
  core: one ``selectors`` reactor thread owns every socket (non-blocking
  accept/read/write, incremental request parsing, HTTP/1.1 pipelining,
  write-queue backpressure) and dispatches complete requests to a bounded
  worker pool, so 10k idle connections cost file descriptors, not threads.

:func:`HttpServer` is the factory both run behind: pass
``concurrency="threaded"`` or ``"reactor"`` (default: the
``REPRO_HTTP_CONCURRENCY`` environment variable, else ``"reactor"``).

Overload protection carries over identically in both models (see
``docs/overload.md`` and ``docs/serving-reactor.md``):

* ``max_connections`` caps live connections (connection-level 503);
* ``admission`` (an :class:`~repro.serving.admission.AdmissionController`)
  gates every parsed *request*, sheds with ``503`` + ``Retry-After`` +
  ``X-Shed-Reason``, and honors the client's ``X-Deadline-Ms`` budget;
* ``load_coupling`` (a :class:`~repro.serving.coupling.LoadQualityCoupling`)
  takes a load reading after every request;
* ``idle_timeout_s`` bounds silent keep-alive clients (and, on the
  reactor, byte-at-a-time slowloris headers — the timer runs from the
  last message boundary, not the last byte);
* ``max_body_bytes`` / ``max_header_bytes`` per-server size limits
  (413 replies name the limit);
* ``GET /healthz`` answers readiness with a JSON load snapshot without
  touching the application handler;
* ``GET /metrics`` answers the same counters in Prometheus text
  exposition format (see :mod:`repro.serving.metrics` and
  ``docs/observability.md``) — also ahead of admission, so scrapes keep
  working while the server sheds;
* ``close(drain_s=...)`` drains gracefully: stop accepting, mark
  not-ready, answer in-flight requests with ``Connection: close``, and
  bound the wait for the last worker.
"""

from __future__ import annotations

import json
import math
import os
import socket
import threading
import time
from typing import Callable, Dict, Optional, TYPE_CHECKING, Tuple

from ..serving.deadline import deadline_from_headers
from .errors import HttpConnectionClosed, HttpParseError, HttpTooLarge
from .messages import (MAX_BODY_BYTES, MAX_HEADER_BYTES, LineReader, Request,
                       Response, etag_matches, read_request)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serving.admission import AdmissionController
    from ..serving.coupling import LoadQualityCoupling

Handler = Callable[[Request], Response]

#: Environment variable selecting the default concurrency model.
CONCURRENCY_ENV = "REPRO_HTTP_CONCURRENCY"
_CONCURRENCY_MODES = ("threaded", "reactor")


def supports_reuse_port() -> bool:
    """Whether this platform can load-balance accepts via ``SO_REUSEPORT``."""
    return hasattr(socket, "SO_REUSEPORT")


def set_reuse_port(sock: socket.socket) -> None:
    """Enable ``SO_REUSEPORT`` on ``sock`` (before bind), or raise.

    Every socket sharing the port must set the option before binding —
    this is how a :class:`~repro.serving.fleet.FleetServer` worker joins
    the kernel's accept-balancing group.  On platforms without the option
    (old kernels, some BSDs behind different constants) a clear ``OSError``
    names the fd-handoff fallback.
    """
    if not supports_reuse_port():
        raise OSError(
            "SO_REUSEPORT is not available on this platform; use the "
            "fleet's fd-handoff mode (mode='handoff') instead")
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)


def default_concurrency() -> str:
    """The concurrency model :func:`HttpServer` uses when not told.

    An unset (or blank) ``REPRO_HTTP_CONCURRENCY`` means ``"reactor"``; a
    set-but-unrecognized value is a configuration error and raises — a
    typo like ``REPRO_HTTP_CONCURRENCY=reactr`` silently falling back to
    the default is exactly how a deployment ends up benchmarking the
    wrong server.
    """
    raw = os.environ.get(CONCURRENCY_ENV)
    if raw is None or not raw.strip():
        return "reactor"
    mode = raw.strip().lower()
    if mode not in _CONCURRENCY_MODES:
        raise ValueError(
            f"{CONCURRENCY_ENV}={raw!r} is not a recognized concurrency "
            f"model: choose one of {_CONCURRENCY_MODES}")
    return mode


class _ServerCore:
    """Configuration, counters and request-level behaviour shared by the
    threaded and reactor servers.

    Subclasses own the sockets; everything above the socket — health,
    admission, deadline shedding, load coupling, the application dispatch
    boundary — lives here so both models answer identically.
    """

    def __init__(self, handler: Handler,
                 max_connections: Optional[int] = None,
                 retry_after_s: float = 1.0,
                 admission: Optional["AdmissionController"] = None,
                 load_coupling: Optional["LoadQualityCoupling"] = None,
                 assume_synced_clock: bool = False,
                 idle_timeout_s: Optional[float] = None,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 max_header_bytes: int = MAX_HEADER_BYTES,
                 health_path: str = "/healthz",
                 metrics_path: str = "/metrics",
                 quality_stats: Optional[
                     Callable[[], Optional[Dict[str, object]]]] = None) -> None:
        self.handler = handler
        #: optional callable returning the application's quality snapshot
        #: (e.g. ``SoapBinService.quality_stats``) surfaced in ``/healthz``
        self.quality_stats = quality_stats
        self.max_connections = max_connections
        self.retry_after_s = max(0.0, retry_after_s)
        self.admission = admission
        self.load_coupling = load_coupling
        self.assume_synced_clock = assume_synced_clock
        self.idle_timeout_s = idle_timeout_s
        self.max_body_bytes = max_body_bytes
        self.max_header_bytes = max_header_bytes
        self.health_path = health_path
        self.metrics_path = metrics_path
        self._running = True
        self._draining = False
        #: number of sibling worker processes sharing this server's port —
        #: 1 for a standalone server; a :class:`~repro.serving.fleet.
        #: FleetServer` sets the fleet size on each worker so ``/healthz``
        #: distinguishes fleet from single-process mode.
        self.fleet_workers = 1
        #: worker index within the fleet (0 for a standalone server)
        self.fleet_index = 0
        self.requests_served = 0
        self.requests_shed = 0
        #: conditional requests answered header-only (endpoint-issued 304s
        #: and 200s the validator in :meth:`_finalize` converted)
        self.responses_304 = 0
        self.connections_accepted = 0
        self.connections_rejected = 0
        #: requests whose body arrived as Transfer-Encoding: chunked
        #: (buffered or streamed)
        self.chunked_requests = 0
        #: decoded body bytes drained through reactor streaming routes
        self.streamed_bytes_in = 0
        #: response-chunk bytes produced by reactor streaming handlers
        self.streamed_bytes_out = 0
        self._active_connections = 0
        self._lock = threading.Lock()
        self.address: Tuple[str, int] = ("", 0)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def ready(self) -> bool:
        """Readiness for new work: accepting and not draining."""
        return self._running and not self._draining

    # ------------------------------------------------------------------
    # request-level behaviour (identical in both concurrency models)
    # ------------------------------------------------------------------
    def _respond(self, request: Request) -> Response:
        """Health check, admission gate, application handler, validators."""
        if "Transfer-Encoding" in request.headers:
            with self._lock:
                self.chunked_requests += 1
        return self._finalize(request, self._respond_inner(request))

    def _finalize(self, request: Request, response: Response) -> Response:
        """HTTP validator pass shared by both concurrency models.

        A ``GET``/``HEAD`` ``200`` carrying an ``ETag`` that the request's
        ``If-None-Match`` already holds is converted to a header-only
        ``304 Not Modified``; other methods are left alone, since RFC 9110
        defines ``If-None-Match``/``304`` cache-update semantics for
        GET/HEAD only.  (The SOAP-bin service's conditional *POST* is its
        own documented endpoint-level contract between repro endpoints —
        it emits 304 directly and just gets counted here; see
        ``docs/caching.md``.)  Always emitting ``Content-Length: 0`` keeps
        framing exact under keep-alive and pipelining.
        """
        if response.status == 200 and request.method in ("GET", "HEAD"):
            etag = response.headers.get("ETag")
            if etag is not None and etag_matches(
                    request.headers.get("If-None-Match"), etag):
                headers = response.headers
                headers.remove("Content-Length")
                response = Response(status=304, headers=headers, body=b"",
                                    version=response.version)
        if response.status == 304:
            with self._lock:
                self.responses_304 += 1
        return response

    def _respond_inner(self, request: Request) -> Response:
        """Health check, admission gate, then the application handler."""
        if request.target == self.health_path:
            return self._health_response()
        if self.metrics_path is not None and request.target == self.metrics_path:
            return self._metrics_response()
        if self.admission is None:
            return self._dispatch(request)
        headers = {name: value for name, value in request.headers}
        now = self.admission.clock.now()
        deadline = deadline_from_headers(
            headers, now, assume_synced_clock=self.assume_synced_clock)
        decision = self.admission.acquire(deadline=deadline)
        if not decision.admitted:
            with self._lock:
                self.requests_shed += 1
            self._observe_load()
            return self._shed_response(decision.reason or "overloaded")
        try:
            return self._dispatch(request)
        finally:
            self.admission.release(decision.ticket)
            self._observe_load()

    def _observe_load(self) -> None:
        if self.load_coupling is not None:
            self.load_coupling.observe()

    def _health_payload(self) -> Dict[str, object]:
        """The load snapshot the health endpoint serves as JSON.

        One probe answers both questions a load balancer (or the bench
        harness) asks: *may I send traffic here* (``state``) and *how
        loaded is it* (active/queued counts, utilization, p95 service
        time from the admission controller when one is installed).
        """
        state = ("ready" if self.ready
                 else "draining" if self._draining else "closed")
        with self._lock:
            payload: Dict[str, object] = {
                "state": state,
                "pid": os.getpid(),
                "workers": self.fleet_workers,
                "connections_active": self._active_connections,
                "requests_served": self.requests_served,
                "requests_shed": self.requests_shed,
                "responses_304": self.responses_304,
            }
        if self.quality_stats is not None:
            try:
                payload["quality"] = self.quality_stats()
            except Exception:  # noqa: BLE001 - health must never 500
                payload["quality"] = None
        if self.admission is not None:
            snap = self.admission.snapshot()
            payload.update({
                "active": snap["busy"],
                "queued": snap["queue_depth"],
                "utilization": round(float(snap["utilization"]), 6),
                "p95_service_s": round(float(snap["p95_service_s"]), 6),
                "shed_total": snap["shed_total"],
            })
        else:
            payload.update({"active": None, "queued": 0,
                            "utilization": None, "p95_service_s": None,
                            "shed_total": self.requests_shed})
        return payload

    def _health_response(self) -> Response:
        body = json.dumps(self._health_payload(),
                          sort_keys=True).encode("utf-8")
        response = Response(status=200 if self.ready else 503, body=body)
        response.headers.set("Content-Type", "application/json")
        if not self.ready:
            response.headers.set("Retry-After",
                                 str(int(math.ceil(self.retry_after_s))))
        return response

    def _metrics_response(self) -> Response:
        """Prometheus text exposition of the server's counters.

        Served from the shared request path — before admission, like
        ``/healthz`` — because a scrape must keep answering precisely
        while the server sheds.  Never 500s: a collection failure
        degrades to an empty exposition with an ``X-Metrics-Error``
        header rather than failing the probe.
        """
        from ..serving.metrics import CONTENT_TYPE, render_server_metrics
        error = None
        try:
            body = render_server_metrics(self)
        except Exception as exc:  # noqa: BLE001 - scrape must never 500
            body, error = b"", exc
        response = Response(status=200, body=body)
        response.headers.set("Content-Type", CONTENT_TYPE)
        if error is not None:
            response.headers.set("X-Metrics-Error",
                                 f"{type(error).__name__}: {error}")
        return response

    def _shed_response(self, reason: str) -> Response:
        response = Response.text(503, f"overloaded: {reason}")
        retry_after = max(self.retry_after_s,
                          self.admission.retry_after_s
                          if self.admission is not None else 0.0)
        response.headers.set("Retry-After", str(int(math.ceil(retry_after))))
        response.headers.set("X-Shed-Reason", reason)
        return response

    def _reject_response(self) -> Response:
        """The connection-cap 503 (no handler, no thread, no reactor slot)."""
        response = Response.text(503, "connection limit reached")
        response.headers.set("Connection", "close")
        # RFC 9110 Retry-After is integer delay-seconds; round up so a
        # client honoring it never comes back while we are still over cap.
        response.headers.set("Retry-After",
                             str(int(math.ceil(self.retry_after_s))))
        return response

    def _dispatch(self, request: Request) -> Response:
        try:
            return self.handler(request)
        except Exception as exc:  # noqa: BLE001 - boundary of the server
            return Response.text(500, f"internal error: {exc}")

    def __enter__(self) -> "_ServerCore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self, drain_s: Optional[float] = None) -> None:
        raise NotImplementedError  # pragma: no cover - abstract


class ThreadedHttpServer(_ServerCore):
    """The thread-per-connection HTTP server.

    Usage::

        def handler(request):
            return Response(status=200, body=b"hi")

        with ThreadedHttpServer(handler) as server:
            ...  # server.address is (host, port)

    ``max_connections`` bounds the thread-per-connection growth: beyond the
    cap new connections are answered immediately with ``503 Service
    Unavailable`` (``Connection: close`` and a ``Retry-After`` of
    ``retry_after_s`` seconds) instead of spawning a thread, so a client
    stampede degrades loudly rather than exhausting the process.  ``None``
    (the default) keeps the historical unbounded behaviour.

    The reactor-only tuning knobs (``workers``, ``max_buffered_bytes``,
    ``max_pipeline``, ``pipeline_execution``, ``stream_routes``) are
    accepted and ignored so both servers can be constructed with one
    argument set.  Chunked request bodies are still decoded here — they
    are just buffered whole and dispatched normally; incremental
    streaming is the reactor's feature.
    """

    def __init__(self, handler: Handler, host: str = "127.0.0.1",
                 port: int = 0, backlog: int = 32,
                 max_connections: Optional[int] = None,
                 retry_after_s: float = 1.0,
                 admission: Optional["AdmissionController"] = None,
                 load_coupling: Optional["LoadQualityCoupling"] = None,
                 assume_synced_clock: bool = False,
                 idle_timeout_s: Optional[float] = None,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 max_header_bytes: int = MAX_HEADER_BYTES,
                 health_path: str = "/healthz",
                 metrics_path: str = "/metrics",
                 quality_stats: Optional[
                     Callable[[], Optional[Dict[str, object]]]] = None,
                 reuse_port: bool = False,
                 conn_receiver: Optional[socket.socket] = None,
                 listen: bool = True,
                 workers: int = 8,
                 max_buffered_bytes: int = 1 << 20,
                 max_pipeline: int = 128,
                 pipeline_execution: str = "serial",
                 stream_routes: Optional[Dict[str, object]] = None) -> None:
        if conn_receiver is not None or not listen:
            raise ValueError(
                "the fd-handoff accept path (conn_receiver/listen=False) "
                "requires the reactor server; use concurrency='reactor'")
        super().__init__(handler, max_connections=max_connections,
                         retry_after_s=retry_after_s, admission=admission,
                         load_coupling=load_coupling,
                         assume_synced_clock=assume_synced_clock,
                         idle_timeout_s=idle_timeout_s,
                         max_body_bytes=max_body_bytes,
                         max_header_bytes=max_header_bytes,
                         health_path=health_path,
                         metrics_path=metrics_path,
                         quality_stats=quality_stats)
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            set_reuse_port(self._sock)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self.address = self._sock.getsockname()
        self._idle_cond = threading.Condition(self._lock)
        #: open connection sockets -> True while a request is mid-dispatch
        self._connections: Dict[socket.socket, bool] = {}
        self._thread = threading.Thread(target=self._accept_loop,
                                        name="http-server", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            # Disable Nagle before the handler thread even spawns: SOAP
            # RPC exchanges are small request/response pairs, and a
            # delayed-ACK/Nagle interaction costs ~40 ms per call.
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            with self._lock:
                self.connections_accepted += 1
                over_cap = (self.max_connections is not None
                            and self._active_connections
                            >= self.max_connections)
                if over_cap:
                    self.connections_rejected += 1
                else:
                    self._active_connections += 1
                    self._connections[conn] = False
            if over_cap:
                self._reject_connection(conn)
                continue
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True)
            thread.start()

    def _reject_connection(self, conn: socket.socket) -> None:
        """Answer 503 and hang up — no handler thread is spawned."""
        with conn:
            self._safe_send(conn, self._reject_response())

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            self._serve_connection_inner(conn)
        finally:
            with self._idle_cond:
                self._active_connections -= 1
                self._connections.pop(conn, None)
                self._idle_cond.notify_all()

    def _serve_connection_inner(self, conn: socket.socket) -> None:
        reader = LineReader(conn.recv)
        if self.idle_timeout_s is not None:
            conn.settimeout(self.idle_timeout_s)
        with conn:
            while self._running:
                try:
                    request = read_request(
                        reader, max_header_bytes=self.max_header_bytes,
                        max_body_bytes=self.max_body_bytes)
                except HttpConnectionClosed:
                    return
                except HttpTooLarge as exc:
                    self._safe_send(conn, Response.text(413, str(exc)))
                    return
                except TimeoutError:
                    # Dead or dawdling keep-alive client: release the
                    # worker thread instead of pinning it forever.  A
                    # timeout mid-request earns a 408; silence between
                    # requests is just a quiet hang-up.
                    if not reader.at_start():
                        self._safe_send(
                            conn, Response.text(408, "request timeout"))
                    return
                except HttpParseError as exc:
                    self._safe_send(conn,
                                    Response.text(400, f"bad request: {exc}"))
                    return
                except OSError:
                    # Socket torn down under us (peer reset, or drain
                    # closed an idle connection) — nothing to answer.
                    return
                self._mark_processing(conn, True)
                try:
                    response = self._respond(request)
                finally:
                    self._mark_processing(conn, False)
                keep_alive = request.wants_keep_alive() and not self._draining
                if not keep_alive:
                    response.headers.set("Connection", "close")
                with self._lock:
                    self.requests_served += 1
                if not self._safe_send(conn, response):
                    return
                if not keep_alive:
                    return

    def _mark_processing(self, conn: socket.socket, busy: bool) -> None:
        with self._lock:
            if conn in self._connections:
                self._connections[conn] = busy

    @staticmethod
    def _safe_send(conn: socket.socket, response: Response) -> bool:
        try:
            conn.sendall(response.to_bytes())
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    def close(self, drain_s: Optional[float] = None) -> None:
        """Stop the server.

        ``drain_s=None`` keeps the historical immediate shutdown.  With a
        drain bound the server: (1) stops accepting and reports not-ready
        on the health path, (2) lets every in-flight request finish and
        marks its reply ``Connection: close``, (3) hangs up idle
        keep-alive connections, and (4) waits up to ``drain_s`` seconds
        for the last connection before returning.  In-flight work is never
        reset while the bound holds.
        """
        if drain_s is None:
            self._running = False
            self._close_listener()
            return
        self._draining = True
        self._close_listener()
        self._close_idle_connections()
        deadline = time.monotonic() + max(0.0, drain_s)
        with self._idle_cond:
            while self._active_connections > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._idle_cond.wait(remaining)
        self._running = False
        # Anything still open after the bound is abandoned ungracefully.
        self._close_idle_connections(force=True)

    def _close_listener(self) -> None:
        # shutdown() before close(): a thread blocked in accept() holds a
        # kernel reference to the listening socket, so close() alone would
        # leave the port accepting until the next connection arrives.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def _close_idle_connections(self, force: bool = False) -> None:
        """Hang up connections with no request mid-dispatch.

        With ``force=True`` even busy connections are torn down — only
        used after the drain bound has expired.
        """
        with self._lock:
            victims = [conn for conn, busy in self._connections.items()
                       if force or not busy]
        for conn in victims:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass


def HttpServer(handler: Handler, host: str = "127.0.0.1", port: int = 0,
               backlog: int = 32,
               max_connections: Optional[int] = None,
               retry_after_s: float = 1.0,
               admission: Optional["AdmissionController"] = None,
               load_coupling: Optional["LoadQualityCoupling"] = None,
               assume_synced_clock: bool = False,
               idle_timeout_s: Optional[float] = None,
               max_body_bytes: int = MAX_BODY_BYTES,
               max_header_bytes: int = MAX_HEADER_BYTES,
               health_path: str = "/healthz",
               metrics_path: str = "/metrics",
               quality_stats: Optional[
                   Callable[[], Optional[Dict[str, object]]]] = None,
               concurrency: Optional[str] = None,
               reuse_port: bool = False,
               conn_receiver: Optional[socket.socket] = None,
               listen: bool = True,
               workers: int = 8,
               max_buffered_bytes: int = 1 << 20,
               max_pipeline: int = 128,
               pipeline_execution: str = "serial",
               stream_routes: Optional[Dict[str, object]] = None) -> _ServerCore:
    """Build an HTTP server with the selected concurrency model.

    ``concurrency`` is ``"threaded"`` (one thread per connection),
    ``"reactor"`` (event loop + bounded worker pool), or ``None`` to use
    :func:`default_concurrency` (the ``REPRO_HTTP_CONCURRENCY``
    environment variable, falling back to ``"reactor"``).  Both models
    honour the same protection contract; the reactor additionally
    supports HTTP/1.1 pipelining and holds idle keep-alive connections
    for the price of a file descriptor instead of a thread.

    ``reuse_port`` binds the listener with ``SO_REUSEPORT`` so several
    processes can accept on one port (the fleet's scale-out mechanism);
    ``conn_receiver``/``listen=False`` select the reactor-only fd-handoff
    accept path — see :mod:`repro.serving.fleet`.
    """
    mode = (concurrency or default_concurrency()).strip().lower()
    if mode not in _CONCURRENCY_MODES:
        raise ValueError(
            f"concurrency must be one of {_CONCURRENCY_MODES}, "
            f"not {mode!r}")
    if mode == "threaded":
        cls = ThreadedHttpServer
    else:
        from .reactor import ReactorHttpServer
        cls = ReactorHttpServer
    return cls(handler, host=host, port=port, backlog=backlog,
               max_connections=max_connections, retry_after_s=retry_after_s,
               admission=admission, load_coupling=load_coupling,
               assume_synced_clock=assume_synced_clock,
               idle_timeout_s=idle_timeout_s, max_body_bytes=max_body_bytes,
               max_header_bytes=max_header_bytes, health_path=health_path,
               metrics_path=metrics_path, quality_stats=quality_stats,
               reuse_port=reuse_port, conn_receiver=conn_receiver,
               listen=listen,
               workers=workers, max_buffered_bytes=max_buffered_bytes,
               max_pipeline=max_pipeline,
               pipeline_execution=pipeline_execution,
               stream_routes=stream_routes)
