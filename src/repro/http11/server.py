"""A threaded HTTP/1.1 server with persistent connections.

The server is handler-driven: you give it a callable
``handler(Request) -> Response`` and it owns sockets, keep-alive and error
responses.  The SOAP and SOAP-bin services plug their dispatchers in here.
"""

from __future__ import annotations

import math
import socket
import threading
from typing import Callable, Optional, Tuple

from .errors import HttpConnectionClosed, HttpParseError, HttpTooLarge
from .messages import LineReader, Request, Response, read_request

Handler = Callable[[Request], Response]


class HttpServer:
    """Minimal threaded HTTP server.

    Usage::

        def handler(request):
            return Response(status=200, body=b"hi")

        with HttpServer(handler) as server:
            ...  # server.address is (host, port)

    ``max_connections`` bounds the thread-per-connection growth: beyond the
    cap new connections are answered immediately with ``503 Service
    Unavailable`` (``Connection: close`` and a ``Retry-After`` of
    ``retry_after_s`` seconds, so well-behaved clients back off for exactly
    as long as the server suggests) instead of spawning a thread, so a
    client stampede degrades loudly rather than exhausting the process.
    ``None`` (the default) keeps the historical unbounded behaviour.
    """

    def __init__(self, handler: Handler, host: str = "127.0.0.1",
                 port: int = 0, backlog: int = 32,
                 max_connections: Optional[int] = None,
                 retry_after_s: float = 1.0) -> None:
        self.handler = handler
        self.max_connections = max_connections
        self.retry_after_s = max(0.0, retry_after_s)
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self.address: Tuple[str, int] = self._sock.getsockname()
        self._running = True
        self.requests_served = 0
        self.connections_accepted = 0
        self.connections_rejected = 0
        self._active_connections = 0
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self._accept_loop,
                                        name="http-server", daemon=True)
        self._thread.start()

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            # Disable Nagle before the handler thread even spawns: SOAP
            # RPC exchanges are small request/response pairs, and a
            # delayed-ACK/Nagle interaction costs ~40 ms per call.
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            with self._lock:
                self.connections_accepted += 1
                over_cap = (self.max_connections is not None
                            and self._active_connections
                            >= self.max_connections)
                if over_cap:
                    self.connections_rejected += 1
                else:
                    self._active_connections += 1
            if over_cap:
                self._reject_connection(conn)
                continue
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True)
            thread.start()

    def _reject_connection(self, conn: socket.socket) -> None:
        """Answer 503 and hang up — no handler thread is spawned."""
        response = Response.text(503, "connection limit reached")
        response.headers.set("Connection", "close")
        # RFC 9110 Retry-After is integer delay-seconds; round up so a
        # client honoring it never comes back while we are still over cap.
        response.headers.set("Retry-After",
                             str(int(math.ceil(self.retry_after_s))))
        with conn:
            self._safe_send(conn, response)

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            self._serve_connection_inner(conn)
        finally:
            with self._lock:
                self._active_connections -= 1

    def _serve_connection_inner(self, conn: socket.socket) -> None:
        reader = LineReader(conn.recv)
        with conn:
            while self._running:
                try:
                    request = read_request(reader)
                except HttpConnectionClosed:
                    return
                except HttpTooLarge:
                    self._safe_send(conn, Response.text(413, "too large"))
                    return
                except (HttpParseError, OSError) as exc:
                    self._safe_send(conn,
                                    Response.text(400, f"bad request: {exc}"))
                    return
                response = self._dispatch(request)
                keep_alive = request.wants_keep_alive()
                if not keep_alive:
                    response.headers.set("Connection", "close")
                with self._lock:
                    self.requests_served += 1
                if not self._safe_send(conn, response):
                    return
                if not keep_alive:
                    return

    def _dispatch(self, request: Request) -> Response:
        try:
            return self.handler(request)
        except Exception as exc:  # noqa: BLE001 - boundary of the server
            return Response.text(500, f"internal error: {exc}")

    @staticmethod
    def _safe_send(conn: socket.socket, response: Response) -> bool:
        try:
            conn.sendall(response.to_bytes())
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._running = False
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "HttpServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
