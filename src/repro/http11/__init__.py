"""Minimal HTTP/1.1 stack: the transport SOAP rides on.

Request/response model with case-insensitive headers, a threaded keep-alive
server, and a persistent-connection client::

    from repro.http11 import HttpServer, HttpConnection, Response

    with HttpServer(lambda req: Response(body=b"pong")) as server:
        with HttpConnection(server.address) as conn:
            assert conn.get("/").body == b"pong"
"""

from .client import (HttpConnection, HttpConnectionPool, default_pool,
                     parse_address)
from .errors import (HttpConnectionClosed, HttpError, HttpParseError,
                     HttpTooLarge)
from .messages import (MAX_BODY_BYTES, MAX_HEADER_BYTES, Headers, LineReader,
                       Request, Response, read_request, read_response)
from .server import HttpServer

__all__ = [
    "HttpError", "HttpParseError", "HttpConnectionClosed", "HttpTooLarge",
    "Headers", "Request", "Response", "LineReader", "read_request",
    "read_response", "MAX_HEADER_BYTES", "MAX_BODY_BYTES",
    "HttpServer", "HttpConnection", "HttpConnectionPool", "default_pool",
    "parse_address",
]
