"""Minimal HTTP/1.1 stack: the transport SOAP rides on.

Request/response model with case-insensitive headers, two server cores —
an event-driven selector reactor (default) and the classic
thread-per-connection server — plus persistent-connection and pipelined
clients::

    from repro.http11 import HttpServer, HttpConnection, Response

    with HttpServer(lambda req: Response(body=b"pong")) as server:
        with HttpConnection(server.address) as conn:
            assert conn.get("/").body == b"pong"

``HttpServer(...)`` is a factory: ``concurrency="reactor"`` (default,
overridable via the ``REPRO_HTTP_CONCURRENCY`` env var) builds a
:class:`ReactorHttpServer`, ``concurrency="threaded"`` the original
:class:`ThreadedHttpServer`.  Both expose the identical surface and run
the same test suite.
"""

from .client import (HttpConnection, HttpConnectionPool, default_pool,
                     parse_address)
from .errors import (HttpConnectionClosed, HttpError, HttpParseError,
                     HttpTooLarge)
from .messages import (MAX_BODY_BYTES, MAX_HEADER_BYTES, Headers, LineReader,
                       Request, RequestParser, Response, ResponseParser,
                       etag_matches, read_request, read_response)
from .pipeline import PipelinedHttpConnection, PipelineError
from .reactor import ReactorHttpServer
from .server import (CONCURRENCY_ENV, HttpServer, ThreadedHttpServer,
                     default_concurrency, set_reuse_port,
                     supports_reuse_port)

__all__ = [
    "HttpError", "HttpParseError", "HttpConnectionClosed", "HttpTooLarge",
    "Headers", "Request", "Response", "LineReader", "read_request",
    "read_response", "RequestParser", "ResponseParser", "etag_matches",
    "MAX_HEADER_BYTES", "MAX_BODY_BYTES",
    "HttpServer", "ThreadedHttpServer", "ReactorHttpServer",
    "default_concurrency", "CONCURRENCY_ENV",
    "set_reuse_port", "supports_reuse_port",
    "HttpConnection", "HttpConnectionPool", "default_pool", "parse_address",
    "PipelinedHttpConnection", "PipelineError",
]
