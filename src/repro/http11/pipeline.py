"""A pipelined HTTP/1.1 client connection: N requests in flight at once.

One keep-alive round trip per request is the serial client's floor: on a
loopback with a fast server, nearly all wall-clock time is spent waiting
for single responses.  :class:`PipelinedHttpConnection` removes that
floor by keeping up to ``depth`` requests on the wire per connection —
requests are serialized into the socket as long as fewer than ``depth``
responses are outstanding, and responses are matched back strictly in
request order (HTTP/1.1 pipelining, RFC 9112 §9.3.2).

The socket is non-blocking and pumped with ``select``: writes and reads
interleave, so a server that responds while we are still sending (or
stops reading while it responds) can never deadlock the client against a
full kernel buffer.

Failure model: a pipeline is all-or-prefix.  If the connection dies or
the server answers ``Connection: close`` mid-batch, the completed prefix
of responses is preserved and a :class:`PipelineError` reports
``failed_index`` — the first request that got no response — so callers
(the multi-connection dispatcher in ``transport.sockets``) can re-drive
just the unanswered suffix under their retry policy.
"""

from __future__ import annotations

import collections
import select
import socket
import time
from typing import Deque, List, Optional, Sequence, Tuple, Union

from .client import parse_address
from .errors import HttpError, HttpParseError
from .messages import Headers, Request, Response, ResponseParser

_RECV_SIZE = 256 * 1024
_SENDMSG_BATCH = 64


class PipelineError(HttpError):
    """A pipelined batch failed part-way through.

    ``responses`` holds the completed prefix (strictly in request order),
    ``failed_index`` is the index of the first request that received no
    response, and ``bytes_written`` tells retry machinery whether any of
    this batch reached the wire (False means a resend is provably safe).
    """

    def __init__(self, message: str, responses: List[Response],
                 failed_index: int, bytes_written: bool = True) -> None:
        super().__init__(message)
        self.responses = responses
        self.failed_index = failed_index
        self.bytes_written = bytes_written


class PipelinedHttpConnection:
    """One keep-alive connection that pipelines up to ``depth`` requests.

    ``depth=1`` degenerates to the serial request/response pattern (and is
    the A/B baseline in the bench harness).  The connection persists
    across :meth:`request_many` batches, so a long-lived client pays TCP
    setup once.
    """

    def __init__(self, address: Union[Tuple[str, int], str],
                 depth: int = 8, timeout: float = 30.0) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if isinstance(address, str):
            address = parse_address(address)
        self.address = address
        self.depth = depth
        #: inactivity bound: the batch fails if neither a byte is sent nor
        #: received for this long (not a bound on total batch duration)
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._parser: Optional[ResponseParser] = None
        self.requests_sent = 0
        self.batches = 0

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        sock = socket.create_connection(self.address, timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.setblocking(False)
        self._sock = sock
        self._parser = ResponseParser()

    def _ensure_connected(self) -> None:
        if self._sock is None:
            self._connect()

    # ------------------------------------------------------------------
    def request_many(self, requests: Sequence[Request]) -> List[Response]:
        """Drive ``requests`` through the pipeline; responses in order.

        Retries the *whole batch* once on a fresh connection only when
        nothing was sent and nothing received — the same provably-safe
        rule :class:`~repro.http11.client.HttpConnection` applies to a
        stale keep-alive socket.  Anything less clean raises
        :class:`PipelineError` with the completed prefix.
        """
        batch = list(requests)
        if not batch:
            return []
        for attempt in (0, 1):
            try:
                self._ensure_connected()
            except OSError as exc:
                self.close()
                exc.bytes_written = False
                raise
            try:
                responses = self._pump(batch)
            except PipelineError as exc:
                self.close()
                if (attempt == 0 and not exc.responses
                        and not exc.bytes_written):
                    continue
                raise
            self.requests_sent += len(batch)
            self.batches += 1
            return responses
        raise AssertionError("unreachable")  # pragma: no cover

    def request(self, request: Request) -> Response:
        return self.request_many([request])[0]

    def post(self, target: str, body: bytes, content_type: str,
             headers: Optional[Headers] = None) -> Response:
        req = Request(method="POST", target=target,
                      headers=headers or Headers(), body=body)
        req.headers.set("Content-Type", content_type)
        return self.request(req)

    def get(self, target: str) -> Response:
        return self.request(Request(method="GET", target=target))

    # ------------------------------------------------------------------
    def _pump(self, batch: List[Request]) -> List[Response]:
        sock, parser = self._sock, self._parser
        assert sock is not None and parser is not None
        host = f"{self.address[0]}:{self.address[1]}"
        total = len(batch)
        responses: List[Response] = []
        out: Deque[memoryview] = collections.deque()
        serialized = 0
        total_sent = 0
        server_closing = False
        tick = min(1.0, self.timeout)
        last_progress = time.monotonic()
        # poll(), not select(): held sockets can carry fd numbers far past
        # FD_SETSIZE when thousands of connections are open in-process
        read_flags = select.POLLIN | select.POLLPRI
        poller = select.poll()
        registered = read_flags | select.POLLOUT
        poller.register(sock, registered)

        def fail(message: str) -> PipelineError:
            return PipelineError(message, responses, len(responses),
                                 bytes_written=total_sent > 0)

        def ingest(data: bytes) -> None:
            nonlocal server_closing
            if not data:
                raise fail(
                    "server closed connection mid-pipeline "
                    f"({len(responses)}/{total} responses received)")
            parser.feed(data)
            while True:
                try:
                    response = parser.next_response()
                except HttpParseError as exc:
                    raise fail(f"bad pipelined response: {exc}") from exc
                if response is None:
                    break
                responses.append(response)
                connection = (response.headers.get("Connection")
                              or "").lower()
                if connection == "close":
                    server_closing = True
                    if len(responses) < total:
                        raise fail(
                            "server closed pipeline after "
                            f"{len(responses)}/{total} responses")

        while len(responses) < total:
            # Refill the window: request i goes on the wire only once
            # fewer than ``depth`` responses are outstanding before it.
            while (serialized < total and not server_closing
                   and serialized < len(responses) + self.depth):
                request = batch[serialized]
                if request.headers.get("Host") != host:
                    request.headers.set("Host", host)
                out.append(memoryview(request.to_bytes()))
                serialized += 1
            # Optimistic I/O: attempt the send and the recv directly and
            # fall back to poll() only when neither makes progress — a
            # healthy pipeline never pays a poll round trip per window.
            progressed = False
            if out:
                try:
                    if len(out) > 1:
                        buffers = [out[i] for i in
                                   range(min(len(out), _SENDMSG_BATCH))]
                        sent = sock.sendmsg(buffers)
                    else:
                        sent = sock.send(out[0])
                except (BlockingIOError, InterruptedError):
                    sent = 0
                except OSError as exc:
                    raise fail(f"pipeline send failed: {exc}") from exc
                total_sent += sent
                progressed = progressed or sent > 0
                while sent:
                    head = out[0]
                    if sent >= len(head):
                        sent -= len(head)
                        out.popleft()
                    else:
                        out[0] = head[sent:]
                        sent = 0
            try:
                data = sock.recv(_RECV_SIZE)
            except (BlockingIOError, InterruptedError):
                data = None
            except OSError as exc:
                raise fail(f"pipeline recv failed: {exc}") from exc
            if data is not None:
                ingest(data)
                progressed = True
            if progressed:
                last_progress = time.monotonic()
                continue
            # Nothing moved.  With no bytes queued to send, the only
            # possible event is inbound data: wait in a single C-level
            # timeout recv — one call, no Python poll round trip (this is
            # what keeps depth-1 at parity with the blocking client).
            if not out:
                sock.settimeout(tick)
                try:
                    data = sock.recv(_RECV_SIZE)
                except (socket.timeout, InterruptedError):
                    data = None
                except OSError as exc:
                    raise fail(f"pipeline recv failed: {exc}") from exc
                finally:
                    sock.setblocking(False)
                if data is not None:
                    ingest(data)
                    last_progress = time.monotonic()
                    continue
            else:
                # Queued bytes + full kernel buffer: wait on both sides.
                # Which event fired does not matter — the optimistic
                # attempts above discover it, and hangups/errors surface
                # through recv/send.
                wanted = read_flags | select.POLLOUT
                if wanted != registered:
                    poller.modify(sock, wanted)
                    registered = wanted
                try:
                    poller.poll(tick * 1000.0)
                except OSError as exc:
                    raise fail(f"pipeline poll failed: {exc}") from exc
            if time.monotonic() - last_progress >= self.timeout:
                raise fail(
                    f"pipeline stalled for {self.timeout:.1f}s "
                    f"({len(responses)}/{total} responses received)")
        if server_closing:
            self.close()
        return responses

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._parser = None

    def __enter__(self) -> "PipelinedHttpConnection":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
