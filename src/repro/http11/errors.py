"""Exception types for the minimal HTTP/1.1 stack."""

from __future__ import annotations


class HttpError(Exception):
    """Base class for HTTP stack errors."""


class HttpParseError(HttpError):
    """A request or response on the wire is malformed."""


class HttpConnectionClosed(HttpError):
    """The peer closed the connection mid-message (or before one)."""


class HttpTooLarge(HttpError):
    """A message exceeded the configured size limits."""
