"""A persistent-connection HTTP/1.1 client and a keep-alive pool.

:class:`HttpConnection` is one keep-alive connection; the paper's
persistent-session format cache assumes exactly this — repeated SOAP-bin
calls to the same host must not pay TCP setup (or a fresh PBIO format
announcement) per request.  :class:`HttpConnectionPool` extends that to
many hosts and many concurrent callers: per-host idle lists with max-idle
eviction and a retry-once policy for sockets that went stale while pooled.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, List, Optional, Tuple, Union

from .errors import HttpConnectionClosed, HttpError, HttpParseError
from .messages import (Headers, LAST_CHUNK, LineReader, MAX_HEADER_BYTES,
                       Request, Response, _MAX_CHUNK_LINE, _parse_chunk_size,
                       _read_headers, encode_chunk, read_response)


class HttpConnection:
    """One keep-alive connection to an HTTP server.

    Reconnects transparently if the server closed the connection between
    requests (idle keep-alive timeout), but never retries a request that
    failed mid-flight — retry policy belongs to callers who know their
    idempotency.
    """

    def __init__(self, address: Union[Tuple[str, int], str],
                 timeout: float = 30.0) -> None:
        if isinstance(address, str):
            address = parse_address(address)
        self.address = address
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._reader: Optional[LineReader] = None
        self.requests_sent = 0
        #: request-body bytes written through :meth:`stream` (pre-framing)
        self.bytes_streamed = 0

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        self._sock = socket.create_connection(self.address,
                                              timeout=self.timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = LineReader(self._sock.recv)

    def _ensure_connected(self) -> None:
        if self._sock is None:
            self._connect()

    def request(self, request: Request) -> Response:
        """Send ``request`` and read the response.

        Sets ``Host`` and ``Content-Length`` automatically.

        A stale keep-alive socket is reconnected and the request resent
        *only* when no request bytes had been written yet — resending after
        a partial write could double-execute a non-idempotent operation.
        Every propagated exception is annotated with a ``bytes_written``
        attribute so pool- and policy-level retries can make the same
        distinction.
        """
        request.headers.set("Host", f"{self.address[0]}:{self.address[1]}")
        payload = request.to_bytes()
        attempts = 0
        while True:
            sent = 0
            try:
                self._ensure_connected()
            except OSError as exc:
                self.close()
                exc.bytes_written = False
                raise
            try:
                view = memoryview(payload)
                while sent < len(view):
                    sent += self._sock.send(view[sent:])
                response = read_response(self._reader)
                break
            except (HttpConnectionClosed, OSError) as exc:
                self.close()
                attempts += 1
                if sent == 0 and attempts <= 1:
                    # Nothing reached the wire: a stale keep-alive socket.
                    # Reconnecting and resending is provably safe.
                    continue
                exc.bytes_written = sent > 0
                raise
        self.requests_sent += 1
        if (response.headers.get("Connection") or "").lower() == "close":
            self.close()
        return response

    def post(self, target: str, body: bytes, content_type: str,
             headers: Optional[Headers] = None) -> Response:
        """Convenience POST (what SOAP always does)."""
        request = Request(method="POST", target=target,
                          headers=headers or Headers(), body=body)
        request.headers.set("Content-Type", content_type)
        return self.request(request)

    def get(self, target: str) -> Response:
        return self.request(Request(method="GET", target=target))

    def stream(self, target: str, chunks,
               content_type: str = "application/octet-stream",
               headers: Optional[Headers] = None) -> "StreamResponse":
        """Full-duplex chunked POST: send the body from the ``chunks``
        iterable while the response streams back.

        The request body is written by a sender thread so a server that
        responds incrementally (the reactor's streaming routes) can apply
        backpressure without deadlocking the exchange: when the server
        pauses reads because *our* receive window is full, the sender
        blocks in ``send`` while this thread keeps draining the response.
        Neither side ever holds the full payload.

        Returns a :class:`StreamResponse`; iterate
        :meth:`StreamResponse.iter_chunks` to completion (or call
        :meth:`StreamResponse.read`) before reusing this connection.
        """
        self._ensure_connected()
        sock, reader = self._sock, self._reader
        request = Request(method="POST", target=target,
                          headers=headers or Headers(), body=b"")
        request.headers.set("Host",
                            f"{self.address[0]}:{self.address[1]}")
        request.headers.set("Content-Type", content_type)
        request.headers.set("Transfer-Encoding", "chunked")
        head = request.to_bytes()
        try:
            view = memoryview(head)
            sent = 0
            while sent < len(view):
                sent += sock.send(view[sent:])
        except OSError:
            self.close()
            raise
        sender_error: List[BaseException] = []

        def _send_body() -> None:
            try:
                for chunk in chunks:
                    framed = encode_chunk(chunk)
                    if not framed:
                        continue
                    fview = memoryview(framed)
                    done = 0
                    while done < len(fview):
                        done += sock.send(fview[done:])
                    self.bytes_streamed += len(chunk)
                tail = memoryview(LAST_CHUNK)
                done = 0
                while done < len(tail):
                    done += sock.send(tail[done:])
            except BaseException as exc:  # noqa: BLE001 - joined by reader
                sender_error.append(exc)

        sender = threading.Thread(target=_send_body, daemon=True,
                                  name="http-stream-sender")
        sender.start()
        try:
            status_line = reader.read_line().decode("latin-1")
            parts = status_line.split(" ", 2)
            if len(parts) < 2 or not parts[0].startswith("HTTP/"):
                raise HttpParseError(f"bad status line {status_line!r}")
            status = int(parts[1])
            response_headers = _read_headers(reader)
        except (HttpError, OSError, ValueError) as exc:
            self.close()
            sender.join(timeout=5.0)
            raise
        self.requests_sent += 1
        return StreamResponse(status, response_headers, self, reader,
                              sender, sender_error)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._reader = None

    def __enter__(self) -> "HttpConnection":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class StreamResponse:
    """The incrementally-read half of :meth:`HttpConnection.stream`.

    ``status``/``headers`` are available immediately; the body arrives
    through :meth:`iter_chunks` (or all at once via :meth:`read`).  A
    non-chunked response — an error reply from a non-streaming endpoint —
    is read whole and yielded as a single chunk, so error handling needs
    no second code path.
    """

    def __init__(self, status: int, headers: Headers,
                 conn: HttpConnection, reader: LineReader,
                 sender: threading.Thread,
                 sender_error: List[BaseException]) -> None:
        self.status = status
        self.headers = headers
        self._conn = conn
        self._reader = reader
        self._sender = sender
        self._sender_error = sender_error
        self._finished = False

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def iter_chunks(self):
        """Yield decoded response-body chunks as they arrive; finishes the
        exchange (joins the sender thread, re-raising its error)."""
        reader = self._reader
        te = (self.headers.get("Transfer-Encoding") or "").lower()
        if "chunked" not in te:
            length = int(self.headers.get("Content-Length") or 0)
            if length:
                yield reader.read_exact(length)
            self._finish()
            return
        while True:
            size = _parse_chunk_size(reader.read_line(limit=_MAX_CHUNK_LINE))
            if size == 0:
                while reader.read_line(limit=MAX_HEADER_BYTES):
                    pass  # drain trailers
                break
            data = reader.read_exact(size)
            if reader.read_exact(2) != b"\r\n":
                raise HttpParseError("chunk data not terminated by CRLF")
            yield data
        self._finish()

    def read(self) -> bytes:
        """The whole body, buffered (small responses / tests)."""
        return b"".join(self.iter_chunks())

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self._sender.join()
        if (self.headers.get("Connection") or "").lower() == "close":
            self._conn.close()
        if self._sender_error and self.ok:
            # On an error response the server may legitimately have hung
            # up mid-body (stream setup failed); the status already tells
            # the story and the broken-pipe noise would only mask it.
            raise self._sender_error[0]


class HttpConnectionPool:
    """A thread-safe pool of keep-alive connections, keyed by host.

    Checkout/checkin protocol: :meth:`acquire` hands out an idle connection
    for ``address`` (or a fresh one), :meth:`release` returns it for reuse.
    The one-shot helpers (:meth:`request`, :meth:`post`, :meth:`get`) wrap
    the pair and add the pool's retry policy: if a pooled connection turns
    out to be broken mid-request — the server dropped an idle keep-alive
    socket — the request is retried exactly once on a brand-new connection.

    Idle connections are evicted once they sit unused for ``idle_timeout``
    seconds, and at most ``max_idle_per_host`` are kept per host; both
    bounds are enforced lazily on acquire/release, so the pool needs no
    background thread.

    ``max_per_host`` additionally caps *live* connections per host —
    checked-out plus idle — so a burst of concurrent callers cannot open
    an unbounded number of sockets to one server.  At the cap,
    ``overflow="block"`` makes :meth:`acquire` wait up to
    ``acquire_timeout`` seconds for a connection to come back (then fail),
    while ``overflow="fail"`` raises immediately.
    """

    def __init__(self, max_idle_per_host: int = 8,
                 idle_timeout: float = 60.0,
                 timeout: float = 30.0,
                 max_per_host: Optional[int] = None,
                 overflow: str = "block",
                 acquire_timeout: float = 10.0) -> None:
        if overflow not in ("block", "fail"):
            raise ValueError("overflow must be 'block' or 'fail'")
        if max_per_host is not None and max_per_host < 1:
            raise ValueError("max_per_host must be >= 1")
        self.max_idle_per_host = max_idle_per_host
        self.idle_timeout = idle_timeout
        self.timeout = timeout
        self.max_per_host = max_per_host
        self.overflow = overflow
        self.acquire_timeout = acquire_timeout
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        #: address -> [(connection, time it went idle)], newest last
        self._idle: Dict[Tuple[str, int], List[Tuple[HttpConnection, float]]] = {}
        #: address -> number of connections currently checked out
        self._in_use: Dict[Tuple[str, int], int] = {}
        self._closed = False
        self.reused = 0
        self.created = 0
        self.evicted = 0
        self.retries = 0

    # ------------------------------------------------------------------
    def acquire(self, address: Union[Tuple[str, int], str]) -> HttpConnection:
        """Check out a connection to ``address`` (reusing an idle one)."""
        if isinstance(address, str):
            address = parse_address(address)
        deadline = time.monotonic() + self.acquire_timeout
        stale: List[HttpConnection] = []
        try:
            with self._cond:
                while True:
                    if self._closed:
                        raise HttpError("connection pool is closed")
                    now = time.monotonic()
                    bucket = self._idle.get(address)
                    reusable: Optional[HttpConnection] = None
                    while bucket:
                        conn, idle_since = bucket.pop()  # newest: warmest
                        if now - idle_since > self.idle_timeout:
                            stale.append(conn)
                        else:
                            reusable = conn
                            break
                    if reusable is not None:
                        self._in_use[address] = \
                            self._in_use.get(address, 0) + 1
                        self.reused += 1
                        return reusable
                    live = (self._in_use.get(address, 0)
                            + len(self._idle.get(address, ())))
                    if self.max_per_host is None or live < self.max_per_host:
                        self._in_use[address] = \
                            self._in_use.get(address, 0) + 1
                        self.created += 1
                        return HttpConnection(address, timeout=self.timeout)
                    if self.overflow == "fail":
                        raise HttpError(
                            f"connection pool exhausted for {address}: "
                            f"{live} live >= max_per_host="
                            f"{self.max_per_host}")
                    remaining = deadline - now
                    if remaining <= 0:
                        raise HttpError(
                            f"timed out after {self.acquire_timeout:.1f}s "
                            f"waiting for a pooled connection to {address} "
                            f"(max_per_host={self.max_per_host})")
                    self._cond.wait(remaining)
        finally:
            for conn in stale:
                self.evicted += 1
                conn.close()

    def release(self, conn: HttpConnection) -> None:
        """Return a healthy connection to the pool."""
        now = time.monotonic()
        excess: List[HttpConnection] = []
        with self._cond:
            self._checkin(conn.address)
            if self._closed:
                excess.append(conn)
            else:
                bucket = self._idle.setdefault(conn.address, [])
                bucket.append((conn, now))
                while len(bucket) > self.max_idle_per_host:
                    old, _ = bucket.pop(0)
                    excess.append(old)
            self._cond.notify_all()
        for old in excess:
            self.evicted += 1
            old.close()

    def discard(self, conn: HttpConnection) -> None:
        """Close a connection instead of pooling it (after an error)."""
        with self._cond:
            self._checkin(conn.address)
            self._cond.notify_all()
        conn.close()

    def _checkin(self, address: Tuple[str, int]) -> None:
        count = self._in_use.get(address, 0)
        if count <= 1:
            self._in_use.pop(address, None)
        else:
            self._in_use[address] = count - 1

    # ------------------------------------------------------------------
    def request(self, address: Union[Tuple[str, int], str],
                request: Request) -> Response:
        """Send ``request`` on a pooled connection, retrying once on a
        broken socket — but only when no request bytes had been written
        (``exc.bytes_written`` is False), so the silent retry can never
        double-execute a request whose body partially reached the server.
        Failures after bytes hit the wire propagate; deciding whether *those*
        are resendable is :class:`~repro.reliability.policy.RetryPolicy`'s
        job, because only callers know their idempotency.
        """
        conn = self.acquire(address)
        try:
            response = conn.request(request)
        except (HttpError, HttpConnectionClosed, OSError) as exc:
            self.discard(conn)
            if getattr(exc, "bytes_written", True):
                raise
            # The pooled socket was stale; one fresh-connection retry.
            self.retries += 1
            conn = self.acquire(conn.address)
            try:
                response = conn.request(request)
            except BaseException:
                self.discard(conn)
                raise
        self.release(conn)
        return response

    def post(self, address: Union[Tuple[str, int], str], target: str,
             body: bytes, content_type: str,
             headers: Optional[Headers] = None) -> Response:
        req = Request(method="POST", target=target,
                      headers=headers or Headers(), body=body)
        req.headers.set("Content-Type", content_type)
        return self.request(address, req)

    def get(self, address: Union[Tuple[str, int], str],
            target: str) -> Response:
        return self.request(address, Request(method="GET", target=target))

    # ------------------------------------------------------------------
    def idle_count(self, address: Optional[Union[Tuple[str, int], str]] = None
                   ) -> int:
        if isinstance(address, str):
            address = parse_address(address)
        with self._lock:
            if address is not None:
                return len(self._idle.get(address, []))
            return sum(len(bucket) for bucket in self._idle.values())

    def stats(self) -> Dict[str, int]:
        """Lifetime counters plus a point-in-time occupancy snapshot."""
        with self._lock:
            return {
                "created": self.created,
                "reused": self.reused,
                "evicted": self.evicted,
                "retries": self.retries,
                "in_use": sum(self._in_use.values()),
                "idle": sum(len(bucket) for bucket in self._idle.values()),
            }

    def close(self) -> None:
        """Close every pooled connection and refuse further acquires."""
        with self._cond:
            self._closed = True
            conns = [conn for bucket in self._idle.values()
                     for conn, _ in bucket]
            self._idle.clear()
            self._cond.notify_all()
        for conn in conns:
            conn.close()

    def __enter__(self) -> "HttpConnectionPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


_default_pool: Optional[HttpConnectionPool] = None
_default_pool_lock = threading.Lock()


def default_pool() -> HttpConnectionPool:
    """The process-wide shared pool (created on first use)."""
    global _default_pool
    with _default_pool_lock:
        if _default_pool is None or _default_pool._closed:
            _default_pool = HttpConnectionPool()
        return _default_pool


def parse_address(url: str) -> Tuple[str, int]:
    """Extract ``(host, port)`` from an ``http://host:port[/...]`` URL.

    >>> parse_address("http://127.0.0.1:8080/service")
    ('127.0.0.1', 8080)
    """
    if url.startswith("http://"):
        url = url[len("http://"):]
    authority = url.split("/", 1)[0]
    if ":" in authority:
        host, _, port_text = authority.partition(":")
        return host, int(port_text)
    return authority, 80
