"""A persistent-connection HTTP/1.1 client."""

from __future__ import annotations

import socket
from typing import Optional, Tuple, Union

from .errors import HttpConnectionClosed, HttpError
from .messages import Headers, LineReader, Request, Response, read_response


class HttpConnection:
    """One keep-alive connection to an HTTP server.

    Reconnects transparently if the server closed the connection between
    requests (idle keep-alive timeout), but never retries a request that
    failed mid-flight — retry policy belongs to callers who know their
    idempotency.
    """

    def __init__(self, address: Union[Tuple[str, int], str],
                 timeout: float = 30.0) -> None:
        if isinstance(address, str):
            address = parse_address(address)
        self.address = address
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._reader: Optional[LineReader] = None
        self.requests_sent = 0

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        self._sock = socket.create_connection(self.address,
                                              timeout=self.timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = LineReader(self._sock.recv)

    def _ensure_connected(self) -> None:
        if self._sock is None:
            self._connect()

    def request(self, request: Request) -> Response:
        """Send ``request`` and read the response.

        Sets ``Host`` and ``Content-Length`` automatically.
        """
        request.headers.set("Host", f"{self.address[0]}:{self.address[1]}")
        payload = request.to_bytes()
        attempts = 0
        while True:
            self._ensure_connected()
            try:
                self._sock.sendall(payload)
                response = read_response(self._reader)
                break
            except (HttpConnectionClosed, OSError):
                # A stale keep-alive connection: reconnect once, but only
                # if nothing of the response was consumed.
                self.close()
                attempts += 1
                if attempts > 1:
                    raise HttpError(
                        f"connection to {self.address} failed repeatedly")
        self.requests_sent += 1
        if (response.headers.get("Connection") or "").lower() == "close":
            self.close()
        return response

    def post(self, target: str, body: bytes, content_type: str,
             headers: Optional[Headers] = None) -> Response:
        """Convenience POST (what SOAP always does)."""
        request = Request(method="POST", target=target,
                          headers=headers or Headers(), body=body)
        request.headers.set("Content-Type", content_type)
        return self.request(request)

    def get(self, target: str) -> Response:
        return self.request(Request(method="GET", target=target))

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._reader = None

    def __enter__(self) -> "HttpConnection":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def parse_address(url: str) -> Tuple[str, int]:
    """Extract ``(host, port)`` from an ``http://host:port[/...]`` URL.

    >>> parse_address("http://127.0.0.1:8080/service")
    ('127.0.0.1', 8080)
    """
    if url.startswith("http://"):
        url = url[len("http://"):]
    authority = url.split("/", 1)[0]
    if ":" in authority:
        host, _, port_text = authority.partition(":")
        return host, int(port_text)
    return authority, 80
