"""Event-driven HTTP/1.1 server: selector reactor + bounded worker pool.

The thread-per-connection model spends a thread on every keep-alive
client, busy or not — at the ROADMAP's "millions of users" scale, idle
connections exhaust threads long before the compiled codecs or the
streaming XML engine become the bottleneck.  :class:`ReactorHttpServer`
spends a *file descriptor* instead:

* one **reactor thread** owns every socket: non-blocking accept, reads
  feeding an incremental :class:`~repro.http11.messages.RequestParser`
  (partial reads, split CRLFs, pipelined bursts all welcome), and a
  per-connection **write queue** flushed with scatter-gather ``sendmsg``
  when the kernel buffer allows;
* complete requests are handed to a **bounded worker pool** where the
  existing synchronous machinery — admission control, deadline shedding,
  quality coupling, the application handler — runs unchanged
  (``_ServerCore._respond`` is shared verbatim with the threaded server);
* **HTTP/1.1 pipelining** is supported server-side: back-to-back requests
  parsed from one buffer, responses delivered strictly in request order
  (out-of-order completions wait in their pipeline slot), pipeline
  aborted on ``Connection: close`` or a malformed request;
* **backpressure** bounds every connection: a client that never reads
  has its reads paused once ``max_buffered_bytes`` of responses are
  queued, and at most ``max_pipeline`` requests may wait in a
  connection's pipeline — memory per connection is O(limits), never
  O(client behaviour).

Semantics carried over from the threaded server (same test suite runs
against both): ``max_connections`` 503s, ``/healthz``, per-request
admission shedding with ``Retry-After``/``X-Shed-Reason``, 413/400/408
error replies, ``idle_timeout_s`` (here measured from the last message
*boundary*, so byte-at-a-time slowloris headers are evicted too), and
``close(drain_s=...)`` graceful drain with zero resets.

``pipeline_execution`` selects how pipelined requests on *one* connection
are executed: ``"serial"`` (default) runs them one at a time in arrival
order — the safe choice for stateful session protocols like PBIO format
announcements — while ``"concurrent"`` dispatches every parsed request to
the pool immediately and relies on the slot machinery for response
ordering.
"""

from __future__ import annotations

import collections
import os
import queue
import selectors
import socket
import threading
import time
from typing import Deque, Dict, List, Optional, Set

from .errors import HttpParseError, HttpTooLarge
from .messages import (LAST_CHUNK, MAX_BODY_BYTES, MAX_HEADER_BYTES, Request,
                       RequestParser, Response, encode_chunk)
from .server import Handler, _ServerCore, set_reuse_port

_LISTENER = "listener"
_HANDOFF = "handoff"
_WAKE = "wake"
#: sendmsg scatter-gather batch bound (IOV_MAX is 1024 on Linux; 64 keeps
#: each syscall's setup cost trivial while still batching a whole burst).
_SENDMSG_BATCH = 64
_RECV_SIZE = 256 * 1024


class _Slot:
    """One pipelined request's place in the response order."""

    __slots__ = ("request", "response", "dispatched", "keep_alive", "error",
                 "counted")

    def __init__(self, request: Optional[Request], keep_alive: bool = True,
                 error: bool = False) -> None:
        self.request = request
        self.response: Optional[Response] = None
        self.dispatched = False
        self.keep_alive = keep_alive
        self.error = error
        #: parsed requests count toward ``requests_served`` when answered;
        #: protocol-error replies (400/413/408) do not, matching the
        #: threaded server's accounting.
        self.counted = not error


class _ActiveStream:
    """One in-flight streaming request (chunked body draining through the
    reactor to a handler instead of buffering)."""

    __slots__ = ("request", "handler", "started", "keep_alive")

    def __init__(self, request: Request) -> None:
        self.request = request
        self.handler = None          # instantiated when the stream starts
        self.started = False         # response head written, body draining
        self.keep_alive = True


class _Conn:
    """Reactor-side connection state (touched only on the reactor thread)."""

    __slots__ = ("sock", "parser", "slots", "out", "out_bytes",
                 "boundary_at", "registered_mask", "closed", "read_eof",
                 "stop_parsing", "close_when_flushed", "paused",
                 "run", "run_lock", "run_active", "stream")

    def __init__(self, sock: socket.socket, parser: RequestParser,
                 now: float) -> None:
        self.sock = sock
        self.parser = parser
        self.slots: Deque[_Slot] = collections.deque()
        self.out: Deque[memoryview] = collections.deque()
        self.out_bytes = 0
        #: serial-mode work queue: the reactor appends parsed slots, ONE
        #: worker at a time owns the run (``run_active``) and drains it in
        #: order — a pipelined burst flows through a single handoff
        self.run: Deque[_Slot] = collections.deque()
        self.run_lock = threading.Lock()
        self.run_active = False
        #: last message boundary: connect time, or the moment the pipeline
        #: last ran dry.  The idle timer runs from here — receiving bytes
        #: does NOT reset it, which is what defeats slowloris trickling.
        self.boundary_at = now
        self.registered_mask = 0
        self.closed = False
        self.read_eof = False
        self.stop_parsing = False
        self.close_when_flushed = False
        self.paused = False
        #: active streaming request, or None (at most one per connection;
        #: it owns the wire until its terminal chunk goes out)
        self.stream: Optional[_ActiveStream] = None


class ReactorHttpServer(_ServerCore):
    """Event-driven HTTP server: see the module docstring.

    Accepts the same arguments as :class:`~repro.http11.server.HttpServer`
    plus the reactor tuning knobs:

    ``workers``
        Size of the bounded handler pool (default 8).  This bounds
        *handler* concurrency; request admission is still the
        ``admission`` controller's job.
    ``max_buffered_bytes``
        Per-connection cap on queued response bytes before reads pause.
    ``max_pipeline``
        Per-connection cap on requests waiting in the pipeline.
    ``pipeline_execution``
        ``"serial"`` or ``"concurrent"`` (see module docstring).
    """

    def __init__(self, handler: Handler, host: str = "127.0.0.1",
                 port: int = 0, backlog: int = 128,
                 max_connections: Optional[int] = None,
                 retry_after_s: float = 1.0,
                 admission=None, load_coupling=None,
                 assume_synced_clock: bool = False,
                 idle_timeout_s: Optional[float] = None,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 max_header_bytes: int = MAX_HEADER_BYTES,
                 health_path: str = "/healthz",
                 metrics_path: str = "/metrics",
                 quality_stats=None,
                 reuse_port: bool = False,
                 conn_receiver: Optional[socket.socket] = None,
                 listen: bool = True,
                 workers: int = 8,
                 max_buffered_bytes: int = 1 << 20,
                 max_pipeline: int = 128,
                 pipeline_execution: str = "serial",
                 stream_routes: Optional[Dict[str, object]] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if pipeline_execution not in ("serial", "concurrent"):
            raise ValueError(
                "pipeline_execution must be 'serial' or 'concurrent'")
        if not listen and conn_receiver is None:
            raise ValueError(
                "listen=False requires a conn_receiver — a server with "
                "neither could never see a connection")
        super().__init__(handler, max_connections=max_connections,
                         retry_after_s=retry_after_s, admission=admission,
                         load_coupling=load_coupling,
                         assume_synced_clock=assume_synced_clock,
                         idle_timeout_s=idle_timeout_s,
                         max_body_bytes=max_body_bytes,
                         max_header_bytes=max_header_bytes,
                         health_path=health_path,
                         metrics_path=metrics_path,
                         quality_stats=quality_stats)
        self.workers = workers
        self.max_buffered_bytes = max_buffered_bytes
        self.max_pipeline = max_pipeline
        self.pipeline_execution = pipeline_execution
        #: ``{target: factory}`` — requests to these paths arriving with
        #: ``Transfer-Encoding: chunked`` stream through the reactor
        #: instead of buffering: ``factory(request)`` returns a handler
        #: with ``on_chunk(data) -> Optional[bytes]`` and ``finish() ->
        #: Optional[bytes]``; returned bytes go out as response chunks.
        #: Backpressure is the ordinary write-queue bound: when
        #: ``max_buffered_bytes`` of response chunks are queued, reads
        #: pause and TCP flow control holds the sender.
        self.stream_routes: Dict[str, object] = dict(stream_routes or {})
        self._idle_cond = threading.Condition(self._lock)
        self._listener: Optional[socket.socket] = None
        if listen:
            self._listener = socket.socket(socket.AF_INET,
                                           socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET,
                                      socket.SO_REUSEADDR, 1)
            if reuse_port:
                set_reuse_port(self._listener)
            self._listener.bind((host, port))
            self._listener.listen(backlog)
            self._listener.setblocking(False)
            self.address = self._listener.getsockname()
        #: fd-handoff accept path: connected sockets arrive over this unix
        #: socket (``socket.send_fds`` on the parent acceptor's side)
        #: instead of — or in addition to — the listener.
        self._conn_receiver = conn_receiver
        if conn_receiver is not None:
            conn_receiver.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        if self._listener is not None:
            self._selector.register(self._listener, selectors.EVENT_READ,
                                    _LISTENER)
        if self._conn_receiver is not None:
            self._selector.register(self._conn_receiver,
                                    selectors.EVENT_READ, _HANDOFF)
        self._selector.register(self._wake_r, selectors.EVENT_READ, _WAKE)
        self._conns: Set[_Conn] = set()
        #: external control requests (drain) — reactor-thread code calls
        #: methods directly instead
        self._commands: Deque[str] = collections.deque()
        #: (conn, slot, response) tuples posted by workers
        self._completions: Deque = collections.deque()
        #: True while a wakeup byte is in the socketpair and undrained —
        #: lets back-to-back completions skip the send syscall
        self._wake_pending = False
        self._jobs: "queue.SimpleQueue" = queue.SimpleQueue()
        self._closed = False
        self._worker_threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"http-reactor-worker-{i}", daemon=True)
            for i in range(workers)]
        for thread in self._worker_threads:
            thread.start()
        self._thread = threading.Thread(target=self._run,
                                        name="http-reactor", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    # introspection (tests, bench, docs examples)
    # ------------------------------------------------------------------
    def connection_stats(self) -> List[Dict[str, object]]:
        """Point-in-time per-connection buffering/pipeline stats.

        Read from outside the reactor thread without locking: the values
        are monotonic counters and small ints, good enough for tests and
        the bench harness to assert backpressure bounds.
        """
        return [{"buffered_bytes": conn.out_bytes,
                 "pending": len(conn.slots),
                 "paused": conn.paused}
                for conn in list(self._conns)]

    # ------------------------------------------------------------------
    # worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._jobs.get()
            if job is None:
                return
            conn, slots = job
            if slots is None:
                self._drain_run(conn)
                continue
            for slot in slots:
                if conn.closed:
                    break
                self._complete(conn, slot)

    def _drain_run(self, conn: _Conn) -> None:
        """Own ``conn.run`` until it is empty: the reactor keeps appending
        newly parsed requests while we execute, so a whole pipelined burst
        crosses the queue in one handoff instead of one per batch."""
        while True:
            with conn.run_lock:
                if not conn.run or conn.closed:
                    conn.run.clear()
                    conn.run_active = False
                    return
                slot = conn.run.popleft()
            self._complete(conn, slot)

    def _complete(self, conn: _Conn, slot: _Slot) -> None:
        try:
            response = self._respond(slot.request)
        except Exception as exc:  # noqa: BLE001 - last-ditch boundary
            response = Response.text(500, f"internal error: {exc}")
        self._completions.append((conn, slot, response))
        self._wake()

    def _wake(self) -> None:
        if self._wake_pending:
            return  # an undrained wakeup already covers us
        self._wake_pending = True
        try:
            self._wake_w.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # the pipe is full, or we are shutting down

    # ------------------------------------------------------------------
    # reactor loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            while self._running:
                try:
                    events = self._selector.select(self._select_timeout())
                except OSError:
                    continue
                for key, mask in events:
                    data = key.data
                    if data is _WAKE:
                        self._drain_wake()
                    elif data is _LISTENER:
                        self._accept_ready()
                    elif data is _HANDOFF:
                        self._handoff_ready()
                    else:
                        self._socket_ready(data, mask)
                self._run_commands()
                self._process_completions()
                self._fire_timeouts()
        finally:
            self._teardown()

    def _select_timeout(self) -> Optional[float]:
        if self._commands or self._completions or not self._running:
            return 0
        if self.idle_timeout_s is None:
            return None
        now = time.monotonic()
        nearest: Optional[float] = None
        for conn in self._conns:
            if conn.slots or conn.out or conn.closed:
                continue  # not idle: the timer is armed at the boundary
            deadline = conn.boundary_at + self.idle_timeout_s
            if nearest is None or deadline < nearest:
                nearest = deadline
        if nearest is None:
            return None
        return max(0.0, nearest - now)

    def _drain_wake(self) -> None:
        # The flag is cleared AFTER the drain loop: the drain may eat a
        # byte a producer sent mid-loop (having re-set the flag), and a
        # True flag over an empty pipe would swallow every later wakeup.
        # Clearing last means the flag can only be True while a byte is
        # still in the pipe or a send is imminent — never stuck.
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass
        finally:
            self._wake_pending = False

    def _run_commands(self) -> None:
        while self._commands:
            command = self._commands.popleft()
            if command == "drain":
                self._begin_drain()

    # ------------------------------------------------------------------
    # accept / reject
    # ------------------------------------------------------------------
    def _accept_ready(self) -> None:
        while True:
            listener = self._listener
            if listener is None:
                return
            try:
                sock, _addr = listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            self._adopt_socket(sock)

    def _handoff_ready(self) -> None:
        """Adopt connected sockets handed over the fd-handoff channel.

        The parent acceptor sends each connection as one byte of payload
        plus the fd in ancillary data (``socket.send_fds``); EOF on the
        channel means the parent is gone — existing connections keep
        being served, but no new ones can arrive that way.
        """
        receiver = self._conn_receiver
        if receiver is None:
            return
        while True:
            try:
                msg, fds, _flags, _addr = socket.recv_fds(receiver, 64, 8)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._close_conn_receiver()
                return
            if not msg and not fds:
                self._close_conn_receiver()
                return
            for fd in fds:
                try:
                    sock = socket.socket(fileno=fd)
                except OSError:
                    try:
                        os.close(fd)
                    except OSError:
                        pass
                    continue
                self._adopt_socket(sock)

    def _adopt_socket(self, sock: socket.socket) -> None:
        """One accepted/handed-off connection enters the reactor."""
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        with self._lock:
            self.connections_accepted += 1
            over_cap = (self.max_connections is not None
                        and self._active_connections
                        >= self.max_connections)
            if over_cap:
                self.connections_rejected += 1
            else:
                self._active_connections += 1
        if over_cap:
            # The reject is written synchronously: ~120 bytes always
            # fit a fresh socket's send buffer, and not registering
            # the connection is the whole point of the cap.
            try:
                sock.sendall(self._reject_response().to_bytes())
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
            return
        sock.setblocking(False)
        parser = RequestParser(
            max_header_bytes=self.max_header_bytes,
            max_body_bytes=self.max_body_bytes)
        if self.stream_routes:
            parser.stream_decider = self._stream_decider
        conn = _Conn(sock, parser, time.monotonic())
        self._conns.add(conn)
        self._set_interest(conn)

    def _stream_decider(self, method: str, target: str, headers) -> bool:
        return target in self.stream_routes

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def _socket_ready(self, conn: _Conn, mask: int) -> None:
        if conn.closed:
            return
        if mask & selectors.EVENT_READ:
            self._read_ready(conn)
        if conn.closed:
            return
        if mask & selectors.EVENT_WRITE:
            self._flush(conn)

    def _read_ready(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(_RECV_SIZE)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(conn)
            return
        if not data:
            conn.read_eof = True
            if not conn.slots and not conn.out:
                self._close_conn(conn)
            else:
                self._set_interest(conn)  # half-close: finish the pipeline
            return
        if conn.stop_parsing:
            return  # bytes after Connection: close / an error are ignored
        conn.parser.feed(data)
        if conn.stream is not None and conn.stream.started:
            self._pump_stream(conn)
            if not conn.closed:
                self._flush(conn)
            return
        self._parse_available(conn)
        self._advance(conn)

    def _parse_available(self, conn: _Conn) -> None:
        """Turn buffered bytes into pipeline slots (up to the caps)."""
        while not conn.stop_parsing and len(conn.slots) < self.max_pipeline:
            try:
                request = conn.parser.next_request()
            except HttpTooLarge as exc:
                self._fail_conn(conn, Response.text(413, str(exc)))
                return
            except HttpParseError as exc:
                self._fail_conn(conn,
                                Response.text(400, f"bad request: {exc}"))
                return
            if request is None:
                return
            if request.streaming:
                # The head is out of the parser but the body is still in
                # flight: the stream may only own the wire once every
                # earlier pipelined response has flushed.
                conn.stream = _ActiveStream(request)
                self._set_interest(conn)
                return
            slot = _Slot(request, keep_alive=request.wants_keep_alive())
            conn.slots.append(slot)
            if not slot.keep_alive:
                # RFC 9112: requests pipelined after Connection: close
                # are not to be processed.
                conn.stop_parsing = True
            if request.target == self.health_path:
                # Health answers from the reactor thread itself so a
                # saturated worker pool can never mask readiness.
                slot.response = self._health_response()
                slot.dispatched = True

    def _fail_conn(self, conn: _Conn, response: Response) -> None:
        """Append a protocol-error reply and poison the pipeline: earlier
        responses still go out in order, then the connection closes."""
        slot = _Slot(None, keep_alive=False, error=True)
        slot.response = response
        slot.dispatched = True
        conn.slots.append(slot)
        conn.stop_parsing = True

    # ------------------------------------------------------------------
    # streaming routes (chunked bodies drained through the reactor)
    # ------------------------------------------------------------------
    def _start_stream(self, conn: _Conn) -> None:
        """Write the chunked response head and begin draining the body.

        Runs on the reactor thread; the stream handler itself also runs
        inline here (its per-chunk work is expected to be cheap — the
        heavy lifting is exactly what streaming avoids: buffering).
        """
        stream = conn.stream
        factory = self.stream_routes.get(stream.request.target)
        try:
            stream.handler = factory(stream.request)
        except Exception as exc:  # noqa: BLE001 - handler boundary
            # Head not sent yet: a normal error response is still possible.
            conn.stream = None
            self._fail_conn(conn,
                            Response.text(500, f"stream setup failed: {exc}"))
            # the caller (_advance) has already run its flush loop, and
            # _fail_conn set stop_parsing so no later read re-runs it —
            # advance again to serialize the error slot
            self._advance(conn)
            return
        stream.started = True
        stream.keep_alive = (stream.request.wants_keep_alive()
                             and not self._draining)
        with self._lock:
            self.chunked_requests += 1
        content_type = getattr(stream.handler, "content_type",
                               "application/octet-stream")
        head = (f"HTTP/1.1 200 OK\r\n"
                f"Transfer-Encoding: chunked\r\n"
                f"Content-Type: {content_type}\r\n")
        if not stream.keep_alive:
            head += "Connection: close\r\n"
        self._queue_bytes(conn, (head + "\r\n").encode("latin-1"))
        self._pump_stream(conn)

    def _pump_stream(self, conn: _Conn) -> None:
        """Drain buffered body bytes into the handler and its output onto
        the wire.  Called on every read while a started stream owns the
        connection; completion restores normal pipelined parsing."""
        stream = conn.stream
        try:
            data, done = conn.parser.drain_body()
        except (HttpParseError, HttpTooLarge):
            # Framing lost mid-stream and the 200 head is already out —
            # the truncated chunked body tells the client the response
            # is bad; all we can do is hang up.
            self._close_conn(conn)
            return
        try:
            out = stream.handler.on_chunk(data) if data else None
            tail = stream.handler.finish() if done else None
        except Exception:  # noqa: BLE001 - handler boundary, head is out
            self._close_conn(conn)
            return
        if data:
            conn.boundary_at = time.monotonic()  # body progress != idle
            with self._lock:
                self.streamed_bytes_in += len(data)
        produced = 0
        if out:
            produced += len(out)
            self._queue_bytes(conn, encode_chunk(out))
        if done:
            if tail:
                produced += len(tail)
                self._queue_bytes(conn, encode_chunk(tail) + LAST_CHUNK)
            else:
                self._queue_bytes(conn, LAST_CHUNK)
            conn.stream = None
            conn.boundary_at = time.monotonic()
            if not stream.keep_alive:
                conn.close_when_flushed = True
        if produced:
            with self._lock:
                self.streamed_bytes_out += produced
        if done:
            with self._lock:
                self.requests_served += 1
            # Back to normal framing: pipelined bytes (if any) parse now.
            if not conn.close_when_flushed:
                self._parse_available(conn)
            self._advance(conn)

    def _queue_bytes(self, conn: _Conn, payload: bytes) -> None:
        if not payload:
            return
        conn.out.append(memoryview(payload))
        conn.out_bytes += len(payload)

    # ------------------------------------------------------------------
    # dispatch / completion / ordered flush
    # ------------------------------------------------------------------
    def _pump_dispatch(self, conn: _Conn) -> None:
        if self.pipeline_execution == "serial":
            # append to the connection's owned run: one worker at a time
            # drains it in arrival order, so ordering is preserved and a
            # burst pays one queue handoff (cross-connection parallelism
            # comes from the pool)
            batch: List[_Slot] = []
            for slot in conn.slots:
                if not slot.dispatched:
                    slot.dispatched = True
                    batch.append(slot)
            if not batch:
                return
            with conn.run_lock:
                conn.run.extend(batch)
                start = not conn.run_active
                if start:
                    conn.run_active = True
            if start:
                self._jobs.put((conn, None))
        else:
            for slot in conn.slots:
                if not slot.dispatched:
                    slot.dispatched = True
                    self._jobs.put((conn, [slot]))

    def _process_completions(self) -> None:
        touched = set()
        while self._completions:
            conn, slot, response = self._completions.popleft()
            if conn.closed:
                continue
            slot.response = response
            touched.add(conn)
        for conn in touched:
            self._advance(conn)

    def _advance(self, conn: _Conn) -> None:
        """Flush the completed head of the pipeline, dispatch what is next,
        and recompute backpressure + selector interest."""
        if conn.closed:
            return
        served = 0
        while conn.slots and conn.slots[0].response is not None:
            slot = conn.slots.popleft()
            response = slot.response
            if slot.counted:
                served += 1
            keep_alive = (slot.keep_alive and not slot.error
                          and not self._draining)
            if not keep_alive:
                response.headers.set("Connection", "close")
            payload = response.to_bytes()
            conn.out.append(memoryview(payload))
            conn.out_bytes += len(payload)
            if slot.error or not slot.keep_alive:
                conn.close_when_flushed = True
                conn.slots.clear()
                break
        if served:
            with self._lock:
                self.requests_served += served
        if self._draining and not conn.slots and conn.stream is None:
            conn.close_when_flushed = True
        if not conn.close_when_flushed:
            # slots freed: resume parsing any already-buffered pipeline
            if conn.parser.buffered_bytes and not conn.stop_parsing:
                self._parse_available(conn)
            self._pump_dispatch(conn)
            if (conn.stream is not None and not conn.stream.started
                    and not conn.slots):
                self._start_stream(conn)
        self._flush(conn)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def _flush(self, conn: _Conn) -> None:
        if conn.closed:
            return
        sock = conn.sock
        while conn.out:
            try:
                if len(conn.out) > 1:
                    buffers = [conn.out[i]
                               for i in range(min(len(conn.out),
                                                  _SENDMSG_BATCH))]
                    sent = sock.sendmsg(buffers)
                else:
                    sent = sock.send(conn.out[0])
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close_conn(conn)
                return
            conn.out_bytes -= sent
            while sent:
                head = conn.out[0]
                if sent >= len(head):
                    sent -= len(head)
                    conn.out.popleft()
                else:
                    conn.out[0] = head[sent:]
                    sent = 0
        if not conn.out:
            if conn.close_when_flushed or (conn.read_eof
                                           and not conn.slots):
                self._close_conn(conn)
                return
            if not conn.slots:
                conn.boundary_at = time.monotonic()
        self._set_interest(conn)

    def _set_interest(self, conn: _Conn) -> None:
        if conn.closed:
            return
        conn.paused = (conn.out_bytes > self.max_buffered_bytes
                       or len(conn.slots) >= self.max_pipeline
                       # a stream waiting behind earlier pipelined
                       # responses must not keep buffering body bytes
                       or (conn.stream is not None
                           and not conn.stream.started))
        mask = 0
        if (not conn.read_eof and not conn.stop_parsing
                and not conn.paused):
            mask |= selectors.EVENT_READ
        if conn.out:
            mask |= selectors.EVENT_WRITE
        if mask == conn.registered_mask:
            return
        try:
            if conn.registered_mask == 0:
                self._selector.register(conn.sock, mask, conn)
            elif mask == 0:
                self._selector.unregister(conn.sock)
            else:
                self._selector.modify(conn.sock, mask, conn)
            conn.registered_mask = mask
        except (KeyError, ValueError, OSError):
            self._close_conn(conn)

    # ------------------------------------------------------------------
    # timeouts
    # ------------------------------------------------------------------
    def _fire_timeouts(self) -> None:
        if self.idle_timeout_s is None:
            return
        now = time.monotonic()
        expired = [conn for conn in self._conns
                   if not conn.closed and not conn.slots and not conn.out
                   and now - conn.boundary_at >= self.idle_timeout_s]
        for conn in expired:
            if conn.stream is not None and conn.stream.started:
                # The 200 head is already out; a 408 is impossible.
                self._close_conn(conn)
            elif conn.parser.mid_message:
                # A timeout mid-request earns a 408; silence between
                # requests is just a quiet hang-up.  The boundary-based
                # timer means byte-at-a-time header trickling (slowloris)
                # lands here instead of resetting the clock.
                self._fail_conn(conn, Response.text(408, "request timeout"))
                self._advance(conn)
            else:
                self._close_conn(conn)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _close_conn(self, conn: _Conn) -> None:
        if conn.closed:
            return
        conn.closed = True
        if conn.registered_mask:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
            conn.registered_mask = 0
        try:
            conn.sock.close()
        except OSError:
            pass
        self._conns.discard(conn)
        with self._idle_cond:
            self._active_connections -= 1
            self._idle_cond.notify_all()

    def _begin_drain(self) -> None:
        self._close_listener()
        self._close_conn_receiver()
        for conn in [c for c in self._conns
                     if not c.slots and not c.out and c.stream is None]:
            self._close_conn(conn)

    def _close_listener(self) -> None:
        listener, self._listener = self._listener, None
        if listener is None:
            return
        try:
            self._selector.unregister(listener)
        except (KeyError, ValueError, OSError):
            pass
        try:
            listener.close()
        except OSError:
            pass

    def _close_conn_receiver(self) -> None:
        receiver, self._conn_receiver = self._conn_receiver, None
        if receiver is None:
            return
        try:
            self._selector.unregister(receiver)
        except (KeyError, ValueError, OSError):
            pass
        try:
            receiver.close()
        except OSError:
            pass

    def _teardown(self) -> None:
        self._close_listener()
        self._close_conn_receiver()
        for conn in list(self._conns):
            self._close_conn(conn)
        for _ in self._worker_threads:
            self._jobs.put(None)
        try:
            self._selector.close()
        except OSError:
            pass
        for sock in (self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass

    def close(self, drain_s: Optional[float] = None) -> None:
        """Stop the server (same contract as the threaded server).

        ``drain_s=None`` is an immediate shutdown: the reactor closes
        every socket and exits.  With a drain bound: stop accepting and
        report not-ready, hang up idle keep-alive connections, let every
        in-flight/pipelined request finish with ``Connection: close``,
        and wait up to ``drain_s`` seconds before tearing down the rest.
        """
        if self._closed:
            return
        if drain_s is None:
            self._closed = True
            self._running = False
            self._wake()
            self._thread.join(timeout=5.0)
            return
        self._draining = True
        self._commands.append("drain")
        self._wake()
        deadline = time.monotonic() + max(0.0, drain_s)
        with self._idle_cond:
            while self._active_connections > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._idle_cond.wait(remaining)
        self._closed = True
        self._running = False
        self._wake()
        self._thread.join(timeout=5.0)
