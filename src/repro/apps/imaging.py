"""The image application (§IV-C.1): a Skyserver-like image server.

"remote clients request images and transformations on these images from an
image server.  Transformations include routines like scaling, edge
detection, etc.  The image server receiving a request responds with the
appropriate image, modified based on the quality file."

Workload shape matches the paper: 640x480 PPM frames at 3 bytes/pixel
(~0.9 MB ideal response), a quality file that resizes the output to 320x240
when response times are high, and edge detection as the requested
transformation.  The 'telescope library' is a set of synthetic star fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core import (HandlerRegistry, SoapBinClient, SoapBinService)
from ..media import apply_operation, scale_half, starfield
from ..netsim.clock import Clock
from ..pbio import Format, FormatRegistry
from ..transport import Channel

FULL_WIDTH, FULL_HEIGHT = 640, 480

#: The paper's quality file: full resolution on a healthy link, 320x240 once
#: response times cross the threshold.  The resize is a *custom* quality
#: handler — projection alone cannot shrink an image.
DEFAULT_QUALITY_FILE = """\
attribute rtt
history 3
0.0  0.20 - ImageFull
0.20 inf  - ImageHalf
handler ImageHalf resize_half
"""


def image_formats() -> Dict[str, Format]:
    """The message formats of the imaging service."""
    return {
        "GetImageRequest": Format.from_dict(
            "GetImageRequest", {"filename": "string",
                                "operation": "string"}),
        "ImageFull": Format.from_dict(
            "ImageFull", {"filename": "string", "width": "int32",
                          "height": "int32", "pixels": "uint8[]"}),
        "ImageHalf": Format.from_dict(
            "ImageHalf", {"filename": "string", "width": "int32",
                          "height": "int32", "pixels": "uint8[]"}),
    }


def resize_half_handler(value, src, dst, registry, attrs):
    """Quality handler: 2x2 box downscale of the response image."""
    image = value_to_image(value)
    half = scale_half(image)
    return {"filename": value["filename"], "width": half.shape[1],
            "height": half.shape[0], "pixels": half.reshape(-1)}


def image_to_value(filename: str, image: np.ndarray) -> Dict[str, object]:
    """Pack an image array into the response message shape."""
    return {"filename": filename, "width": image.shape[1],
            "height": image.shape[0],
            "pixels": np.ascontiguousarray(image).reshape(-1)}


def value_to_image(value: Dict[str, object]) -> np.ndarray:
    """Rebuild the numpy image from a response message value."""
    pixels = np.asarray(value["pixels"], dtype=np.uint8)
    return pixels.reshape(int(value["height"]), int(value["width"]), 3)


class ImageServer:
    """The image server: a library of frames plus transformation dispatch."""

    def __init__(self, registry: Optional[FormatRegistry] = None,
                 quality_file: Optional[str] = DEFAULT_QUALITY_FILE,
                 n_images: int = 4, prep_time_fn=None) -> None:
        self.registry = registry if registry is not None else FormatRegistry()
        self.formats = image_formats()
        for fmt in self.formats.values():
            self.registry.register(fmt)
        handlers = HandlerRegistry()
        handlers.register("resize_half", resize_half_handler)
        self.service = SoapBinService(self.registry,
                                      quality_text=quality_file,
                                      handlers=handlers,
                                      prep_time_fn=prep_time_fn)
        self.service.add_operation("GetImage",
                                   self.formats["GetImageRequest"],
                                   self.formats["ImageFull"],
                                   self._get_image)
        self.library: Dict[str, np.ndarray] = {
            f"sky{i:02d}.ppm": starfield(FULL_WIDTH, FULL_HEIGHT, seed=i)
            for i in range(n_images)}
        self.requests = 0

    @property
    def endpoint(self):
        return self.service.endpoint

    def _get_image(self, params: Dict[str, object]) -> Dict[str, object]:
        filename = str(params["filename"])
        if filename not in self.library:
            raise KeyError(f"no image named {filename!r}")
        image = apply_operation(str(params["operation"]),
                                self.library[filename])
        self.requests += 1
        return image_to_value(filename, image)


class ImagingClient:
    """Client wrapper returning reassembled numpy images."""

    def __init__(self, channel: Channel, registry: FormatRegistry,
                 clock: Optional[Clock] = None) -> None:
        self.formats = image_formats()
        self._client = SoapBinClient(channel, registry, clock=clock)

    def request_image(self, filename: str,
                      operation: str = "edge") -> np.ndarray:
        """Fetch and rebuild one transformed image."""
        out = self._client.call("GetImage",
                                {"filename": filename,
                                 "operation": operation},
                                self.formats["GetImageRequest"],
                                self.formats["ImageFull"])
        return value_to_image(out)

    @property
    def rtt_estimate(self) -> Optional[float]:
        return self._client.estimator.estimate


@dataclass
class ExperimentPoint:
    """One sample of the Fig. 8 series."""

    time: float
    response_time: float
    response_bytes: int


def fixed_policy_quality_file(message_type: str) -> str:
    """A degenerate quality file pinning one message type (the Fig. 8
    'large only' / 'small only' baselines)."""
    handler = ("handler ImageHalf resize_half\n"
               if message_type == "ImageHalf" else "")
    return (f"attribute rtt\nhistory 1\n0.0 inf - {message_type}\n{handler}")


def run_imaging_experiment(policy: str, duration: float = 90.0,
                           think_time: float = 1.0,
                           seed: int = 2004) -> List[ExperimentPoint]:
    """Drive the imaging client over the Fig. 8 scenario.

    ``policy`` is ``"full"``, ``"half"`` or ``"adaptive"``.  Returns the
    response-time series against experiment time on the scenario's stepped
    cross-traffic (UDP load ramping up and back down on the 100 Mbps link).
    """
    from ..netsim import imaging_scenario
    from ..transport import SimChannel

    quality = {
        "full": fixed_policy_quality_file("ImageFull"),
        "half": fixed_policy_quality_file("ImageHalf"),
        "adaptive": DEFAULT_QUALITY_FILE,
    }[policy]
    scenario = imaging_scenario(seed=seed)
    clock = scenario.clock
    server = ImageServer(quality_file=quality,
                         prep_time_fn=clock.now)
    channel = SimChannel(server.endpoint, scenario.link, clock)
    client = ImagingClient(channel, server.registry, clock=clock)
    points: List[ExperimentPoint] = []
    index = 0
    while clock.now() < duration:
        start = clock.now()
        filename = f"sky{index % len(server.library):02d}.ppm"
        client.request_image(filename, "edge")
        record = channel.log[-1]
        points.append(ExperimentPoint(time=start,
                                      response_time=clock.now() - start,
                                      response_bytes=record.response_bytes))
        clock.advance(think_time)
        index += 1
    return points
