"""The molecular-dynamics bond server (§IV-C.2).

"a 'bond server' ... constructs a graph, where the vertices represent the
atoms and the edges represent bonds.  This data is available for a sequence
of timesteps. ... The SOAP-binQ quality file is formulated such that the
server sends collective data corresponding to as many timestamps (between 1
and 4) in its response, as indicated by available network resources."

Message design: the application's response type carries a fixed-size window
of 4 timesteps plus a ``count``; the reduced quality types carry 2 or 1.
The ``take_batch`` quality handler slices the window to the destination
type's capacity and fixes up ``count`` — the client-side projection then
pads the missing timesteps with zeroes, and consumers read only ``count``
entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core import HandlerRegistry, SoapBinClient, SoapBinService
from ..media import MoleculeTrajectory
from ..netsim.clock import Clock
from ..pbio import Format, FormatRegistry
from ..transport import Channel

MAX_BATCH = 4

DEFAULT_QUALITY_FILE = """\
attribute rtt
history 3
0.0   0.20 - BondBatch4
0.20  0.45 - BondBatch2
0.45  inf  - BondBatch1
handler BondBatch2 take_batch
handler BondBatch1 take_batch
"""


def bond_formats() -> Dict[str, Format]:
    """Message formats for the bond service (graph per timestep)."""
    formats = {
        "Atom": Format.from_dict(
            "Atom", {"id": "int32", "x": "float64", "y": "float64",
                     "z": "float64"}),
        "Bond": Format.from_dict("Bond", {"a": "int32", "b": "int32"}),
        "Timestep": Format.from_dict(
            "Timestep", {"step": "int32", "atoms": "struct Atom[]",
                         "bonds": "struct Bond[]"}),
        "GetBondsRequest": Format.from_dict(
            "GetBondsRequest", {"start": "int32"}),
    }
    for capacity in (4, 2, 1):
        formats[f"BondBatch{capacity}"] = Format.from_dict(
            f"BondBatch{capacity}",
            {"count": "int32", "timesteps": f"struct Timestep[{capacity}]"})
    return formats


def take_batch_handler(value, src, dst, registry, attrs):
    """Quality handler: keep as many timesteps as the smaller type holds."""
    capacity = dst.field("timesteps").ftype.length
    kept = list(value["timesteps"])[:capacity]
    return {"count": len(kept), "timesteps": kept}


def empty_timestep() -> Dict[str, object]:
    return {"step": 0, "atoms": [], "bonds": []}


class BondServer:
    """Serves sliding windows of trajectory timesteps."""

    def __init__(self, registry: Optional[FormatRegistry] = None,
                 quality_file: Optional[str] = DEFAULT_QUALITY_FILE,
                 n_atoms: int = 100, seed: int = 7,
                 prep_time_fn=None) -> None:
        self.registry = registry if registry is not None else FormatRegistry()
        self.formats = bond_formats()
        for fmt in self.formats.values():
            self.registry.register(fmt)
        handlers = HandlerRegistry()
        handlers.register("take_batch", take_batch_handler)
        self.service = SoapBinService(self.registry,
                                      quality_text=quality_file,
                                      handlers=handlers,
                                      prep_time_fn=prep_time_fn)
        self.service.add_operation("GetBonds",
                                   self.formats["GetBondsRequest"],
                                   self.formats["BondBatch4"],
                                   self._get_bonds)
        self._trajectory = MoleculeTrajectory(n_atoms=n_atoms, seed=seed)
        self._history: List[Dict[str, object]] = []

    @property
    def endpoint(self):
        return self.service.endpoint

    def _timestep_at(self, index: int) -> Dict[str, object]:
        while len(self._history) <= index:
            self._history.append(self._trajectory.timestep())
            self._trajectory.advance()
        return self._history[index]

    def _get_bonds(self, params: Dict[str, object]) -> Dict[str, object]:
        start = int(params["start"])
        if start < 0:
            raise ValueError("start must be non-negative")
        window = [self._timestep_at(start + i) for i in range(MAX_BATCH)]
        return {"count": len(window), "timesteps": window}


class BondClient:
    """Client returning only the genuinely transmitted timesteps."""

    def __init__(self, channel: Channel, registry: FormatRegistry,
                 clock: Optional[Clock] = None) -> None:
        self.formats = bond_formats()
        self._client = SoapBinClient(channel, registry, clock=clock)
        self.cursor = 0

    def fetch(self, start: Optional[int] = None) -> List[Dict[str, object]]:
        """Fetch the next window; returns the real (count-limited) batch."""
        if start is None:
            start = self.cursor
        out = self._client.call("GetBonds", {"start": start},
                                self.formats["GetBondsRequest"],
                                self.formats["BondBatch4"])
        count = int(out["count"])
        batch = list(out["timesteps"])[:count]
        self.cursor = start + max(count, 1)
        return batch

    @property
    def rtt_estimate(self) -> Optional[float]:
        return self._client.estimator.estimate


@dataclass
class MdPoint:
    """One sample of the Fig. 9 series."""

    time: float
    response_time: float
    timesteps_delivered: int
    response_bytes: int


def fixed_policy_quality_file(message_type: str) -> str:
    handler = ("" if message_type == "BondBatch4"
               else f"handler {message_type} take_batch\n")
    return f"attribute rtt\nhistory 1\n0.0 inf - {message_type}\n{handler}"


def run_mdbond_experiment(policy: str, duration: float = 40.0,
                          think_time: float = 0.5,
                          seed: int = 2004) -> List[MdPoint]:
    """Drive the bond client over the Fig. 9 scenario (ADSL + UDP bursts).

    ``policy``: ``"four"`` (always 4 timesteps), ``"one"`` (always 1) or
    ``"adaptive"`` (1-4 by network conditions).
    """
    from ..netsim import mdbond_scenario
    from ..transport import SimChannel

    quality = {
        "four": fixed_policy_quality_file("BondBatch4"),
        "one": fixed_policy_quality_file("BondBatch1"),
        "adaptive": DEFAULT_QUALITY_FILE,
    }[policy]
    scenario = mdbond_scenario(seed=seed)
    clock = scenario.clock
    server = BondServer(quality_file=quality, prep_time_fn=clock.now)
    channel = SimChannel(server.endpoint, scenario.link, clock)
    client = BondClient(channel, server.registry, clock=clock)
    points: List[MdPoint] = []
    while clock.now() < duration:
        start = clock.now()
        batch = client.fetch()
        record = channel.log[-1]
        points.append(MdPoint(time=start,
                              response_time=clock.now() - start,
                              timesteps_delivered=len(batch),
                              response_bytes=record.response_bytes))
        clock.advance(think_time)
    return points
