"""The commercial application (§IV-C.3): an airline operational
information system.

"information is continuously produced, entered in a large, memory-resident
data set, business rules are applied to it, and resultant data is shared
with end users.  In the specific scenario used here, flight and passenger
information is collected and distributed, and excerpts of such information
are shared with relevant parties, such as flight caterers."

The in-memory dataset holds flights and passenger manifests; the business
rule of interest derives catering manifests (meal orders per flight) which
clients — the caterers — query.  Table I's four transports are exposed as
encoders over the same catering record so event rates can be compared:
plain SOAP XML, SOAP-bin (PBIO with SOAP-bin framing), native PBIO, and
compressed XML.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..compress import get_codec
from ..core import ConversionHandler, SoapBinClient, SoapBinService
from ..pbio import Format, FormatRegistry, PbioSession
from ..soap import SoapClient
from ..transport import Channel

MEAL_CODES = ["VGML", "AVML", "KSML", "DBML", "GFML", "CHML", "RGML"]
AIRPORTS = ["ATL", "JFK", "LAX", "ORD", "DFW", "SEA", "BOS", "MIA"]


def airline_formats() -> Dict[str, Format]:
    return {
        "MealOrder": Format.from_dict(
            "MealOrder", {"seat": "string", "meal_code": "string",
                          "special": "int32", "quantity": "int32"}),
        "GetCateringRequest": Format.from_dict(
            "GetCateringRequest", {"flight": "string"}),
        "CateringResponse": Format.from_dict(
            "CateringResponse", {"flight": "string", "date": "string",
                                 "origin": "string", "dest": "string",
                                 "orders": "struct MealOrder[]"}),
    }


@dataclass
class Passenger:
    """One manifest row of the memory-resident dataset."""

    seat: str
    name: str
    meal_code: str
    special: int


class AirlineDataset:
    """Deterministic flights + manifests (the OIS's memory-resident data)."""

    def __init__(self, n_flights: int = 12, passengers_per_flight: int = 35,
                 seed: int = 1972) -> None:
        rng = random.Random(seed)
        self.flights: Dict[str, List[Passenger]] = {}
        self.routes: Dict[str, Dict[str, str]] = {}
        for i in range(n_flights):
            flight = f"DL{100 + i}"
            origin, dest = rng.sample(AIRPORTS, 2)
            self.routes[flight] = {"origin": origin, "dest": dest,
                                   "date": "2004-03-26"}
            manifest = []
            for p in range(passengers_per_flight):
                row = p // 6 + 1
                seat = f"{row}{'ABCDEF'[p % 6]}"
                manifest.append(Passenger(
                    seat=seat,
                    name=f"PAX{i:02d}{p:03d}",
                    meal_code=rng.choice(MEAL_CODES),
                    special=1 if rng.random() < 0.2 else 0))
            self.flights[flight] = manifest
        self._rng = rng

    def flight_numbers(self) -> List[str]:
        return sorted(self.flights)

    def apply_update(self) -> str:
        """Business-rule tick: a passenger changes their meal order.

        Returns the affected flight (whose catering excerpt is now stale
        and gets re-shared — this is the 'event' of the event-rate table).
        """
        flight = self._rng.choice(self.flight_numbers())
        passenger = self._rng.choice(self.flights[flight])
        passenger.meal_code = self._rng.choice(MEAL_CODES)
        return flight

    def catering_for(self, flight: str) -> Dict[str, object]:
        """The catering excerpt shared with caterers (business rule)."""
        if flight not in self.flights:
            raise KeyError(f"unknown flight {flight!r}")
        route = self.routes[flight]
        orders = [{"seat": p.seat, "meal_code": p.meal_code,
                   "special": p.special, "quantity": 1}
                  for p in self.flights[flight]]
        return {"flight": flight, "date": route["date"],
                "origin": route["origin"], "dest": route["dest"],
                "orders": orders}


class AirlineServer:
    """The OIS frontend: catering queries over SOAP-bin (or plain SOAP)."""

    def __init__(self, registry: Optional[FormatRegistry] = None,
                 **dataset_kwargs) -> None:
        self.registry = registry if registry is not None else FormatRegistry()
        self.formats = airline_formats()
        for fmt in self.formats.values():
            self.registry.register(fmt)
        self.dataset = AirlineDataset(**dataset_kwargs)
        self.service = SoapBinService(self.registry)
        self.service.add_operation("GetCatering",
                                   self.formats["GetCateringRequest"],
                                   self.formats["CateringResponse"],
                                   self._get_catering)

    @property
    def endpoint(self):
        return self.service.endpoint

    def _get_catering(self, params: Dict[str, object]) -> Dict[str, object]:
        return self.dataset.catering_for(str(params["flight"]))


class CateringClient:
    """A caterer pulling manifests; speaks binary or XML."""

    def __init__(self, channel: Channel, registry: FormatRegistry,
                 style: str = "bin") -> None:
        self.formats = airline_formats()
        if style == "bin":
            self._client = SoapBinClient(channel, registry)
            self._call = self._client.call
        elif style == "xml":
            self._client = SoapClient(channel, registry)
            self._call = self._client.call
        else:
            raise ValueError("style must be 'bin' or 'xml'")

    def catering(self, flight: str) -> Dict[str, object]:
        return self._call("GetCatering", {"flight": flight},
                          self.formats["GetCateringRequest"],
                          self.formats["CateringResponse"])


# ----------------------------------------------------------------------
# Table I: per-protocol event encodings
# ----------------------------------------------------------------------

@dataclass
class EventEncoding:
    """One protocol row of Table I: the encoder and its wire size."""

    name: str
    encode: callable
    decode: callable

    def wire_size(self, value: Dict[str, object]) -> int:
        return len(self.encode(value))


def event_encodings(registry: Optional[FormatRegistry] = None,
                    codec_name: str = "lzss") -> Dict[str, EventEncoding]:
    """The four Table I transports over the catering record.

    * ``SOAP`` — full XML envelope;
    * ``SOAP-bin`` — PBIO payload with SOAP-bin wire framing;
    * ``Native PBIO`` — bare PBIO payload (the core OIS transport);
    * ``SOAP (compressed XML)`` — the XML envelope through Lempel-Ziv
      (LZSS by default, matching the vintage of the paper's compressor;
      pass ``codec_name="zlib"`` for DEFLATE).
    """
    registry = registry if registry is not None else FormatRegistry()
    formats = airline_formats()
    for fmt in formats.values():
        registry.register(fmt)
    response = formats["CateringResponse"]
    handler = ConversionHandler(response, registry)
    codec = get_codec(codec_name)

    from ..soap import build_envelope, envelope_to_bytes, parse_envelope
    from ..soap.encoding import decode_fields, encode_fields
    from ..xmlcore import Element

    def soap_encode(value):
        wrapper = Element("GetCateringResponse")
        encode_fields(wrapper, value, response, registry)
        return envelope_to_bytes(build_envelope([wrapper]))

    def soap_decode(blob):
        envelope = parse_envelope(blob)
        return decode_fields(envelope.first_body_element(), response,
                             registry)

    # SOAP-bin: a steady-state session (announcement already made)
    tx = PbioSession(registry)
    rx = PbioSession(registry)

    def bin_encode(value):
        return tx.pack_bytes(response, value)

    def bin_decode(blob):
        return rx.unpack_stream(blob)[1]

    return {
        "SOAP": EventEncoding("SOAP", soap_encode, soap_decode),
        "SOAP-bin": EventEncoding("SOAP-bin", bin_encode, bin_decode),
        "Native PBIO": EventEncoding(
            "Native PBIO", handler.to_binary, handler.from_binary),
        "SOAP (compressed XML)": EventEncoding(
            "SOAP (compressed XML)",
            lambda value: codec.compress(soap_encode(value)),
            lambda blob: soap_decode(codec.decompress(blob))),
    }


def event_stream(dataset: AirlineDataset, n_events: int) -> Iterator[Dict[str, object]]:
    """Successive catering excerpts as the dataset keeps updating."""
    for _ in range(n_events):
        flight = dataset.apply_update()
        yield dataset.catering_for(flight)
