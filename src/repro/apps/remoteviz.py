"""Remote visualization (§IV-C.4): service portal over an ECho bond source.

Architecture of Fig. 10:

1. the service portal advertises its services through WSDL;
2. display clients obtain the WSDL,
3. and construct requests carrying *filter code* and the desired output
   format;
4. data arriving from the (ECho) bondserver is modified by the filter code,
5. and sent back in the requested format (SVG — "just an XML document" —
   or raw binary).

The client can dynamically change the filter code and the output format.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core import SoapBinClient, SoapBinService
from ..echo import ChannelDirectory, EventChannel, compile_filter
from ..media import MoleculeTrajectory, molecule_to_svg
from ..pbio import Format, FormatRegistry, StructRef
from ..transport import Channel
from ..wsdl import (WsdlDocument, WsdlMessage, WsdlOperation, WsdlPortType,
                    emit_wsdl)
from .mdbond import bond_formats

BOND_CHANNEL = "bondserver"


def viz_formats() -> Dict[str, Format]:
    formats = bond_formats()
    return {
        "Timestep": formats["Timestep"],
        "Atom": formats["Atom"],
        "Bond": formats["Bond"],
        "GetVisualizationRequest": Format.from_dict(
            "GetVisualizationRequest",
            {"filter_code": "string", "output_format": "string"}),
        "GetVisualizationResponse": Format.from_dict(
            "GetVisualizationResponse",
            {"output_format": "string", "svg": "string",
             "raw": "struct Timestep"}),
    }


class BondEventSource:
    """The ECho bondserver backend: publishes timesteps onto a channel."""

    def __init__(self, channel: EventChannel,
                 n_atoms: int = 100, seed: int = 7) -> None:
        self.channel = channel
        self._trajectory = MoleculeTrajectory(n_atoms=n_atoms, seed=seed)
        self._format = bond_formats()["Timestep"]

    def publish(self, n_steps: int = 1) -> None:
        """Generate and publish ``n_steps`` timesteps."""
        for _ in range(n_steps):
            self.channel.submit(self._format, self._trajectory.timestep())
            self._trajectory.advance()


class ServicePortal:
    """The portal: ECho sink on one side, SOAP-bin service on the other."""

    def __init__(self, registry: Optional[FormatRegistry] = None,
                 location: str = "http://127.0.0.1:0/viz") -> None:
        self.registry = registry if registry is not None else FormatRegistry()
        self.formats = viz_formats()
        for fmt in self.formats.values():
            self.registry.register(fmt)
        self.directory = ChannelDirectory()
        self.bond_channel = self.directory.open(
            BOND_CHANNEL, self.formats["Timestep"])
        self.source = BondEventSource(self.bond_channel)
        self._latest: Optional[Dict[str, object]] = None
        self.bond_channel.subscribe(self._sink)
        self.location = location
        self.service = SoapBinService(self.registry)
        self.service.add_operation("GetVisualization",
                                   self.formats["GetVisualizationRequest"],
                                   self.formats["GetVisualizationResponse"],
                                   self._get_visualization)
        self.source.publish()  # prime the channel

    @property
    def endpoint(self):
        return self.service.endpoint

    def _sink(self, fmt: Format, value: Dict[str, object]) -> None:
        self._latest = value

    # ------------------------------------------------------------------
    def wsdl(self) -> str:
        """The portal's service advertisement (step 1 of Fig. 10)."""
        document = WsdlDocument(name="viz_portal",
                                target_namespace="urn:repro:viz")
        for name in ("Atom", "Bond", "Timestep",
                     "GetVisualizationResponse"):
            document.add_type(self.formats[name])
        document.add_message(WsdlMessage(
            "GetVisualizationRequest",
            list((f.name, f.ftype)
                 for f in self.formats["GetVisualizationRequest"].fields)))
        document.add_message(WsdlMessage(
            "GetVisualizationResponse",
            [("result", StructRef("GetVisualizationResponse"))]))
        document.port_types["VizPortType"] = WsdlPortType("VizPortType", [
            WsdlOperation("GetVisualization", "GetVisualizationRequest",
                          "GetVisualizationResponse")])
        document.location = self.location
        return emit_wsdl(document)

    # ------------------------------------------------------------------
    def _get_visualization(self, params: Dict[str, object]) -> Dict[str, object]:
        """Steps 3-5: apply the client's filter, render the output format."""
        self.source.publish()  # fresh data arrives from the bondserver
        timestep = dict(self._latest or {})
        filter_code = str(params["filter_code"]).strip()
        if filter_code:
            event_filter = compile_filter(filter_code,
                                          name="viz-request-filter")
            filtered = event_filter(self.formats["Timestep"], timestep)
            if filtered is None:
                timestep = {"step": -1, "atoms": [], "bonds": []}
            else:
                _, timestep = filtered
        output_format = str(params["output_format"])
        if output_format == "svg":
            svg = molecule_to_svg(
                timestep.get("atoms", []),
                [(b["a"], b["b"]) for b in timestep.get("bonds", [])])
            return {"output_format": "svg", "svg": svg,
                    "raw": {"step": -1, "atoms": [], "bonds": []}}
        if output_format == "raw":
            return {"output_format": "raw", "svg": "", "raw": timestep}
        raise ValueError(f"unknown output format {output_format!r}")


class DisplayClient:
    """A display client: holds its current filter + format, both mutable.

    "The client can dynamically change the filter code and the output
    format desired."
    """

    def __init__(self, channel: Channel, registry: FormatRegistry,
                 clock=None) -> None:
        self.formats = viz_formats()
        self._client = SoapBinClient(channel, registry, clock=clock)
        self.filter_code = ""
        self.output_format = "svg"

    def set_filter(self, filter_code: str) -> None:
        self.filter_code = filter_code

    def set_output_format(self, output_format: str) -> None:
        self.output_format = output_format

    def refresh(self) -> Dict[str, object]:
        """Request the next frame with the current filter/format."""
        return self._client.call(
            "GetVisualization",
            {"filter_code": self.filter_code,
             "output_format": self.output_format},
            self.formats["GetVisualizationRequest"],
            self.formats["GetVisualizationResponse"])

    @property
    def rtt_estimate(self):
        return self._client.estimator.estimate
