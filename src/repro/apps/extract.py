"""Resumable bulk-extraction (ETL) service — the long-running-job workload.

Every other app in :mod:`repro.apps` is request/response; this one opens
the batch shape the reliability layer (PR 3) and overload protection
(PR 4) were built for: a client extracts a large deterministic dataset
page by page, survives faults mid-job, and resumes from a checkpoint.
The quality axis is new — under load the server degrades page *size* and
*field projection* instead of shedding the job, extending the SOAP-binQ
idea of trading fidelity for availability from single replies to
whole-job progress.

Design contract (see ``docs/extraction.md``):

* **Cursors are opaque and stateless.**  A cursor encodes the read
  position plus a dataset fingerprint and a checksum; any fresh worker —
  including one forked after a full server restart — can decode it, so
  job progress survives server death.  Clients must treat cursors as
  opaque tokens: the only valid cursors are those the server handed out
  (``ExtractDescribe`` for the first, ``next_cursor``/``prefetch`` after
  that).
* **Pages never shed, they slim.**  ``LoadQualityCoupling`` publishes the
  composite ``server_load`` attribute; the fetch handler shrinks the page
  record count under load and the quality policy additionally projects
  the reply down to :data:`PAGE_LITE_FORMAT` (dropping the bulk
  ``payload`` field).  Record *digests* cover only the projection-stable
  fields, so a degraded page still verifies.
* **Retried pages replay byte-identically.**  A server-side dedup window
  keyed on ``(job_id, cursor)`` re-serves a recently computed page
  rather than recomputing it, so a client retry after a lost reply
  observes the same representation (same format, value and validator —
  and therefore the same wire bytes on a steady session).
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import struct
import time
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core import SoapBinService
from ..core.lru import LruTtlCache
from ..http11.messages import etag_matches
from ..pbio import Format, FormatRegistry

#: Operation names (also the request format → operation mapping keys).
DESCRIBE_OPERATION = "ExtractDescribe"
FETCH_OPERATION = "ExtractFetch"

#: Full-fidelity and projection-degraded page formats.
PAGE_FORMAT = "ExtractPage"
PAGE_LITE_FORMAT = "ExtractPageLite"

#: Load-coupled policy: above the threshold the page drops its bulk
#: ``payload`` field (trivial projection — no custom handler needed).
#: Record digests cover only ``ids``/``values``, so degraded pages still
#: verify against the ledger.
DEFAULT_QUALITY_FILE = """
attribute server_load
history 2
0.0 0.7 - ExtractPage
0.7 inf - ExtractPageLite
"""

_MIX64 = 0x9E3779B97F4A7C15  # splitmix64 increment: cheap index mixing


class CursorError(ValueError):
    """An extraction cursor failed validation (tampered, truncated, or
    minted against a different dataset)."""


# ----------------------------------------------------------------------
# formats
# ----------------------------------------------------------------------

def extract_formats() -> Dict[str, Format]:
    """The five wire formats of the extraction service, by name."""
    describe_req = Format.from_dict(
        "ExtractDescribeRequest",
        {"job_id": "string", "page_records": "int32"})
    describe_reply = Format.from_dict(
        "ExtractDescribeReply",
        {"total": "int64", "digest": "string", "fingerprint": "string",
         "cursor": "string", "page_records": "int32",
         "prefetch_depth": "int32"})
    fetch_req = Format.from_dict(
        "ExtractFetchRequest",
        {"job_id": "string", "cursor": "string", "max_records": "int32"})
    page_fields = {
        "cursor": "string",        # echo of the request cursor
        "next_cursor": "string",   # "" at EOF
        "prefetch": "string",      # space-joined read-ahead cursor hints
        "watermark": "int64",      # job high-water mark, in records
        "count": "int32",
        "eof": "int32",
        "degraded": "int32",       # page size shrunk below the request
        "ids": "int64[]",
        "values": "float64[]",
        "payload": "string",       # concatenated per-record blobs
    }
    page = Format.from_dict(PAGE_FORMAT, page_fields)
    lite_fields = dict(page_fields)
    del lite_fields["payload"]
    page_lite = Format.from_dict(PAGE_LITE_FORMAT, lite_fields)
    return {fmt.name: fmt for fmt in
            (describe_req, describe_reply, fetch_req, page, page_lite)}


# ----------------------------------------------------------------------
# dataset
# ----------------------------------------------------------------------

class Dataset:
    """A deterministic synthetic dataset addressed by record index.

    Record ``i`` is ``(id=i, value=f(i, seed), blob=g(i, seed))`` — pure
    functions of the index and seed, so every worker process (and every
    restart) serves identical bytes for the same page.  The per-record
    digest covers only ``(id, value)``: the fields every degraded
    projection preserves.
    """

    def __init__(self, total: int = 100_000, seed: int = 1234,
                 blob_bytes: int = 48) -> None:
        if total < 0:
            raise ValueError("total must be >= 0")
        if blob_bytes < 0:
            raise ValueError("blob_bytes must be >= 0")
        self.total = total
        self.seed = seed
        self.blob_bytes = blob_bytes
        self.fingerprint = hashlib.blake2b(
            f"extract:{total}:{seed}:{blob_bytes}".encode("ascii"),
            digest_size=8).hexdigest()
        self._digest: Optional[int] = None

    # -- records -------------------------------------------------------
    def _mixed(self, index: int) -> int:
        return (index * _MIX64 + self.seed) & 0xFFFFFFFFFFFFFFFF

    def value(self, index: int) -> float:
        return (self._mixed(index) >> 32) / 2.0 ** 32

    def blob(self, index: int) -> str:
        if self.blob_bytes == 0:
            return ""
        base = f"{self._mixed(index):016x}"
        reps = self.blob_bytes // len(base) + 1
        return (base * reps)[:self.blob_bytes]

    @staticmethod
    def record_digest(rec_id: int, value: float) -> int:
        """64-bit digest of the projection-stable record fields."""
        packed = struct.pack("<qd", rec_id, value)
        return int.from_bytes(
            hashlib.blake2b(packed, digest_size=8).digest(), "big")

    def page(self, offset: int, count: int
             ) -> Tuple[List[int], List[float], str]:
        """Materialize ``count`` records starting at ``offset``."""
        end = min(offset + count, self.total)
        ids = list(range(offset, end))
        values = [self.value(i) for i in ids]
        payload = "".join(self.blob(i) for i in ids)
        return ids, values, payload

    def digest(self) -> int:
        """Whole-dataset digest: sum of record digests mod 2**64.

        Addition is commutative, so the client can fold page digests in
        any arrival order and compare at the end.  Computed once and
        cached (1M records ≈ a second of blake2b).
        """
        if self._digest is None:
            acc = 0
            for i in range(self.total):
                acc = (acc + self.record_digest(i, self.value(i))) \
                    & 0xFFFFFFFFFFFFFFFF
            self._digest = acc
        return self._digest


# ----------------------------------------------------------------------
# cursors
# ----------------------------------------------------------------------

def encode_cursor(offset: int, fingerprint: str) -> str:
    """Mint an opaque cursor for ``offset`` into the fingerprinted
    dataset: url-safe base64 over canonical JSON + CRC32."""
    raw = json.dumps({"f": fingerprint, "o": offset, "v": 1},
                     sort_keys=True, separators=(",", ":")).encode("ascii")
    blob = raw + struct.pack("<I", zlib.crc32(raw) & 0xFFFFFFFF)
    return base64.urlsafe_b64encode(blob).decode("ascii").rstrip("=")


def decode_cursor(cursor: str, fingerprint: str, total: int) -> int:
    """Validate and decode a cursor; raises :class:`CursorError` on any
    tampering, truncation, or dataset mismatch."""
    if not cursor:
        raise CursorError("empty cursor")
    try:
        blob = base64.urlsafe_b64decode(cursor + "=" * (-len(cursor) % 4))
    except (ValueError, binascii.Error):
        raise CursorError("cursor is not valid base64") from None
    if len(blob) < 5:
        raise CursorError("cursor too short")
    raw, crc_bytes = blob[:-4], blob[-4:]
    if (zlib.crc32(raw) & 0xFFFFFFFF) != struct.unpack("<I", crc_bytes)[0]:
        raise CursorError("cursor checksum mismatch")
    try:
        doc = json.loads(raw.decode("ascii"))
    except (UnicodeDecodeError, ValueError):
        raise CursorError("cursor payload is not valid JSON") from None
    if not isinstance(doc, dict) or doc.get("v") != 1:
        raise CursorError("unsupported cursor version")
    if doc.get("f") != fingerprint:
        raise CursorError("cursor was minted for a different dataset")
    offset = doc.get("o")
    if not isinstance(offset, int) or isinstance(offset, bool) \
            or offset < 0 or offset > total:
        raise CursorError("cursor offset out of range")
    return offset


# ----------------------------------------------------------------------
# service
# ----------------------------------------------------------------------

class _ExtractBinService(SoapBinService):
    """``SoapBinService`` with a ``(job_id, cursor)`` dedup window on the
    fetch operation: a retried page is re-served from the window —
    byte-identically, since format, value and validator are replayed —
    instead of being recomputed under whatever the load is *now*."""

    def __init__(self, owner: "ExtractService", *args: Any,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._owner = owner

    def _apply_quality(self, result, output_format, if_none_match=None):
        # The degradation policy maps load to *page* message types; other
        # replies (describe) must pass through at full fidelity instead
        # of being projected into a page format.
        if output_format.name != PAGE_FORMAT:
            return output_format, result, None, False
        return super()._apply_quality(result, output_format, if_none_match)

    def _run_binary(self, body: bytes, headers: Dict[str, str], session):
        owner = self._owner
        wire_format, wire_value = session.unpack_stream(body)
        op = self._operation_for(wire_format, headers)
        params = self._restore_request(wire_value, wire_format, op)
        self._ingest_reported_rtt(headers)
        if_none_match = self._if_none_match(headers)
        dedup_key = None
        if op.name == FETCH_OPERATION:
            dedup_key = (params["job_id"], params["cursor"])
            hit = owner._dedup.get(dedup_key)
            if hit is not None:
                reply_format, reply_value, etag = hit
                counters = owner.counters
                counters["pages_served"] += 1
                counters["pages_replayed"] += 1
                if etag is not None and etag_matches(if_none_match, etag):
                    return None, reply_format, etag, True
                return reply_value, reply_format, etag, False
        result = self.xml_service.invoke(op, params, headers)
        reply_format, reply_value, etag, not_modified = self._apply_quality(
            result, op.output_format, if_none_match)
        if dedup_key is not None:
            owner._note_page(result, reply_format)
            if not not_modified:
                owner._dedup.put(dedup_key,
                                 (reply_format, reply_value, etag))
        return reply_value, reply_format, etag, not_modified


class ExtractService:
    """The dataset-extraction service: paginated reads with resumable
    cursors, load-coupled page degradation, and a replay dedup window.

    Wraps a :class:`~repro.core.binservice.SoapBinService` (exposed as
    ``.service`` / ``.endpoint``) the same way the other app servers do;
    ``quality_stats()`` folds the extract counters into the quality
    snapshot so the serving stack (``/metrics``, fleet shm, ``/healthz``)
    picks them up through the one existing hook.
    """

    def __init__(self, total: int = 100_000, seed: int = 1234,
                 blob_bytes: int = 48,
                 page_records: int = 256,
                 min_page_records: int = 16,
                 max_page_records: int = 4096,
                 degrade_lo: float = 0.5,
                 degrade_hi: float = 0.8,
                 prefetch_depth: int = 4,
                 deadline_floor_ms: float = 50.0,
                 dedup_pages: int = 1024,
                 dedup_ttl_s: Optional[float] = 30.0,
                 job_idle_s: float = 300.0,
                 max_jobs: int = 4096,
                 quality_text: Optional[str] = DEFAULT_QUALITY_FILE,
                 time_fn: Optional[Callable[[], float]] = None,
                 **service_kwargs: Any) -> None:
        self.dataset = Dataset(total=total, seed=seed, blob_bytes=blob_bytes)
        self.page_records = page_records
        self.min_page_records = min_page_records
        self.max_page_records = max_page_records
        self.degrade_lo = degrade_lo
        self.degrade_hi = degrade_hi
        self.prefetch_depth = prefetch_depth
        self.deadline_floor_ms = deadline_floor_ms
        self.job_idle_s = job_idle_s
        self.max_jobs = max_jobs
        self._time_fn = time_fn or time.monotonic
        self.counters: Dict[str, int] = {
            "pages_served": 0, "pages_degraded": 0,
            "pages_replayed": 0, "records_served": 0,
        }
        #: job_id → [watermark_records, last_active]
        self._jobs: Dict[str, List[float]] = {}
        self._dedup: LruTtlCache = LruTtlCache(
            capacity=dedup_pages, ttl_s=dedup_ttl_s, time_fn=self._time_fn)

        registry = FormatRegistry()
        formats = extract_formats()
        for fmt in formats.values():
            registry.register(fmt)
        self.service = _ExtractBinService(
            self, registry, quality_text=quality_text, **service_kwargs)
        self.service.add_operation(
            DESCRIBE_OPERATION, formats["ExtractDescribeRequest"],
            formats["ExtractDescribeReply"], self._describe)
        self.service.add_operation(
            FETCH_OPERATION, formats["ExtractFetchRequest"],
            formats[PAGE_FORMAT], self._fetch, wants_headers=True)

    # -- transport ------------------------------------------------------
    @property
    def endpoint(self):
        return self.service.endpoint

    # -- operations -----------------------------------------------------
    def _describe(self, params: Dict[str, Any]) -> Dict[str, Any]:
        dataset = self.dataset
        page = int(params.get("page_records") or 0) or self.page_records
        page = max(1, min(page, self.max_page_records))
        self._touch_job(str(params.get("job_id") or "anon"), 0)
        return {
            "total": dataset.total,
            "digest": f"{dataset.digest():016x}",
            "fingerprint": dataset.fingerprint,
            "cursor": encode_cursor(0, dataset.fingerprint),
            "page_records": page,
            "prefetch_depth": self.prefetch_depth,
        }

    def _fetch(self, params: Dict[str, Any],
               headers: Dict[str, str]) -> Dict[str, Any]:
        dataset = self.dataset
        job_id = str(params.get("job_id") or "anon")
        cursor = params["cursor"]
        requested = int(params.get("max_records") or 0) or self.page_records
        requested = max(1, min(requested, self.max_page_records))
        offset = decode_cursor(cursor, dataset.fingerprint, dataset.total)
        effective, degraded = self._effective_page(requested, headers)
        count = min(effective, dataset.total - offset)
        ids, values, payload = dataset.page(offset, count)
        next_offset = offset + count
        eof = 1 if next_offset >= dataset.total else 0
        next_cursor = "" if eof else encode_cursor(next_offset,
                                                   dataset.fingerprint)
        prefetch = "" if eof else " ".join(
            encode_cursor(o, dataset.fingerprint)
            for o in range(next_offset + effective,
                           dataset.total,
                           effective)[:self.prefetch_depth - 1]
        ) if self.prefetch_depth > 1 else ""
        watermark = self._touch_job(job_id, next_offset)
        return {
            "cursor": cursor,
            "next_cursor": next_cursor,
            "prefetch": prefetch,
            "watermark": watermark,
            "count": count,
            "eof": eof,
            "degraded": degraded,
            "ids": ids,
            "values": values,
            "payload": payload,
        }

    # -- degradation ----------------------------------------------------
    def _load(self) -> float:
        quality = self.service.quality
        if quality is None:
            return 0.0
        return quality.attributes.get("server_load", 0.0)

    def _effective_page(self, requested: int,
                        headers: Dict[str, str]) -> Tuple[int, int]:
        load = self._load()
        effective = requested
        if load >= self.degrade_hi:
            effective = max(self.min_page_records, requested // 4)
        elif load >= self.degrade_lo:
            effective = max(self.min_page_records, requested // 2)
        deadline_ms = self._deadline_ms(headers)
        if deadline_ms is not None and deadline_ms < self.deadline_floor_ms:
            effective = min(effective,
                            max(self.min_page_records, requested // 4))
        effective = max(1, min(effective, requested))
        return effective, (1 if effective < requested else 0)

    @staticmethod
    def _deadline_ms(headers: Dict[str, str]) -> Optional[float]:
        for name, value in headers.items():
            if name.lower() == "x-deadline-ms":
                try:
                    return float(value)
                except ValueError:
                    return None
        return None

    # -- job registry ---------------------------------------------------
    def _touch_job(self, job_id: str, watermark: int) -> int:
        now = self._time_fn()
        entry = self._jobs.get(job_id)
        if entry is None:
            self._prune_jobs(now)
            if len(self._jobs) >= self.max_jobs:
                stalest = min(self._jobs, key=lambda k: self._jobs[k][1])
                del self._jobs[stalest]
            entry = self._jobs[job_id] = [0, now]
        entry[0] = max(entry[0], watermark)
        entry[1] = now
        return int(entry[0])

    def _prune_jobs(self, now: float) -> None:
        cutoff = now - self.job_idle_s
        stale = [k for k, (_w, last) in self._jobs.items() if last < cutoff]
        for key in stale:
            del self._jobs[key]

    def _note_page(self, result: Dict[str, Any],
                   reply_format: Format) -> None:
        counters = self.counters
        counters["pages_served"] += 1
        counters["records_served"] += int(result.get("count", 0))
        if result.get("degraded") or reply_format.name != PAGE_FORMAT:
            counters["pages_degraded"] += 1

    # -- observability --------------------------------------------------
    def extract_stats(self) -> Dict[str, int]:
        now = self._time_fn()
        self._prune_jobs(now)
        total = self.dataset.total
        lag = sum(total - min(int(w), total)
                  for w, _last in self._jobs.values())
        stats = dict(self.counters)
        stats["jobs_active"] = len(self._jobs)
        stats["watermark_lag_records"] = lag
        return stats

    def quality_stats(self) -> Dict[str, Any]:
        """Quality snapshot + the ``extract`` block, shaped for the
        ``quality_stats`` server hook (metrics/shm/healthz plumbing)."""
        stats = self.service.quality_stats() or {}
        stats["extract"] = self.extract_stats()
        return stats
