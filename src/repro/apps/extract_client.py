"""The extraction job runner: pipelined page fetches, crash-safe
checkpoints, exactly-once page accounting.

A :class:`JobRunner` drives a whole extraction against
:class:`~repro.apps.extract.ExtractService` through any channel — in
production a :class:`~repro.transport.sockets.PipelinedHttpChannel`
(optionally wrapped in a
:class:`~repro.reliability.faults.FaultInjectingChannel` for soak tests).
Its obligations, in order of importance:

* **Exactly-once accounting.**  Pages are committed strictly in cursor
  order; a page enters the ledger exactly once, and the ledger's
  ``(start, count)`` intervals must tile ``[0, total)`` with the digest
  sum matching the server's dataset digest.  Retried fetches are safe
  because the server dedup window replays the same page and the runner
  only ever commits the page its cursor chain expects next.
* **Crash safety.**  The checkpoint file is written atomically
  (tmp + fsync + rename + directory fsync) after every commit, carries a
  monotonic watermark and the page-digest ledger, and is integrity
  checked on load: a zero-byte, truncated or corrupt checkpoint raises
  :class:`CheckpointCorrupt` — never a silent restart from zero.  A
  SIGKILL between page receipt and checkpoint write simply loses the
  uncommitted page; the resume refetches it and the server replays it.
* **Fault absorption.**  Each *advance* (one pipelined window of fetches)
  runs under :func:`~repro.reliability.policy.call_with_policy` with the
  runner's :class:`~repro.reliability.policy.RetryPolicy` and
  :class:`~repro.reliability.breaker.CircuitBreaker`: 503 bursts,
  resets, stalls and truncations back off and retry; only the unanswered
  suffix of a partially failed window is refetched (answered prefix
  pages are committed before the retry).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core import SoapBinClient
from ..core.errors import BinProtocolError
from ..netsim.clock import Clock, WallClock
from ..pbio import FormatRegistry
from ..reliability import (CircuitBreaker, RetryPolicy, ServiceUnavailable,
                           call_with_policy)
from ..transport.base import Channel
from .extract import (DESCRIBE_OPERATION, FETCH_OPERATION, Dataset,
                      extract_formats)

CHECKPOINT_MAGIC = "repro-extract-checkpoint"
CHECKPOINT_VERSION = 1


class JobError(Exception):
    """Base class for extraction job failures."""


class JobProtocolError(JobError):
    """The server answered with a non-retryable application error (bad
    cursor, unknown operation, ...): retrying cannot help."""


class JobVerificationError(JobError):
    """The completed job failed ledger verification (missing/duplicate
    records or digest mismatch)."""


class CheckpointError(JobError):
    """Base class for checkpoint-file failures."""


class CheckpointCorrupt(CheckpointError):
    """The checkpoint file exists but cannot be trusted (zero-byte,
    truncated, bad JSON, bad checksum, wrong magic/version).  The runner
    refuses to guess: the operator deletes the file to restart from
    zero."""


class CheckpointMismatch(CheckpointError):
    """The checkpoint belongs to a different dataset or job shape than
    the server is currently offering."""


# ----------------------------------------------------------------------
# checkpoint file
# ----------------------------------------------------------------------

@dataclass
class PageEntry:
    """One committed page in the ledger."""

    cursor: str
    start: int
    count: int
    digest: int
    degraded: int = 0

    def to_row(self) -> List[Any]:
        return [self.cursor, self.start, self.count,
                f"{self.digest:016x}", self.degraded]

    @classmethod
    def from_row(cls, row: Any) -> "PageEntry":
        if (not isinstance(row, list) or len(row) != 5
                or not isinstance(row[0], str)):
            raise CheckpointCorrupt("checkpoint ledger row malformed")
        try:
            return cls(cursor=row[0], start=int(row[1]), count=int(row[2]),
                       digest=int(row[3], 16), degraded=int(row[4]))
        except (TypeError, ValueError):
            raise CheckpointCorrupt(
                "checkpoint ledger row malformed") from None


@dataclass
class Checkpoint:
    """The resumable state of one extraction job."""

    job_id: str
    fingerprint: str
    total: int
    expected_digest: str
    cursor: str               # next unfetched cursor ("" once at EOF)
    records_done: int = 0
    digest_sum: int = 0
    pages: List[PageEntry] = field(default_factory=list)

    @property
    def watermark(self) -> int:
        """Monotonic high-water mark: records durably committed."""
        return self.records_done

    def to_doc(self) -> Dict[str, Any]:
        doc = {
            "magic": CHECKPOINT_MAGIC,
            "version": CHECKPOINT_VERSION,
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "total": self.total,
            "expected_digest": self.expected_digest,
            "cursor": self.cursor,
            "watermark": self.watermark,
            "records_done": self.records_done,
            "digest_sum": f"{self.digest_sum:016x}",
            "pages": [page.to_row() for page in self.pages],
        }
        doc["crc"] = _doc_crc(doc)
        return doc

    @classmethod
    def from_doc(cls, doc: Any) -> "Checkpoint":
        if not isinstance(doc, dict):
            raise CheckpointCorrupt("checkpoint is not a JSON object")
        if doc.get("magic") != CHECKPOINT_MAGIC:
            raise CheckpointCorrupt("checkpoint magic mismatch")
        if doc.get("version") != CHECKPOINT_VERSION:
            raise CheckpointCorrupt(
                f"unsupported checkpoint version {doc.get('version')!r}")
        crc = doc.get("crc")
        if not isinstance(crc, int) \
                or crc != _doc_crc({k: v for k, v in doc.items()
                                    if k != "crc"}):
            raise CheckpointCorrupt("checkpoint checksum mismatch")
        try:
            cp = cls(
                job_id=doc["job_id"],
                fingerprint=doc["fingerprint"],
                total=int(doc["total"]),
                expected_digest=doc["expected_digest"],
                cursor=doc["cursor"],
                records_done=int(doc["records_done"]),
                digest_sum=int(doc["digest_sum"], 16),
                pages=[PageEntry.from_row(row) for row in doc["pages"]],
            )
        except (KeyError, TypeError, ValueError):
            raise CheckpointCorrupt("checkpoint fields malformed") from None
        if int(doc.get("watermark", -1)) != cp.records_done:
            raise CheckpointCorrupt("checkpoint watermark mismatch")
        return cp


def _doc_crc(doc: Dict[str, Any]) -> int:
    canonical = json.dumps(doc, sort_keys=True,
                           separators=(",", ":")).encode("utf-8")
    return zlib.crc32(canonical) & 0xFFFFFFFF


class CheckpointStore:
    """Atomic load/save of one checkpoint file.

    ``save`` writes a sibling temp file, flushes and fsyncs it, atomically
    renames it over the target, then fsyncs the directory — after a crash
    at any instant the file on disk is either the old checkpoint or the
    new one, never a torn mix.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.saves = 0

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> Optional[Checkpoint]:
        """The stored checkpoint, ``None`` when the file does not exist,
        or :class:`CheckpointCorrupt` — never a silent restart."""
        try:
            with open(self.path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return None
        if not raw:
            raise CheckpointCorrupt(
                f"checkpoint {self.path} is zero bytes (torn write?)")
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise CheckpointCorrupt(
                f"checkpoint {self.path} is not valid JSON "
                f"(truncated or corrupt)") from None
        return Checkpoint.from_doc(doc)

    def save(self, checkpoint: Checkpoint) -> None:
        blob = json.dumps(checkpoint.to_doc(),
                          separators=(",", ":")).encode("utf-8")
        directory = os.path.dirname(os.path.abspath(self.path))
        tmp_path = self.path + ".tmp"
        fd = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, blob)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp_path, self.path)
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            dir_fd = None
        if dir_fd is not None:
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        self.saves += 1


# ----------------------------------------------------------------------
# job runner
# ----------------------------------------------------------------------

@dataclass
class JobReport:
    """What one :meth:`JobRunner.run` accomplished."""

    job_id: str
    total: int
    records: int
    pages: int
    pages_degraded: int
    pages_discarded: int
    retries: int
    resumed: bool
    verified: bool
    digest: str
    duration_s: float
    faults: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id, "total": self.total,
            "records": self.records, "pages": self.pages,
            "pages_degraded": self.pages_degraded,
            "pages_discarded": self.pages_discarded,
            "retries": self.retries, "resumed": self.resumed,
            "verified": self.verified, "digest": self.digest,
            "duration_s": self.duration_s, "faults": list(self.faults),
        }


class _JobState:
    """Mutable per-run state threaded through the retry engine."""

    __slots__ = ("checkpoint", "hints", "eof", "fatal",
                 "pages_since_save", "accepted_this_round")

    def __init__(self, checkpoint: Checkpoint) -> None:
        self.checkpoint = checkpoint
        self.hints: List[str] = []
        self.eof = checkpoint.cursor == ""
        self.fatal: Optional[Exception] = None
        self.pages_since_save = 0
        self.accepted_this_round = 0


def client_registry() -> FormatRegistry:
    """A client-side registry with every extraction format pre-registered
    (same order as the server, so registry-wide format ids line up)."""
    registry = FormatRegistry()
    for fmt in extract_formats().values():
        registry.register(fmt)
    return registry


class JobRunner:
    """Run (or resume) one extraction job to completion.

    Parameters
    ----------
    channel:
        Any channel reaching the extraction endpoint.  When it exposes
        ``call_many`` (pipelined), windows of pages are fetched
        concurrently using the server's opaque ``prefetch`` cursor hints.
    checkpoint_path:
        Where the crash-safe checkpoint lives.  An existing valid file
        resumes the job; a corrupt one raises :class:`CheckpointCorrupt`.
    policy / breaker:
        Reliability envelope for every advance (window round-trip).
    page_records:
        Records per page to request (the server may shrink under load).
    window:
        Maximum concurrent page fetches per round; ``None`` uses the
        server's advertised ``prefetch_depth``.
    checkpoint_every:
        Commit-to-checkpoint cadence in pages; 1 (the default) writes the
        checkpoint after every committed page.
    on_commit:
        Test hook invoked after a page commit, *before* the checkpoint
        write — crash-simulation tests raise from here.
    """

    def __init__(self, channel: Channel, checkpoint_path: str,
                 job_id: str = "extract-job",
                 page_records: int = 256,
                 policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 window: Optional[int] = None,
                 checkpoint_every: int = 1,
                 strict: bool = True,
                 clock: Optional[Clock] = None,
                 client_id: Optional[str] = None,
                 on_commit: Optional[Callable[[PageEntry], None]] = None
                 ) -> None:
        self.channel = channel
        self.store = CheckpointStore(checkpoint_path)
        self.job_id = job_id
        self.page_records = page_records
        self.policy = policy or RetryPolicy(
            max_attempts=6, deadline_s=30.0, backoff_initial_s=0.02,
            backoff_multiplier=2.0, backoff_max_s=0.5)
        self.breaker = breaker
        self.window = window
        self.checkpoint_every = max(1, checkpoint_every)
        self.strict = strict
        self.clock = clock or WallClock()
        self.on_commit = on_commit
        self.formats = extract_formats()
        self.client = SoapBinClient(channel, client_registry(),
                                    clock=self.clock, client_id=client_id)
        # run() outcome counters
        self.pages_discarded = 0
        self.pages_degraded = 0
        self.retries = 0
        self.faults: List[str] = []

    # ------------------------------------------------------------------
    def run(self) -> JobReport:
        started = self.clock.now()
        loaded = self.store.load()
        resumed = loaded is not None

        describe, _meta = call_with_policy(
            self._describe_once, self.policy, clock=self.clock,
            idempotent=True, breaker=self.breaker)
        total = int(describe["total"])
        expected_digest = str(describe["digest"])
        fingerprint = str(describe["fingerprint"])
        depth = self.window or max(1, int(describe["prefetch_depth"]) + 1)

        if loaded is not None:
            if (loaded.fingerprint != fingerprint
                    or loaded.total != total
                    or loaded.expected_digest != expected_digest):
                raise CheckpointMismatch(
                    f"checkpoint {self.store.path} was written against a "
                    f"different dataset (fingerprint "
                    f"{loaded.fingerprint!r} != {fingerprint!r})")
            checkpoint = loaded
        else:
            checkpoint = Checkpoint(
                job_id=self.job_id, fingerprint=fingerprint, total=total,
                expected_digest=expected_digest,
                cursor=str(describe["cursor"]))

        state = _JobState(checkpoint)
        while not state.eof:
            _accepted, meta = call_with_policy(
                lambda: self._round(state, depth), self.policy,
                clock=self.clock, idempotent=True, breaker=self.breaker)
            self.retries += meta.attempts - 1
            self.faults.extend(meta.faults)
            if state.fatal is not None:
                raise JobProtocolError(str(state.fatal)) from state.fatal
        if state.pages_since_save:
            self.store.save(checkpoint)

        verified = self._verify(checkpoint)
        report = JobReport(
            job_id=self.job_id, total=total,
            records=checkpoint.records_done,
            pages=len(checkpoint.pages),
            pages_degraded=self.pages_degraded,
            pages_discarded=self.pages_discarded,
            retries=self.retries, resumed=resumed, verified=verified,
            digest=f"{checkpoint.digest_sum:016x}",
            duration_s=self.clock.now() - started,
            faults=list(self.faults))
        if self.strict and not verified:
            raise JobVerificationError(
                f"job {self.job_id!r} failed verification: "
                f"{checkpoint.records_done}/{total} records, digest "
                f"{report.digest} != {expected_digest}")
        return report

    # ------------------------------------------------------------------
    def _describe_once(self) -> Dict[str, Any]:
        try:
            return self.client.call(
                DESCRIBE_OPERATION,
                {"job_id": self.job_id, "page_records": self.page_records},
                self.formats["ExtractDescribeRequest"],
                self.formats["ExtractDescribeReply"])
        except BinProtocolError as exc:
            raise self._promote(exc) from exc

    @staticmethod
    def _promote(exc: BinProtocolError) -> Exception:
        """503s become typed retryable errors; anything else is fatal."""
        text = str(exc)
        if "status 503" in text:
            return ServiceUnavailable(text)
        return JobProtocolError(text)

    # ------------------------------------------------------------------
    def _round(self, state: _JobState, depth: int) -> int:
        """One pipelined window: fetch, walk the cursor chain in order,
        commit the answered prefix.  Returns pages committed; raises the
        head slot's (typed) error when no progress was possible."""
        checkpoint = state.checkpoint
        window = [checkpoint.cursor]
        for hint in state.hints:
            if len(window) >= depth:
                break
            window.append(hint)
        params_list = [{"job_id": self.job_id, "cursor": cursor,
                        "max_records": self.page_records}
                       for cursor in window]
        results = self.client.call_many(
            FETCH_OPERATION, params_list,
            self.formats["ExtractFetchRequest"],
            self.formats["ExtractPage"], return_exceptions=True)

        accepted = 0
        expected = checkpoint.cursor
        for slot, (cursor, outcome) in enumerate(zip(window, results)):
            if isinstance(outcome, Exception):
                if accepted == 0 and slot == 0:
                    error = outcome
                    if isinstance(error, BinProtocolError):
                        promoted = self._promote(error)
                        if isinstance(promoted, JobProtocolError):
                            state.fatal = error
                            return 0
                        error = promoted
                    raise error
                break  # unanswered suffix: refetched next round
            if cursor != expected:
                # Stale read-ahead hint (page sizes changed under load):
                # the page is valid data but not the chain's next page.
                self.pages_discarded += sum(
                    1 for later in results[slot:]
                    if not isinstance(later, Exception))
                break
            self._commit(state, outcome)
            accepted += 1
            expected = checkpoint.cursor
            if state.eof:
                break
        return accepted

    def _commit(self, state: _JobState, page: Dict[str, Any]) -> None:
        checkpoint = state.checkpoint
        count = int(page["count"])
        start = checkpoint.records_done
        ids = page["ids"]
        values = page["values"]
        if len(ids) != count or len(values) != count or (
                count and (int(ids[0]) != start
                           or int(ids[count - 1]) != start + count - 1)):
            raise JobProtocolError(
                f"page at cursor {page['cursor']!r} claims records "
                f"[{ids[0] if count else '-'}..] but the chain expects "
                f"[{start}..{start + count - 1}]")
        page_digest = 0
        for rec_id, value in zip(ids, values):
            page_digest = (page_digest + Dataset.record_digest(
                int(rec_id), float(value))) & 0xFFFFFFFFFFFFFFFF
        degraded = int(page.get("degraded", 0)) or (
            1 if (count and not page.get("payload")) else 0)
        entry = PageEntry(cursor=str(page["cursor"]), start=start,
                          count=count, digest=page_digest,
                          degraded=degraded)
        checkpoint.pages.append(entry)
        checkpoint.records_done = start + count
        checkpoint.digest_sum = (checkpoint.digest_sum + page_digest) \
            & 0xFFFFFFFFFFFFFFFF
        checkpoint.cursor = str(page["next_cursor"])
        state.hints = str(page.get("prefetch", "")).split()
        state.eof = bool(int(page["eof"])) and checkpoint.cursor == ""
        if degraded:
            self.pages_degraded += 1
        state.pages_since_save += 1
        if self.on_commit is not None:
            self.on_commit(entry)
        if state.pages_since_save >= self.checkpoint_every or state.eof:
            self.store.save(checkpoint)
            state.pages_since_save = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _verify(checkpoint: Checkpoint) -> bool:
        """Exactly-once check: the ledger tiles ``[0, total)`` with no
        gaps or overlaps and the digest sum matches the server's."""
        position = 0
        for entry in checkpoint.pages:
            if entry.start != position:
                return False
            position += entry.count
        if position != checkpoint.total:
            return False
        return f"{checkpoint.digest_sum:016x}" == checkpoint.expected_digest
