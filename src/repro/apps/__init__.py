"""The paper's four evaluation applications, adapted to SOAP-binQ.

* :mod:`~repro.apps.imaging` — the Skyserver-like image server (Fig. 8),
* :mod:`~repro.apps.mdbond` — the molecular-dynamics bond server (Fig. 9),
* :mod:`~repro.apps.airline` — the airline operational information system
  (Table I),
* :mod:`~repro.apps.remoteviz` — the ECho-backed remote-visualization
  portal (§IV-C.4).
"""

from .airline import (AirlineDataset, AirlineServer, CateringClient,
                      airline_formats, event_encodings, event_stream)
from .imaging import (DEFAULT_QUALITY_FILE as IMAGING_QUALITY_FILE,
                      ExperimentPoint, ImageServer, ImagingClient,
                      image_formats, image_to_value, resize_half_handler,
                      run_imaging_experiment, value_to_image)
from .mdbond import (DEFAULT_QUALITY_FILE as MDBOND_QUALITY_FILE, BondClient,
                     BondServer, MdPoint, bond_formats, run_mdbond_experiment,
                     take_batch_handler)
from .remoteviz import (BondEventSource, DisplayClient, ServicePortal,
                        viz_formats)

__all__ = [
    "ImageServer", "ImagingClient", "image_formats", "image_to_value",
    "value_to_image", "resize_half_handler", "run_imaging_experiment",
    "ExperimentPoint", "IMAGING_QUALITY_FILE",
    "BondServer", "BondClient", "bond_formats", "take_batch_handler",
    "run_mdbond_experiment", "MdPoint", "MDBOND_QUALITY_FILE",
    "AirlineDataset", "AirlineServer", "CateringClient", "airline_formats",
    "event_encodings", "event_stream",
    "ServicePortal", "DisplayClient", "BondEventSource", "viz_formats",
]
