"""Circuit breaker: closed → open → half-open, on an injectable clock.

When an endpoint starts failing hard, retrying every call at full size just
adds load to a struggling server and latency to every caller.  The breaker
converts "N consecutive failures" into a *state* the rest of the stack can
react to:

* **closed** — normal operation; failures are counted, successes reset the
  count.
* **open** — calls are rejected locally for ``reset_timeout_s`` (the
  cooldown).  :class:`~repro.reliability.policy.RetryPolicy` treats the
  rejection like a server ``Retry-After``: it sleeps out the cooldown
  instead of burning attempts, so deadline-budgeted calls survive an open
  window instead of being shed.
* **half-open** — after the cooldown, up to ``half_open_max_probes`` calls
  are let through; ``success_threshold`` consecutive successes close the
  breaker, any failure re-opens it (with a fresh cooldown).

State transitions are pushed to listeners — notably
:class:`~repro.core.monitor.BreakerRttCoupling`, which feeds "breaker open"
into the quality manager's RTT estimator as worst-interval RTT, extending
the paper's adaptation loop from slow links to broken ones.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..netsim.clock import Clock, WallClock

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Listener signature: ``(old_state, new_state, at_time)``.
StateListener = Callable[[str, str, float], None]


class CircuitBreaker:
    """Per-endpoint failure accountant with three states."""

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0,
                 half_open_max_probes: int = 1,
                 success_threshold: int = 1,
                 clock: Optional[Clock] = None,
                 listeners: Optional[List[StateListener]] = None) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        if half_open_max_probes < 1 or success_threshold < 1:
            raise ValueError("probe/success thresholds must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_max_probes = half_open_max_probes
        self.success_threshold = success_threshold
        self.clock = clock or WallClock()
        self.listeners: List[StateListener] = list(listeners or [])
        self._state = CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._probes_granted = 0
        self._opened_at = 0.0
        self.rejected = 0
        self.opened_count = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, accounting for an elapsed cooldown."""
        self._maybe_half_open()
        return self._state

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and \
                self.clock.now() - self._opened_at >= self.reset_timeout_s:
            self._transition(HALF_OPEN)

    def _transition(self, new_state: str) -> None:
        old, self._state = self._state, new_state
        if new_state == OPEN:
            self._opened_at = self.clock.now()
            self.opened_count += 1
        if new_state in (CLOSED, HALF_OPEN):
            self._probe_successes = 0
            self._probes_granted = 0
        if new_state == CLOSED:
            self._consecutive_failures = 0
        for listener in self.listeners:
            listener(old, new_state, self.clock.now())

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May a call go out right now?  (Counts half-open probe grants.)"""
        self._maybe_half_open()
        if self._state == CLOSED:
            return True
        if self._state == HALF_OPEN:
            if self._probes_granted < self.half_open_max_probes:
                self._probes_granted += 1
                return True
            self.rejected += 1
            return False
        self.rejected += 1
        return False

    def cooldown_remaining(self) -> float:
        """Seconds until the next half-open probe window (0 when not open)."""
        if self._state != OPEN:
            return 0.0
        return max(0.0, self._opened_at + self.reset_timeout_s
                   - self.clock.now())

    def record_success(self) -> None:
        self._maybe_half_open()
        if self._state == HALF_OPEN:
            # the probe completed: free its slot so the next one may go out
            self._probes_granted = max(0, self._probes_granted - 1)
            self._probe_successes += 1
            if self._probe_successes >= self.success_threshold:
                self._transition(CLOSED)
        else:
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        self._maybe_half_open()
        if self._state == HALF_OPEN:
            self._transition(OPEN)
            return
        if self._state == CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._transition(OPEN)
