"""Typed failure taxonomy for the reliability layer.

The paper's quality loop assumes every call completes and only its *latency*
varies; real deployments also see calls that never complete.  This module
names the failure shapes the stack can actually produce — connect refusals,
mid-stream resets, stalled reads, truncated frames, 503 shedding — so that
retry policy can reason about them ("was anything written to the wire?")
instead of pattern-matching on ``OSError`` strings, and so that application
code above :class:`~repro.soap.client.SoapClient` /
:class:`~repro.core.binclient.SoapBinClient` never sees a bare socket error.

Two orthogonal properties drive the retry decision:

* :attr:`ReliabilityError.retry_safe` — the request provably never reached
  the server (connect refused, local breaker rejection, a 503 answered by
  the accept loop), so resending cannot double-execute anything;
* failures that are only safe to resend when the caller declares the
  operation *idempotent* (mid-stream resets, stalled reads, truncated
  replies: the server may have processed the request).

Low-level exceptions crossing the transport boundary are annotated with a
``bytes_written`` attribute (see :func:`mark_bytes_written`) by whoever knows
the wire state — :class:`~repro.http11.client.HttpConnection` for real
sockets, the fault injector for simulated ones — and
:func:`classify_failure` folds that into exactly one typed error.
"""

from __future__ import annotations

import socket
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .policy import CallMeta

#: Wire phases a failure can be attributed to.
PHASE_CONNECT = "connect"
PHASE_REQUEST = "request"
PHASE_RESPONSE = "response"


class ReliabilityError(Exception):
    """Base class: a call failed in a way the reliability layer understands.

    Attributes
    ----------
    phase:
        Where in the exchange the failure happened.
    bytes_written:
        Whether any request bytes are known to have reached the wire.
    retry_after_s:
        Server- (or breaker-) suggested wait before the next attempt.
    attempts / meta:
        Filled in by :class:`~repro.reliability.policy.RetryPolicy` when the
        error is what a whole policed call ultimately raises.
    """

    #: resending cannot double-execute the request
    retry_safe = False
    phase = PHASE_REQUEST

    def __init__(self, message: str,
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.bytes_written = not self.retry_safe
        self.attempts: int = 1
        self.meta: Optional["CallMeta"] = None


class ConnectFailed(ReliabilityError):
    """TCP connect was refused or failed; nothing was ever sent."""

    retry_safe = True
    phase = PHASE_CONNECT


class CallTimeout(ReliabilityError):
    """An attempt timed out before any request bytes were written."""

    retry_safe = True
    phase = PHASE_CONNECT


class StalledRead(ReliabilityError):
    """The request was sent but the response never arrived (read timeout)."""

    phase = PHASE_RESPONSE


class ResetMidStream(ReliabilityError):
    """The connection was reset after request bytes hit the wire."""

    phase = PHASE_REQUEST


class TruncatedReply(ReliabilityError):
    """The peer closed mid-response: the reply frame is incomplete."""

    phase = PHASE_RESPONSE


class TransportFailure(ReliabilityError):
    """Any other transport-level error (the taxonomy's catch-all)."""

    phase = PHASE_REQUEST


class ServiceUnavailable(ReliabilityError):
    """HTTP 503: the server shed the connection before dispatching it.

    The :class:`~repro.http11.server.HttpServer` ``max_connections`` guard
    answers 503 from the accept loop — the handler never ran — so resending
    is always safe; ``Retry-After`` (when present) seeds the backoff.
    """

    retry_safe = True
    phase = PHASE_CONNECT


class CircuitOpen(ReliabilityError):
    """The local circuit breaker rejected the call without touching the wire.

    ``retry_after_s`` carries the breaker's remaining cooldown so a
    deadline-budgeted policy can sleep exactly until the half-open probe
    window instead of hammering a known-bad endpoint.
    """

    retry_safe = True
    phase = PHASE_CONNECT


class DeadlineExceeded(ReliabilityError):
    """The end-to-end deadline budget ran out (never retried)."""

    phase = PHASE_CONNECT

    def __init__(self, message: str,
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(message, retry_after_s)
        self.bytes_written = False


def mark_bytes_written(exc: BaseException, written: bool) -> BaseException:
    """Annotate a low-level exception with the wire state at failure time."""
    exc.bytes_written = written
    return exc


def classify_failure(exc: BaseException) -> ReliabilityError:
    """Map one low-level transport exception to exactly one typed error.

    The ``bytes_written`` annotation (when present) decides between the
    always-safe connect-phase errors and the idempotent-only mid-stream
    ones; an unannotated exception is conservatively treated as written.
    """
    if isinstance(exc, ReliabilityError):
        return exc
    written = getattr(exc, "bytes_written", True)
    typed: ReliabilityError
    if isinstance(exc, ConnectionRefusedError):
        typed = ConnectFailed(f"connection refused: {exc}")
    elif isinstance(exc, (TimeoutError, socket.timeout)):
        if written:
            typed = StalledRead(f"read stalled: {exc}")
        else:
            typed = CallTimeout(f"timed out before sending: {exc}")
    elif isinstance(exc, ConnectionResetError):
        if written:
            typed = ResetMidStream(f"connection reset mid-stream: {exc}")
        else:
            typed = ConnectFailed(f"connection reset on connect: {exc}")
    else:
        # HttpConnectionClosed (truncated frame) without importing http11:
        # duck-type on the class name so reliability stays transport-neutral.
        name = type(exc).__name__
        if name == "HttpConnectionClosed":
            if written:
                typed = TruncatedReply(f"response truncated: {exc}")
            else:
                typed = ConnectFailed(f"peer closed before send: {exc}")
        elif written:
            typed = TransportFailure(f"{name}: {exc}")
        else:
            typed = ConnectFailed(f"{name}: {exc}")
    typed.bytes_written = bool(written) and not typed.retry_safe
    typed.__cause__ = exc
    return typed
