"""Retry policy with an end-to-end deadline budget.

A :class:`RetryPolicy` answers three questions for every failed attempt:

* **May this failure be retried at all?**  Connect-phase failures (nothing
  on the wire) always may; mid-stream failures only when the caller marked
  the operation idempotent.  See :mod:`repro.reliability.errors`.
* **How long to wait?**  Exponential backoff with a cap, plus deterministic
  injectable jitter (a plain ``attempt -> seconds`` callable, so tests and
  simulations replay exactly), floored by any server/breaker supplied
  ``Retry-After``.
* **Is there budget left?**  The *deadline* is end-to-end: it covers every
  attempt **and** every backoff sleep.  A retry whose backoff would overrun
  the budget is not attempted; the call fails with
  :class:`~repro.reliability.errors.DeadlineExceeded` while there is still
  time for the caller to act on the failure.

:func:`call_with_policy` is the engine shared by
:class:`~repro.reliability.channel.ReliableChannel` and the socket channels
in :mod:`repro.transport.sockets`; it also folds in the optional circuit
breaker (checked before *every* attempt, so a call that outlives an open
window completes instead of being shed) and the breaker→quality coupling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..netsim.clock import Clock, WallClock
from .errors import (CircuitOpen, DeadlineExceeded, ReliabilityError,
                     classify_failure)

#: Deterministic jitter: extra seconds of backoff for a given attempt number.
JitterFn = Callable[[int], float]


@dataclass
class CallMeta:
    """What one policed call cost: surfaced by the SOAP/bin clients.

    ``faults`` lists the typed error class name of every failed attempt in
    order, so a caller (or test) can see exactly which injected fault each
    retry absorbed.
    """

    attempts: int = 0
    retried: bool = False
    elapsed_s: float = 0.0
    backoff_s: float = 0.0
    deadline_s: Optional[float] = None
    deadline_remaining_s: Optional[float] = None
    faults: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the call ultimately returned a reply."""
        return self.attempts > 0 and (not self.faults
                                      or len(self.faults) < self.attempts)


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry/deadline policy for one class of calls.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (1 = never retry).
    deadline_s:
        End-to-end budget per call, attempts + backoffs included.  ``None``
        means unbounded.
    call_timeout_s:
        Per-attempt timeout hint, applied by transports that can enforce it
        (socket timeouts, the fault injector's stall clock).
    backoff_initial_s / backoff_multiplier / backoff_max_s:
        Exponential backoff schedule: ``initial * multiplier**(n-1)`` capped
        at ``backoff_max_s`` before the n+1'th attempt.
    jitter:
        Optional deterministic jitter ``attempt -> seconds`` added to the
        backoff.  Injectable so simulations replay bit-for-bit; ``None``
        means no jitter at all (still deterministic).
    retry_non_idempotent:
        When True, mid-stream failures are retried even for calls not
        marked idempotent.  Off by default — double-executing a booking is
        worse than failing it.
    """

    max_attempts: int = 3
    deadline_s: Optional[float] = None
    call_timeout_s: Optional[float] = None
    backoff_initial_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 2.0
    jitter: Optional[JitterFn] = None
    retry_non_idempotent: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    # ------------------------------------------------------------------
    def backoff_for(self, attempt: int) -> float:
        """Seconds to wait after the ``attempt``'th failure (1-based)."""
        base = min(self.backoff_initial_s
                   * self.backoff_multiplier ** (attempt - 1),
                   self.backoff_max_s)
        if self.jitter is not None:
            base += max(0.0, self.jitter(attempt))
        return base

    def may_retry(self, error: ReliabilityError, idempotent: bool) -> bool:
        """Is retrying ``error`` safe for this call?"""
        if isinstance(error, DeadlineExceeded):
            return False
        return (error.retry_safe or idempotent
                or self.retry_non_idempotent)


def call_with_policy(attempt_fn: Callable[[], Any],
                     policy: RetryPolicy,
                     clock: Optional[Clock] = None,
                     idempotent: bool = True,
                     breaker: Optional[Any] = None,
                     coupling: Optional[Any] = None) -> Any:
    """Run ``attempt_fn`` under ``policy``; returns ``(result, CallMeta)``.

    ``attempt_fn`` performs one attempt and either returns a result or
    raises; low-level exceptions are classified into the typed taxonomy.
    ``breaker`` (duck-typed :class:`~repro.reliability.breaker.CircuitBreaker`)
    is consulted before each attempt and told about every outcome;
    ``coupling`` (duck-typed
    :class:`~repro.core.monitor.BreakerRttCoupling`) hears about failures
    and local rejections so the quality manager can degrade payloads.

    The typed error a call ultimately raises carries ``attempts`` and the
    full :class:`CallMeta` on its ``meta`` attribute.
    """
    clock = clock or WallClock()
    meta = CallMeta(deadline_s=policy.deadline_s)
    start = clock.now()
    deadline = (start + policy.deadline_s
                if policy.deadline_s is not None else None)
    while True:
        if deadline is not None and clock.now() >= deadline:
            raise _finalize(DeadlineExceeded(
                f"deadline budget of {policy.deadline_s:g}s exhausted "
                f"after {meta.attempts} attempt(s)"), meta, clock, start)
        meta.attempts += 1
        if breaker is not None and not breaker.allow():
            error: ReliabilityError = CircuitOpen(
                "circuit breaker is open",
                retry_after_s=breaker.cooldown_remaining())
            if coupling is not None:
                coupling.call_rejected()
        else:
            try:
                result = attempt_fn()
            except Exception as exc:  # noqa: BLE001 - classified below
                error = classify_failure(exc)
                if breaker is not None:
                    breaker.record_failure()
                if coupling is not None:
                    coupling.call_failed()
            else:
                if breaker is not None:
                    breaker.record_success()
                meta.elapsed_s = clock.now() - start
                if deadline is not None:
                    meta.deadline_remaining_s = deadline - clock.now()
                return result, meta
        meta.faults.append(type(error).__name__)
        if not policy.may_retry(error, idempotent) \
                or meta.attempts >= policy.max_attempts:
            raise _finalize(error, meta, clock, start)
        pause = policy.backoff_for(meta.attempts)
        if error.retry_after_s is not None:
            pause = max(pause, error.retry_after_s)
        if deadline is not None and clock.now() + pause >= deadline:
            deadline_error = DeadlineExceeded(
                f"backoff of {pause:g}s would overrun the "
                f"{policy.deadline_s:g}s deadline budget")
            deadline_error.__cause__ = error
            meta.faults.append(type(deadline_error).__name__)
            raise _finalize(deadline_error, meta, clock, start)
        meta.retried = True
        meta.backoff_s += pause
        clock.sleep(pause)


def _finalize(error: ReliabilityError, meta: CallMeta, clock: Clock,
              start: float) -> ReliabilityError:
    meta.elapsed_s = clock.now() - start
    if meta.deadline_s is not None:
        meta.deadline_remaining_s = max(
            0.0, start + meta.deadline_s - clock.now())
    error.attempts = meta.attempts
    error.meta = meta
    return error
