"""Deterministic fault injection for channels, real or simulated.

*Non-Blocking Signature of very large SOAP Messages* (PAPERS.md) observes
that large-message SOAP paths fail *mid-stream*, not at connect time; the
happy-path test suite never produced either shape.  This module scripts
both, deterministically:

* a :class:`FaultSchedule` says *when* faults fire — by virtual-time window
  and/or by call index, so a scenario reads like a timeline ("resets from
  t=0.5 to t=1.0, one stall at t=1.5");
* a :class:`FaultInjector` evaluates the schedule per call and keeps
  per-kind counters;
* a :class:`FaultInjectingChannel` wraps **any**
  :class:`~repro.transport.base.Channel` — a
  :class:`~repro.transport.sim.SimChannel` over a
  :class:`~repro.netsim.link.LinkModel` for virtual-clock soak tests, or a
  real-socket :class:`~repro.transport.sockets.HttpChannel` /
  :class:`~repro.transport.sockets.PooledHttpChannel` — and raises the same
  *low-level* exception the real transport would (``ConnectionRefusedError``,
  ``ConnectionResetError``, ``TimeoutError``, a truncated-frame close, an
  HTTP 503 reply), annotated with the wire state via
  :func:`~repro.reliability.errors.mark_bytes_written`.  The reliability
  layer above must then classify and survive them exactly as it would in
  production; nothing in the injector is reliability-aware.

Every fault charges the virtual clock what the real failure would cost
(connect RTT for a refusal, the read timeout for a stall, ...), so RTT
monitoring and deadline budgets observe injected faults just like real ones.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from ..netsim.clock import Clock, VirtualClock
from ..transport.base import Channel, ChannelReply
from .errors import mark_bytes_written


class FaultKind(enum.Enum):
    """The failure shapes the injector can script."""

    CONNECT_REFUSED = "connect_refused"
    RESET_MID_STREAM = "reset_mid_stream"
    STALLED_READ = "stalled_read"
    TRUNCATED_REPLY = "truncated_reply"
    UNAVAILABLE_503 = "unavailable_503"


@dataclass(frozen=True)
class FaultWindow:
    """One scheduled fault: a kind plus when it applies.

    ``start_s``/``end_s`` bound a half-open virtual-time window; ``calls``
    lists explicit call indexes (0-based, counting every channel-level
    attempt).  A window with neither constraint matches always.
    """

    kind: FaultKind
    start_s: Optional[float] = None
    end_s: Optional[float] = None
    calls: Optional[Sequence[int]] = None

    def matches(self, call_index: int, now: float) -> bool:
        if self.calls is not None and call_index not in self.calls:
            return False
        if self.start_s is not None and now < self.start_s:
            return False
        if self.end_s is not None and now >= self.end_s:
            return False
        return True


class FaultSchedule:
    """An ordered list of fault windows; first match wins."""

    def __init__(self, windows: Sequence[FaultWindow]) -> None:
        self.windows: List[FaultWindow] = list(windows)

    @classmethod
    def burst(cls, kind: FaultKind, start_s: float,
              end_s: float) -> "FaultSchedule":
        """A single contiguous burst of one fault kind."""
        return cls([FaultWindow(kind, start_s=start_s, end_s=end_s)])

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FaultSchedule":
        """Build a schedule from its declarative form.

        The document is ``{"windows": [window, ...]}`` where each window
        is ``{"kind": "<FaultKind value>", "start_s": float|null,
        "end_s": float|null, "calls": [int, ...]|null}``; only ``kind``
        is required.  Unknown keys and unknown kinds are rejected so a
        typo in a committed fixture fails loudly instead of silently
        matching nothing.
        """
        if not isinstance(doc, dict):
            raise ValueError("fault schedule document must be a dict")
        unknown = set(doc) - {"windows"}
        if unknown:
            raise ValueError(
                f"fault schedule: unknown keys {sorted(unknown)}")
        windows_doc = doc.get("windows")
        if not isinstance(windows_doc, list):
            raise ValueError("fault schedule: 'windows' must be a list")
        windows: List[FaultWindow] = []
        for i, wdoc in enumerate(windows_doc):
            if not isinstance(wdoc, dict):
                raise ValueError(f"fault schedule: window {i} not a dict")
            extra = set(wdoc) - {"kind", "start_s", "end_s", "calls"}
            if extra:
                raise ValueError(
                    f"fault schedule: window {i} unknown keys "
                    f"{sorted(extra)}")
            try:
                kind = FaultKind(wdoc["kind"])
            except KeyError:
                raise ValueError(
                    f"fault schedule: window {i} missing 'kind'") from None
            except ValueError:
                valid = sorted(k.value for k in FaultKind)
                raise ValueError(
                    f"fault schedule: window {i} unknown kind "
                    f"{wdoc['kind']!r} (valid: {valid})") from None
            calls = wdoc.get("calls")
            if calls is not None:
                if (not isinstance(calls, list)
                        or not all(isinstance(c, int) and not
                                   isinstance(c, bool) for c in calls)):
                    raise ValueError(
                        f"fault schedule: window {i} 'calls' must be a "
                        f"list of ints")
            for bound in ("start_s", "end_s"):
                value = wdoc.get(bound)
                if value is not None and not isinstance(value,
                                                        (int, float)):
                    raise ValueError(
                        f"fault schedule: window {i} {bound!r} must be "
                        f"a number")
            windows.append(FaultWindow(
                kind,
                start_s=wdoc.get("start_s"),
                end_s=wdoc.get("end_s"),
                calls=tuple(calls) if calls is not None else None))
        return cls(windows)

    @classmethod
    def from_file(cls, path: Union[str, "os.PathLike[str]"]
                  ) -> "FaultSchedule":
        """Load a committed JSON fixture (see ``tests/fixtures/faults/``)."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def to_dict(self) -> Dict[str, Any]:
        """The declarative form accepted by :meth:`from_dict`."""
        return {"windows": [
            {"kind": w.kind.value, "start_s": w.start_s, "end_s": w.end_s,
             "calls": list(w.calls) if w.calls is not None else None}
            for w in self.windows]}

    def fault_at(self, call_index: int, now: float) -> Optional[FaultKind]:
        for window in self.windows:
            if window.matches(call_index, now):
                return window.kind
        return None


class FaultInjector:
    """Evaluates a schedule call-by-call and counts what it injected."""

    def __init__(self, schedule: FaultSchedule,
                 clock: Optional[Clock] = None) -> None:
        self.schedule = schedule
        self.clock = clock or VirtualClock()
        self.calls_seen = 0
        self.injected: Dict[FaultKind, int] = {}

    def next_fault(self) -> Optional[FaultKind]:
        """The fault (if any) for the next channel-level attempt."""
        index = self.calls_seen
        self.calls_seen += 1
        kind = self.schedule.fault_at(index, self.clock.now())
        if kind is not None:
            self.injected[kind] = self.injected.get(kind, 0) + 1
        return kind

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())


class FaultInjectingChannel(Channel):
    """Wrap a channel and make scripted attempts fail like real ones do.

    Parameters
    ----------
    inner:
        The channel that handles non-faulted attempts.
    injector:
        Decides, per attempt, which fault (if any) fires.
    clock:
        Charged with each fault's realistic cost; defaults to the
        injector's clock.
    connect_cost_s:
        Time burned by a refused/failed connect (one RTT-ish).
    mid_stream_cost_s:
        Time burned before a mid-stream reset or truncation surfaces.
    read_timeout_s:
        How long a stalled read blocks before the client-side socket
        timeout fires (the per-attempt ``call_timeout_s`` of the policy in
        a real deployment).
    retry_after_s:
        ``Retry-After`` value carried by injected 503 replies.
    """

    def __init__(self, inner: Channel, injector: FaultInjector,
                 clock: Optional[Clock] = None,
                 connect_cost_s: float = 0.001,
                 mid_stream_cost_s: float = 0.002,
                 read_timeout_s: float = 0.25,
                 retry_after_s: float = 0.1) -> None:
        self.inner = inner
        self.injector = injector
        self.clock = clock or injector.clock
        self.connect_cost_s = connect_cost_s
        self.mid_stream_cost_s = mid_stream_cost_s
        self.read_timeout_s = read_timeout_s
        self.retry_after_s = retry_after_s

    def call(self, body: bytes, content_type: str,
             headers: Optional[Dict[str, str]] = None) -> ChannelReply:
        kind = self.injector.next_fault()
        if kind is None:
            return self.inner.call(body, content_type, headers)
        return self._fire(kind)

    def call_many(self, bodies: Sequence[bytes], content_type: str,
                  headers: Optional[Union[Dict[str, str],
                                          Sequence[Optional[Dict[str, str]]]]]
                  = None) -> List[Any]:
        """Batch counterpart of :meth:`call`: each slot consults the
        schedule independently, faulted slots become per-slot
        :class:`~repro.transport.sockets.BatchResult` failures (an
        injected 503 stays a *reply*, everything else an *error*), and
        the surviving slots ride ``inner.call_many`` as one sub-batch —
        merged back in input order so the caller's suffix-retry logic
        sees exactly what a flaky pipelined link would produce.
        """
        from ..transport.sockets import BatchResult

        total = len(bodies)
        if headers is None or isinstance(headers, dict):
            headers_list: List[Optional[Dict[str, str]]] = [headers] * total
        else:
            if len(headers) != total:
                raise ValueError("headers sequence length != bodies length")
            headers_list = list(headers)

        results: List[Optional[BatchResult]] = [None] * total
        clean_idx: List[int] = []
        for i in range(total):
            kind = self.injector.next_fault()
            if kind is None:
                clean_idx.append(i)
                continue
            try:
                reply = self._fire(kind)
            except Exception as exc:  # scripted shapes only
                results[i] = BatchResult(error=exc)
            else:
                results[i] = BatchResult(reply=reply)
        if clean_idx:
            inner_many = getattr(self.inner, "call_many", None)
            if inner_many is not None:
                sub = inner_many([bodies[i] for i in clean_idx],
                                 content_type,
                                 [headers_list[i] for i in clean_idx])
                for i, res in zip(clean_idx, sub):
                    results[i] = res
            else:
                for i in clean_idx:
                    try:
                        reply = self.inner.call(bodies[i], content_type,
                                                headers_list[i])
                    except Exception as exc:
                        results[i] = BatchResult(error=exc)
                    else:
                        results[i] = BatchResult(reply=reply)
        return results  # type: ignore[return-value]

    def _fire(self, kind: FaultKind) -> ChannelReply:
        if kind is FaultKind.CONNECT_REFUSED:
            self.clock.sleep(self.connect_cost_s)
            raise mark_bytes_written(
                ConnectionRefusedError("injected: connection refused"),
                False)
        if kind is FaultKind.RESET_MID_STREAM:
            self.clock.sleep(self.mid_stream_cost_s)
            raise mark_bytes_written(
                ConnectionResetError("injected: connection reset by peer"),
                True)
        if kind is FaultKind.STALLED_READ:
            self.clock.sleep(self.read_timeout_s)
            raise mark_bytes_written(
                TimeoutError("injected: read timed out"), True)
        if kind is FaultKind.TRUNCATED_REPLY:
            from ..http11.errors import HttpConnectionClosed
            self.clock.sleep(self.mid_stream_cost_s)
            raise mark_bytes_written(
                HttpConnectionClosed("injected: response truncated"), True)
        # FaultKind.UNAVAILABLE_503: the server's accept loop answered
        # before dispatch, exactly like HttpServer(max_connections=...).
        self.clock.sleep(self.connect_cost_s)
        return ChannelReply(
            body=b"injected: connection limit reached",
            content_type="text/plain",
            headers={"Retry-After": f"{self.retry_after_s:g}"},
            status=503,
        )

    def close(self) -> None:
        self.inner.close()
