"""ReliableChannel: retries, deadlines and breaking for any transport.

This is the reliability layer's main wiring point: wrap any
:class:`~repro.transport.base.Channel` and every ``call`` runs under a
:class:`~repro.reliability.policy.RetryPolicy`, optionally guarded by a
:class:`~repro.reliability.breaker.CircuitBreaker` whose state can be
coupled into the quality manager (see
:class:`~repro.core.monitor.BreakerRttCoupling`).

Guarantees to callers above (:class:`~repro.soap.client.SoapClient`,
:class:`~repro.core.binclient.SoapBinClient`):

* no bare ``OSError``/``socket.timeout`` ever escapes — every failure is
  one typed :class:`~repro.reliability.errors.ReliabilityError`;
* HTTP 503 replies become
  :class:`~repro.reliability.errors.ServiceUnavailable` and their
  ``Retry-After`` seeds the backoff (other non-2xx statuses pass through:
  they are application-protocol business, not transport faults);
* :attr:`last_call` always holds the
  :class:`~repro.reliability.policy.CallMeta` of the most recent call —
  attempts, elapsed, backoff and deadline headroom — which the SOAP and
  SOAP-bin clients re-surface.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..netsim.clock import Clock, WallClock
from ..transport.base import Channel, ChannelReply
from .breaker import CircuitBreaker
from .errors import ServiceUnavailable
from .policy import CallMeta, RetryPolicy, call_with_policy


def reply_unavailable(reply: ChannelReply) -> ServiceUnavailable:
    """Build the typed 503 error, honoring a ``Retry-After`` header."""
    retry_after: Optional[float] = None
    for name, value in (reply.headers or {}).items():
        if name.lower() == "retry-after":
            try:
                retry_after = max(0.0, float(value))
            except ValueError:
                retry_after = None
            break
    return ServiceUnavailable("server answered 503 Service Unavailable",
                              retry_after_s=retry_after)


class ReliableChannel(Channel):
    """A channel that absorbs transient faults instead of surfacing them."""

    def __init__(self, inner: Channel,
                 policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 clock: Optional[Clock] = None,
                 coupling: Optional[object] = None,
                 idempotent: bool = True) -> None:
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.breaker = breaker
        self.clock = clock or WallClock()
        self.coupling = coupling
        self.idempotent = idempotent
        self.last_call: Optional[CallMeta] = None

    def call(self, body: bytes, content_type: str,
             headers: Optional[Dict[str, str]] = None) -> ChannelReply:
        # Propagate the end-to-end budget: every attempt carries the
        # remaining milliseconds as X-Deadline-Ms (recomputed per attempt,
        # so retries carry a shrinking budget).  See repro.serving.deadline.
        from ..serving.deadline import with_deadline_header

        deadline = None
        if self.policy.deadline_s is not None:
            deadline = self.clock.now() + self.policy.deadline_s

        def attempt() -> ChannelReply:
            sent = headers
            if deadline is not None:
                sent = with_deadline_header(headers,
                                            deadline - self.clock.now())
            reply = self.inner.call(body, content_type, sent)
            if reply.status == 503:
                raise reply_unavailable(reply)
            return reply

        try:
            reply, meta = call_with_policy(
                attempt, self.policy, clock=self.clock,
                idempotent=self.idempotent, breaker=self.breaker,
                coupling=self.coupling)
        except Exception as exc:
            self.last_call = getattr(exc, "meta", None)
            raise
        self.last_call = meta
        return reply

    def call_many(self, bodies, content_type: str, headers=None):
        """Batch surface: one policed call per body, results in order.

        Each sub-call runs under the channel's full policy independently
        (its own attempts, backoff and deadline budget) and yields a
        :class:`~repro.transport.sockets.BatchResult` — the same contract
        as :meth:`~repro.transport.sockets.PipelinedHttpChannel.call_many`,
        minus the wire-level concurrency.  This is the correctness-first
        fallback that lets ``SoapBinClient.call_many`` run over *any*
        wrapped transport; put a ``PipelinedHttpChannel`` inside (or use
        one directly) when you want requests actually in flight together.
        """
        from ..transport.sockets import BatchResult

        if headers is None or isinstance(headers, dict):
            headers_list = [headers] * len(bodies)
        else:
            if len(headers) != len(bodies):
                raise ValueError(
                    f"got {len(headers)} header dicts for "
                    f"{len(bodies)} bodies")
            headers_list = list(headers)
        results = []
        for body, sent in zip(bodies, headers_list):
            try:
                reply = self.call(body, content_type, sent)
            except Exception as exc:  # noqa: BLE001 - typed by call()
                results.append(BatchResult(
                    error=exc, meta=getattr(exc, "meta", None)))
            else:
                results.append(BatchResult(reply=reply, meta=self.last_call))
        return results

    def close(self) -> None:
        self.inner.close()
