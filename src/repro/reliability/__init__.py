"""Client-side reliability: typed faults, deadline-budgeted retries,
fault injection and circuit breaking.

The paper's quality loop adapts to links that get *slow*; this package
extends the same adaptation loop to links (and servers) that *break*.

* :mod:`~repro.reliability.errors` — the typed failure taxonomy and the
  classifier that maps annotated low-level exceptions onto it;
* :mod:`~repro.reliability.policy` — :class:`RetryPolicy` (per-call
  timeout, end-to-end deadline budget, deterministic jitter, idempotency
  aware retries) and the shared execution engine;
* :mod:`~repro.reliability.breaker` — the closed→open→half-open
  :class:`CircuitBreaker`;
* :mod:`~repro.reliability.faults` — scripted, clock-charged fault
  injection for real-socket and simulated channels;
* :mod:`~repro.reliability.channel` — :class:`ReliableChannel`, the
  wrapper gluing it all onto any transport.

The breaker side of the loop lives in :class:`repro.core.monitor.BreakerRttCoupling`:
an open breaker is fed into the quality manager as worst-interval RTT, so
the existing quality handlers shed payload during outages and recover after.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, StateListener
from .channel import ReliableChannel, reply_unavailable
from .errors import (CallTimeout, CircuitOpen, ConnectFailed,
                     DeadlineExceeded, ReliabilityError, ResetMidStream,
                     ServiceUnavailable, StalledRead, TransportFailure,
                     TruncatedReply, classify_failure, mark_bytes_written)
from .faults import (FaultInjectingChannel, FaultInjector, FaultKind,
                     FaultSchedule, FaultWindow)
from .policy import CallMeta, JitterFn, RetryPolicy, call_with_policy

__all__ = [
    "ReliabilityError", "ConnectFailed", "CallTimeout", "StalledRead",
    "ResetMidStream", "TruncatedReply", "TransportFailure",
    "ServiceUnavailable", "CircuitOpen", "DeadlineExceeded",
    "classify_failure", "mark_bytes_written",
    "RetryPolicy", "CallMeta", "JitterFn", "call_with_policy",
    "CircuitBreaker", "StateListener", "CLOSED", "OPEN", "HALF_OPEN",
    "FaultKind", "FaultWindow", "FaultSchedule", "FaultInjector",
    "FaultInjectingChannel",
    "ReliableChannel", "reply_unavailable",
]
