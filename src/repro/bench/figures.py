"""Figure/table computations for the paper's evaluation section.

Each ``fig*``/``table*`` function regenerates the data behind one figure or
table of the paper.  Marshalling costs are *measured* (real Python
execution); transmission costs come from the deterministic link models —
the substitution DESIGN.md documents for the missing 2004 testbed.  Shapes
(who wins, by what factor, where the crossovers are) are the reproduction
target, not absolute times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..compress import get_codec
from ..core import ConversionHandler
from ..http11 import LineReader, Request, Response, read_request, read_response
from ..netsim import LinkModel, adsl, lan_100mbps
from ..pbio import CodecCompiler, Format, FormatRegistry
from ..sunrpc import (CallHeader, decode_call, decode_reply, encode_call,
                      encode_reply)
from ..sunrpc.rpc import SUCCESS
from . import datagen
from .timers import measure

#: The two links of every microbenchmark figure.  Jitter is disabled here:
#: the microbenchmark figures report averages (the paper: "variances are
#: less than 1% on the average"), so the deterministic mean link is the
#: faithful model; the application figures (8/9) keep jitter on.
LINKS: Dict[str, Callable[[], LinkModel]] = {
    "100Mbps": lambda: lan_100mbps(jitter_s=0.0),
    "ADSL": lambda: adsl(jitter_s=0.0),
}


# ----------------------------------------------------------------------
# shared measurement core
# ----------------------------------------------------------------------

@dataclass
class RepresentationCosts:
    """Measured costs of one workload in each representation."""

    label: str
    native_bytes: int
    pbio_bytes: int
    xml_bytes: int
    compressed_bytes: int
    pbio_encode_s: float
    pbio_decode_s: float
    xml_generate_s: float
    xml_parse_s: float
    compress_s: float
    decompress_s: float

    def wire_time(self, link: LinkModel, nbytes: int) -> float:
        return link.transfer_time(nbytes, 0.0)


def representation_costs(label: str, value: Dict[str, Any], fmt: Format,
                         registry: FormatRegistry, repeat: int = 3,
                         codec_name: str = "zlib") -> RepresentationCosts:
    """Measure every conversion cost for one (value, format) workload."""
    handler = ConversionHandler(fmt, registry)
    codec = get_codec(codec_name)

    payload = handler.to_binary(value)
    xml_text = handler.to_xml(value)
    xml_bytes_ = xml_text.encode("utf-8")
    compressed = codec.compress(xml_bytes_)

    return RepresentationCosts(
        label=label,
        native_bytes=datagen.native_size_bytes(value),
        pbio_bytes=len(payload),
        xml_bytes=len(xml_bytes_),
        compressed_bytes=len(compressed),
        pbio_encode_s=measure(lambda: handler.to_binary(value), repeat),
        pbio_decode_s=measure(lambda: handler.from_binary(payload), repeat),
        xml_generate_s=measure(lambda: handler.to_xml(value), repeat),
        xml_parse_s=measure(lambda: handler.from_xml(xml_text), repeat),
        compress_s=measure(lambda: codec.compress(xml_bytes_), repeat),
        decompress_s=measure(lambda: codec.decompress(compressed), repeat),
    )


def array_workloads(sizes: Optional[List[int]] = None,
                    repeat: int = 3) -> List[RepresentationCosts]:
    """The scientific (int array) sweep."""
    registry = FormatRegistry()
    fmt = datagen.register_array_format(registry)
    out = []
    for n in sizes or datagen.ARRAY_SIZES:
        value = datagen.int_array_value(n)
        out.append(representation_costs(f"{n} ints", value, fmt, registry,
                                        repeat))
    return out


def struct_workloads(depths: Optional[List[int]] = None,
                     repeat: int = 3) -> List[RepresentationCosts]:
    """The business (nested struct) sweep."""
    out = []
    for depth in depths or datagen.STRUCT_DEPTHS:
        registry = FormatRegistry()
        fmt = datagen.register_nested_formats(registry, depth)
        value = datagen.nested_struct_value(depth)
        out.append(representation_costs(f"depth {depth}", value, fmt,
                                        registry, repeat))
    return out


def wide_struct_workloads(depths: Optional[List[int]] = None,
                          repeat: int = 3) -> List[RepresentationCosts]:
    """Bushy struct sweep (exponential XML growth ablation)."""
    out = []
    for depth in depths or [1, 2, 3, 4, 5]:
        registry = FormatRegistry()
        formats = datagen.wide_nested_struct_formats(depth)
        for fmt in formats:
            registry.register(fmt)
        value = datagen.wide_nested_struct_value(depth)
        out.append(representation_costs(f"depth {depth} x3", value,
                                        formats[-1], registry, repeat))
    return out


# ----------------------------------------------------------------------
# Fig. 4 — Sun RPC vs SOAP-bin
# ----------------------------------------------------------------------

@dataclass
class Fig4Row:
    label: str
    sunrpc_cpu_s: float
    sunrpc_wire_bytes: int
    soapbin_cpu_s: float
    soapbin_wire_bytes: int

    def overall(self, which: str, link: LinkModel) -> float:
        """Overall time = measured CPU + modelled wire time.

        The SOAP-bin side is additionally charged a TCP connection setup
        (1.5 RTT = 3 one-way latencies) per call: the paper's Soup-based
        HTTP transport connected per transaction, and the paper attributes
        Sun RPC's struct-case win (up to ~5.4x) mainly to "SOAP-bin's use
        of HTTP for its transactions".  Sun RPC holds its connection open.
        """
        if which == "sunrpc":
            cpu, nbytes = self.sunrpc_cpu_s, self.sunrpc_wire_bytes
            setup = 0.0
        else:
            cpu, nbytes = self.soapbin_cpu_s, self.soapbin_wire_bytes
            setup = 3.0 * link.latency_s
        return cpu + setup + link.transfer_time(nbytes, 0.0)

    def ratio(self, link: LinkModel) -> float:
        """SOAP-bin / Sun RPC overall-time ratio (paper: up to ~5.4)."""
        return self.overall("soapbin", link) / self.overall("sunrpc", link)


def _sunrpc_roundtrip(args: bytes, repeat: int) -> (float, int):
    """Measured CPU cost + wire bytes of one Sun RPC call/reply pair."""
    header = CallHeader(xid=1, prog=0x20000001, vers=1, proc=1)
    call_msg = encode_call(header, args)
    reply_msg = encode_reply(1, SUCCESS, args)

    def roundtrip():
        call = encode_call(header, args)
        _, decoded_args = decode_call(call)
        reply = encode_reply(1, SUCCESS, decoded_args)
        decode_reply(reply)

    cpu = measure(roundtrip, repeat)
    wire = len(call_msg) + len(reply_msg) + 8  # two record-mark words
    return cpu, wire


def _soapbin_roundtrip(payload: bytes, repeat: int) -> (float, int):
    """Measured CPU cost + wire bytes of one SOAP-bin HTTP exchange
    (PBIO payload inside HTTP request/response messages)."""
    request = Request(method="POST", target="/service", body=payload)
    request.headers.set("Content-Type", "application/x-pbio")
    request.headers.set("Host", "127.0.0.1:8080")
    request_bytes = request.to_bytes()
    response = Response(status=200, body=payload)
    response.headers.set("Content-Type", "application/x-pbio")
    response_bytes = response.to_bytes()

    def roundtrip():
        raw = request.to_bytes()
        parsed = read_request(_reader_for(raw))
        out = Response(status=200, body=parsed.body)
        out.headers.set("Content-Type", "application/x-pbio")
        read_response(_reader_for(out.to_bytes()))

    cpu = measure(roundtrip, repeat)
    return cpu, len(request_bytes) + len(response_bytes)


def _reader_for(data: bytes) -> LineReader:
    chunks = [data]

    def recv(n):
        if not chunks:
            return b""
        head = chunks.pop(0)
        return head

    return LineReader(recv)


def fig4_rows(kind: str, repeat: int = 3) -> List[Fig4Row]:
    """``kind`` is ``"arrays"`` (Fig. 4a) or ``"structs"`` (Fig. 4b)."""
    registry = FormatRegistry()
    compiler = CodecCompiler(registry)
    rows = []
    if kind == "arrays":
        fmt = datagen.register_array_format(registry)
        encoder = compiler.encoder(fmt)
        for n in datagen.ARRAY_SIZES:
            value = datagen.int_array_value(n)
            # Sun RPC marshals the same ints through XDR
            from ..sunrpc import XdrEncoder
            enc = XdrEncoder()
            enc.pack_int_array([int(v) for v in value["data"]])
            args = enc.getvalue()
            rpc_cpu, rpc_wire = _sunrpc_roundtrip(args, repeat)
            payload = encoder(value)
            bin_cpu, bin_wire = _soapbin_roundtrip(payload, repeat)
            # SOAP-bin additionally pays PBIO encode/decode; Sun RPC's XDR
            # costs are inside _sunrpc_roundtrip already.
            pbio_cpu = measure(lambda: encoder(value), repeat) + measure(
                lambda: compiler.decoder(fmt)(payload, 0), repeat)
            rows.append(Fig4Row(f"{n} ints", rpc_cpu, rpc_wire,
                                bin_cpu + 2 * pbio_cpu, bin_wire))
    elif kind == "structs":
        from ..sunrpc import XdrEncoder
        for depth in datagen.STRUCT_DEPTHS:
            fmt = datagen.register_nested_formats(registry, depth)
            value = datagen.nested_struct_value(depth)
            encoder = compiler.encoder(fmt)
            payload = encoder(value)

            def xdr_encode(node, level=depth):
                enc = XdrEncoder()

                def walk(n, lv):
                    enc.pack_int(n["id"])
                    enc.pack_uint(n["flag"])
                    if lv == 0:
                        enc.pack_double(n["amount"])
                    else:
                        enc.pack_int(n["seq"])
                        walk(n["child"], lv - 1)

                walk(node, level)
                return enc.getvalue()

            args = xdr_encode(value)
            rpc_cpu, rpc_wire = _sunrpc_roundtrip(args, repeat)
            bin_cpu, bin_wire = _soapbin_roundtrip(payload, repeat)
            pbio_cpu = measure(lambda: encoder(value), repeat) + measure(
                lambda: compiler.decoder(fmt)(payload, 0), repeat)
            rows.append(Fig4Row(f"depth {depth}", rpc_cpu, rpc_wire,
                                bin_cpu + 2 * pbio_cpu, bin_wire))
    else:
        raise ValueError("kind must be 'arrays' or 'structs'")
    return rows


# ----------------------------------------------------------------------
# Figs. 5/6 — marshalling/unmarshalling + transmission cost breakdowns
# ----------------------------------------------------------------------

def cost_series(costs: List[RepresentationCosts],
                link: LinkModel) -> List[Dict[str, float]]:
    """Per-workload totals for the three paths of Figs. 5/6:

    * ``pbio`` — native->PBIO, transfer, PBIO->native;
    * ``xml`` — direct XML generation, transfer, parse;
    * ``xml_compressed`` — XML generation, compress, transfer, decompress,
      parse.
    """
    out = []
    for c in costs:
        out.append({
            "label": c.label,
            "pbio": (c.pbio_encode_s
                     + link.transfer_time(c.pbio_bytes)
                     + c.pbio_decode_s),
            "xml": (c.xml_generate_s
                    + link.transfer_time(c.xml_bytes)
                    + c.xml_parse_s),
            "xml_compressed": (c.xml_generate_s + c.compress_s
                               + link.transfer_time(c.compressed_bytes)
                               + c.decompress_s + c.xml_parse_s),
            "pbio_bytes": c.pbio_bytes,
            "xml_bytes": c.xml_bytes,
            "compressed_bytes": c.compressed_bytes,
        })
    return out


def xml_source_series(costs: List[RepresentationCosts],
                      link: LinkModel) -> List[Dict[str, float]]:
    """Fig. 6's 'costs with XML data' comparison: the data already *is* XML.

    * ``convert`` — XML->PBIO conversion + transfer + PBIO->XML;
    * ``direct_xml`` — just send the XML text;
    * ``compressed`` — compress the XML, send, decompress.
    """
    out = []
    for c in costs:
        out.append({
            "label": c.label,
            "convert": (c.xml_parse_s + c.pbio_encode_s
                        + link.transfer_time(c.pbio_bytes)
                        + c.pbio_decode_s + c.xml_generate_s),
            "direct_xml": link.transfer_time(c.xml_bytes),
            "compressed": (c.compress_s
                           + link.transfer_time(c.compressed_bytes)
                           + c.decompress_s),
        })
    return out


# ----------------------------------------------------------------------
# Fig. 7 — the three modes of operation
# ----------------------------------------------------------------------

def mode_series(costs: List[RepresentationCosts],
                link: LinkModel) -> List[Dict[str, float]]:
    """Overall cost in each SOAP-bin operating mode.

    * high performance — PBIO encode + transfer + decode (no XML at all);
    * interoperability — one side converts XML just-in-time;
    * compatibility — XML at both ends, binary on the wire.
    """
    out = []
    for c in costs:
        transfer = link.transfer_time(c.pbio_bytes)
        high = c.pbio_encode_s + transfer + c.pbio_decode_s
        interop = c.xml_parse_s + high
        compat = interop + c.xml_generate_s
        out.append({"label": c.label, "high_performance": high,
                    "interoperability": interop, "compatibility": compat})
    return out


# ----------------------------------------------------------------------
# Table I — airline event rates
# ----------------------------------------------------------------------

def table1_rows(repeat: int = 5,
                codec_name: str = "zlib") -> List[Dict[str, Any]]:
    """Event rates for the airline application over the ADSL link."""
    from ..apps.airline import AirlineDataset, event_encodings

    dataset = AirlineDataset()
    value = dataset.catering_for("DL100")
    link = adsl(jitter_s=0.0)
    rows = []
    for name, enc in event_encodings().items():
        blob = enc.encode(value)
        encode_s = measure(lambda: enc.encode(value), repeat)
        decode_s = measure(lambda: enc.decode(blob), repeat)
        per_event = encode_s + link.transfer_time(len(blob)) + decode_s
        rows.append({"protocol": name, "size_bytes": len(blob),
                     "events_per_sec": 1.0 / per_event})
    return rows


# ----------------------------------------------------------------------
# headline — transmission-time improvement at 1 MB
# ----------------------------------------------------------------------

def headline_improvement(n_ints: int = 262_144,
                         repeat: int = 3) -> Dict[str, Any]:
    """The abstract's claim: "message transmission times are improved by a
    factor of about 15 for 1MByte message sizes".

    Compares the full message path (marshal + transfer + unmarshal) for a
    1 MB native array sent as XML SOAP vs SOAP-bin.
    """
    registry = FormatRegistry()
    fmt = datagen.register_array_format(registry)
    value = datagen.int_array_value(n_ints)  # 262144 * 4 B = 1 MiB
    costs = representation_costs("1MB", value, fmt, registry, repeat)
    out: Dict[str, Any] = {"native_bytes": costs.native_bytes,
                           "xml_bytes": costs.xml_bytes,
                           "pbio_bytes": costs.pbio_bytes}
    for name, make_link in LINKS.items():
        link = make_link()
        xml_total = (costs.xml_generate_s + link.transfer_time(costs.xml_bytes)
                     + costs.xml_parse_s)
        bin_total = (costs.pbio_encode_s
                     + link.transfer_time(costs.pbio_bytes)
                     + costs.pbio_decode_s)
        out[name] = {"xml_s": xml_total, "soap_bin_s": bin_total,
                     "factor": xml_total / bin_total}
    return out


# ----------------------------------------------------------------------
# remote visualization response time
# ----------------------------------------------------------------------

def remoteviz_response(repeat: int = 5) -> Dict[str, float]:
    """§IV-C.4: ~2400 us response for ~16 KB over 100 Mbps."""
    from ..apps.remoteviz import DisplayClient, ServicePortal
    from ..netsim import VirtualClock
    from ..transport import SimChannel

    portal = ServicePortal()
    clock = VirtualClock()
    channel = SimChannel(portal.endpoint, lan_100mbps(), clock)
    client = DisplayClient(channel, portal.registry, clock=clock)
    client.refresh()  # announcement + warmup
    samples = []
    for _ in range(repeat):
        before = clock.now()
        out = client.refresh()
        samples.append(clock.now() - before)
    return {"response_time_s": sum(samples) / len(samples),
            "svg_bytes": len(out["svg"]),
            "wire_bytes": channel.log[-1].response_bytes}
