"""Timing and statistics helpers for the benchmark harness.

The paper reports averages over 10-1000 runs after discarding the first set
(cold-start elimination); :func:`measure` mirrors that protocol.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Optional, Sequence


def measure(fn: Callable[[], object], repeat: int = 5,
            warmup: int = 1) -> float:
    """Average seconds per call over ``repeat`` runs after ``warmup``.

    "Measurements are derived from sets of 10-1000 experiments, reporting
    the averages over all readings, after discarding the first set (to
    eliminate cold start effects)." (§IV-B)
    """
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return sum(samples) / len(samples)


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def stdev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


class LogHistogram:
    """Streaming latency histogram over geometric (log-spaced) buckets.

    A t-digest-style compromise for the loadgen harness: recording is
    O(1) with a fixed ~900-byte footprint regardless of sample count, the
    counts of two histograms (from different generator processes, or from
    different seconds of the run) merge by plain addition, and percentile
    queries interpolate within the matched bucket.  Bucket boundaries grow
    by ``2**0.25`` (~19%) per step from ``min_value`` — so a reported
    quantile is within ~±10% of the true one, plenty for p50/p95/p99 over
    RPC latencies spanning microseconds to seconds.

    Values below ``min_value`` land in bucket 0; values beyond the top
    boundary clamp into the last bucket (its upper edge is reported).
    """

    #: one bucket per quarter-octave
    GROWTH = 2 ** 0.25

    def __init__(self, min_value: float = 1e-6, max_value: float = 64.0,
                 counts: Optional[List[int]] = None) -> None:
        if min_value <= 0 or max_value <= min_value:
            raise ValueError("need 0 < min_value < max_value")
        self.min_value = min_value
        self.max_value = max_value
        self._log_min = math.log(min_value)
        self._log_growth = math.log(self.GROWTH)
        nbuckets = int(math.ceil(
            (math.log(max_value) - self._log_min) / self._log_growth)) + 1
        if counts is not None:
            if len(counts) != nbuckets:
                raise ValueError(
                    f"counts length {len(counts)} does not match the "
                    f"{nbuckets} buckets of [{min_value}, {max_value}]")
            self.counts = list(counts)
        else:
            self.counts = [0] * nbuckets
        self.total = sum(self.counts)

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        idx = int((math.log(value) - self._log_min) / self._log_growth)
        return min(idx, len(self.counts) - 1)

    def _upper_edge(self, index: int) -> float:
        return self.min_value * (self.GROWTH ** (index + 1))

    def record(self, value: float) -> None:
        self.counts[self._index(value)] += 1
        self.total += 1

    def merge(self, other: "LogHistogram") -> None:
        if len(other.counts) != len(self.counts):
            raise ValueError("cannot merge histograms with different "
                             "bucket layouts")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total

    def percentile(self, q: float) -> float:
        """Estimated value at percentile ``q`` (0..100)."""
        if self.total == 0:
            return 0.0
        rank = (q / 100.0) * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            if seen + count >= rank:
                lower = (self.min_value * (self.GROWTH ** i)
                         if i > 0 else 0.0)
                upper = self._upper_edge(i)
                frac = (rank - seen) / count
                return lower + (upper - lower) * min(1.0, max(0.0, frac))
            seen += count
        return self._upper_edge(len(self.counts) - 1)

    def summary(self) -> Dict[str, float]:
        return {"count": self.total,
                "p50": self.percentile(50.0),
                "p95": self.percentile(95.0),
                "p99": self.percentile(99.0)}

    # serialization across the generator -> coordinator process boundary
    def to_dict(self) -> Dict[str, object]:
        return {"min_value": self.min_value, "max_value": self.max_value,
                "counts": list(self.counts)}

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "LogHistogram":
        return cls(min_value=float(doc["min_value"]),
                   max_value=float(doc["max_value"]),
                   counts=list(doc["counts"]))  # type: ignore[arg-type]


def jitter_stats(response_times: Sequence[float]) -> Dict[str, float]:
    """Summary used for the Figs. 8/9 jitter discussion."""
    return {
        "mean": mean(response_times),
        "stdev": stdev(response_times),
        "p5": percentile(response_times, 5),
        "p95": percentile(response_times, 95),
        "max": max(response_times) if response_times else 0.0,
        "min": min(response_times) if response_times else 0.0,
    }
