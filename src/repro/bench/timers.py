"""Timing and statistics helpers for the benchmark harness.

The paper reports averages over 10-1000 runs after discarding the first set
(cold-start elimination); :func:`measure` mirrors that protocol.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, Sequence


def measure(fn: Callable[[], object], repeat: int = 5,
            warmup: int = 1) -> float:
    """Average seconds per call over ``repeat`` runs after ``warmup``.

    "Measurements are derived from sets of 10-1000 experiments, reporting
    the averages over all readings, after discarding the first set (to
    eliminate cold start effects)." (§IV-B)
    """
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return sum(samples) / len(samples)


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def stdev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def jitter_stats(response_times: Sequence[float]) -> Dict[str, float]:
    """Summary used for the Figs. 8/9 jitter discussion."""
    return {
        "mean": mean(response_times),
        "stdev": stdev(response_times),
        "p5": percentile(response_times, 5),
        "p95": percentile(response_times, 95),
        "max": max(response_times) if response_times else 0.0,
        "min": min(response_times) if response_times else 0.0,
    }
