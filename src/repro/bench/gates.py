"""CI benchmark gates, extracted from inline ``python - <<EOF`` steps.

CI used to carry four copy-pasted heredoc gate scripts inside
``ci.yml`` — unreviewable, untestable, and each with its own slightly
different missing-section error.  This module is the single home for
that judgment logic:

* ``python -m repro.bench.gates BENCH_headline.json BENCH_fresh.json``
  runs the regression gates (rpc p50 budget, pipelined throughput
  floor, scaleout/cache baseline sanity) with the exact thresholds the
  inline steps enforced;
* ``python -m repro.bench.gates --loadgen LOADGEN_report.json``
  validates a load-generator report (schema, zero transport errors,
  p99 bound) for the ``loadgen-smoke`` job.

Every gate prints the numbers it judged and raises :class:`GateFailure`
with an actionable message on violation, so the unit tests in
``tests/bench/test_gates.py`` can exercise both sides of every
threshold without a workflow run.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

#: rpc p50 may grow at most 10% over the committed baseline
RPC_P50_BUDGET_RATIO = 1.10
#: pipelined depth-8 throughput may shrink at most 20% (floor = base/1.25)
PIPELINED_FLOOR_DIVISOR = 1.25
#: default p99 ceiling for the loadgen smoke gate — deliberately
#: generous: it catches pathologies (stalls, retry storms), not noise
LOADGEN_P99_MAX_S = 5.0
#: compact encoding must shrink the small-int-heavy shape at least 2x
WIRE_COMPACT_MIN_SHRINK = 2.0
#: streaming a large payload may grow RSS by at most 25% of the payload
STREAM_RSS_MAX_RATIO = 0.25


class GateFailure(Exception):
    """A CI gate judged the numbers and said no."""


def require_section(doc: Dict[str, Any], name: str,
                    path: str = "BENCH_headline.json") -> Dict[str, Any]:
    """The one missing-section helper all gates share.

    Raises :class:`GateFailure` pointing at the exact regenerate
    command, instead of each gate inventing its own KeyError.
    """
    if name not in doc:
        raise GateFailure(
            f"{path} lacks the {name!r} section: regenerate with "
            f"`python -m repro.bench.regress --sections {name}`")
    return doc[name]


def gate_rpc_p50(baseline: Dict[str, Any], fresh: Dict[str, Any]) -> None:
    """Fail if fresh rpc p50 exceeds 1.10x the committed baseline."""
    base_p50 = require_section(baseline, "rpc")["p50_call_latency_s"]
    new_p50 = require_section(fresh, "rpc",
                              "BENCH_fresh.json")["p50_call_latency_s"]
    budget = RPC_P50_BUDGET_RATIO * base_p50
    print(f"rpc p50: baseline {base_p50 * 1e6:.1f}us, "
          f"fresh {new_p50 * 1e6:.1f}us, budget {budget * 1e6:.1f}us")
    if new_p50 > budget:
        raise GateFailure(
            f"rpc p50 regressed >10%: {new_p50} > {budget}")


def gate_pipelined_depth8(baseline: Dict[str, Any],
                          fresh: Dict[str, Any]) -> None:
    """Fail if pipelined depth-8 throughput drops below 80% of baseline."""
    key = "pipelined_depth8_ops_s"
    base = require_section(baseline, "concurrency")[key]
    new = require_section(fresh, "concurrency", "BENCH_fresh.json")[key]
    floor = base / PIPELINED_FLOOR_DIVISOR
    print(f"{key}: baseline {base:.0f}, fresh {new:.0f}, "
          f"floor {floor:.0f}")
    if new < floor:
        raise GateFailure(
            f"pipelined depth-8 throughput regressed >20%: "
            f"{new:.0f} < {floor:.0f}")


def gate_scaleout_baseline(baseline: Dict[str, Any]) -> None:
    """The committed baseline must carry a plausible scaleout section."""
    scale = require_section(baseline, "scaleout")
    print(f"scaleout baseline: {scale['workers']} workers on "
          f"{scale['cores']} cores ({scale['mode']}), "
          f"efficiency {scale['scaling_efficiency']:.2f}, "
          f"depth-8 speedup "
          f"{scale['fleet_pipelined_depth8_speedup_vs_serial']:.2f}x")


def gate_cache_baseline(baseline: Dict[str, Any]) -> None:
    """The committed baseline must show both cache wins."""
    cache = require_section(baseline, "cache")
    print(f"cache baseline: hit p50 "
          f"{cache['hit_p50_call_latency_s'] * 1e3:.3f} ms vs cold "
          f"{cache['cold_p50_call_latency_s'] * 1e3:.3f} ms "
          f"({cache['hit_speedup_vs_cold']:.2f}x), 304 p50 "
          f"{cache['not_modified_p50_s'] * 1e3:.3f} ms "
          f"({cache['not_modified_speedup_vs_full']:.2f}x over full)")
    if cache["hit_p50_call_latency_s"] >= cache["cold_p50_call_latency_s"]:
        raise GateFailure("cache baseline does not show a hit-path win")
    if cache["not_modified_p50_s"] >= cache["full_response_p50_s"]:
        raise GateFailure("cache baseline does not show a 304 win")


def gate_wire_baseline(baseline: Dict[str, Any]) -> None:
    """The committed baseline must show both wire-format wins.

    * compact varint encoding shrinks the small-int-heavy shape by at
      least :data:`WIRE_COMPACT_MIN_SHRINK` — the negotiation exists to
      buy this, so a baseline without the win means the codec regressed;
    * the full-mode streaming pass (64 MiB through the reactor's chunked
      route) grew RSS by under :data:`STREAM_RSS_MAX_RATIO` of the
      payload — the constant-memory contract of the large-message path.
    """
    wire = require_section(baseline, "wire")
    small = wire["shapes"]["small_int_heavy"]
    stream = wire["streaming"]
    print(f"wire baseline: small-int compact shrink "
          f"{small['compact_shrink']:.2f}x "
          f"({small['native_bytes']:,} -> {small['compact_bytes']:,} "
          f"bytes); streamed {stream['payload_bytes'] >> 20} MiB with "
          f"+{stream['rss_growth_kb']} KiB RSS "
          f"({stream['rss_growth_ratio']:.3f} of payload)")
    if small["compact_shrink"] < WIRE_COMPACT_MIN_SHRINK:
        raise GateFailure(
            f"compact encoding shrinks the small-int shape only "
            f"{small['compact_shrink']:.2f}x "
            f"(< {WIRE_COMPACT_MIN_SHRINK}x)")
    if stream["rss_growth_ratio"] >= STREAM_RSS_MAX_RATIO:
        raise GateFailure(
            f"streaming RSS growth {stream['rss_growth_ratio']:.3f} of "
            f"payload breaches the {STREAM_RSS_MAX_RATIO} constant-memory "
            f"bound")


def run_bench_gates(baseline: Dict[str, Any],
                    fresh: Dict[str, Any]) -> None:
    """All regression gates, in the order ci.yml ran them."""
    gate_rpc_p50(baseline, fresh)
    gate_pipelined_depth8(baseline, fresh)
    gate_scaleout_baseline(baseline)
    gate_cache_baseline(baseline)
    gate_wire_baseline(baseline)


def gate_loadgen(report: Dict[str, Any],
                 p99_max_s: float = LOADGEN_P99_MAX_S) -> None:
    """The loadgen-smoke judgment: valid, error-free, sane tail.

    * the report must validate against the loadgen schema;
    * zero transport errors (sheds are fine — that is the server
      working — but a connection reset or protocol error is not);
    * at least one request completed;
    * overall p99 under ``p99_max_s``.
    """
    from .loadgen_report import validate_report

    problems = validate_report(report)
    if problems:
        raise GateFailure("loadgen report failed schema validation:\n  "
                          + "\n  ".join(problems))
    totals = report["totals"]
    p99 = report["latency"]["overall"]["p99_s"]
    print(f"loadgen: {totals['requests']} requests, "
          f"{totals['errors']} errors, {totals['shed']} shed, "
          f"p99 {p99 * 1e3:.2f} ms (max {p99_max_s * 1e3:.0f} ms)")
    if totals["requests"] == 0:
        raise GateFailure("loadgen completed zero requests")
    if totals["errors"] != 0:
        raise GateFailure(
            f"loadgen saw {totals['errors']} transport errors "
            f"(sheds: {totals['shed']})")
    if p99 > p99_max_s:
        raise GateFailure(
            f"loadgen overall p99 {p99:.3f}s exceeds the "
            f"{p99_max_s:.3f}s bound")
    failures = [gen for gen in report.get("generators", [])
                if gen.get("failures")]
    if failures:
        raise GateFailure(
            "generator processes reported warmup/setup failures: "
            + "; ".join(str(gen["failures"]) for gen in failures))


def _load(path: str) -> Dict[str, Any]:
    try:
        with open(path) as fh:
            return json.load(fh)
    except OSError as exc:
        raise GateFailure(f"cannot read {path}: {exc}") from exc
    except ValueError as exc:
        raise GateFailure(f"{path} is not valid JSON: {exc}") from exc


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.gates",
        description="CI benchmark gates (see module docstring)")
    parser.add_argument("baseline", nargs="?",
                        help="committed BENCH_headline.json")
    parser.add_argument("fresh", nargs="?",
                        help="freshly generated BENCH_fresh.json")
    parser.add_argument("--loadgen", metavar="REPORT",
                        help="gate a LOADGEN_report.json instead")
    parser.add_argument("--p99-max", type=float, default=LOADGEN_P99_MAX_S,
                        help="loadgen p99 ceiling in seconds "
                             "(default %(default)s)")
    args = parser.parse_args(argv)

    try:
        if args.loadgen:
            if args.baseline or args.fresh:
                parser.error("--loadgen does not take baseline/fresh")
            gate_loadgen(_load(args.loadgen), p99_max_s=args.p99_max)
        else:
            if not (args.baseline and args.fresh):
                parser.error("need BASELINE and FRESH report paths "
                             "(or --loadgen REPORT)")
            run_bench_gates(_load(args.baseline), _load(args.fresh))
    except GateFailure as exc:
        print(f"GATE FAILED: {exc}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
