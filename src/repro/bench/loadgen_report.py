"""Rendering and validation for ``LOADGEN_report.json``.

:func:`render_html` turns a loadgen report into a single self-contained
HTML file — inline SVG polyline charts, no JavaScript, no external assets
— so the CI artifact opens anywhere.  :func:`validate_report` is the
hand-rolled schema check the ``loadgen-smoke`` gate runs (no jsonschema
dependency): it returns a list of human-readable problems, empty when the
document conforms.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: the report schema this module understands
SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------

def _check(problems: List[str], doc: Dict[str, Any], path: str, key: str,
           types: Tuple[type, ...], required: bool = True) -> Any:
    if key not in doc:
        if required:
            problems.append(f"{path}.{key}: missing")
        return None
    value = doc[key]
    if not isinstance(value, types):
        names = "/".join(t.__name__ for t in types)
        problems.append(f"{path}.{key}: expected {names}, "
                        f"got {type(value).__name__}")
        return None
    return value


def validate_report(doc: Any) -> List[str]:
    """All the ways ``doc`` fails to be a valid loadgen report."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"report: expected object, got {type(doc).__name__}"]
    schema = _check(problems, doc, "report", "schema", (int,))
    if schema is not None and schema != SCHEMA_VERSION:
        problems.append(f"report.schema: expected {SCHEMA_VERSION}, "
                        f"got {schema}")
    kind = _check(problems, doc, "report", "kind", (str,))
    if kind is not None and kind != "loadgen":
        problems.append(f"report.kind: expected 'loadgen', got {kind!r}")
    _check(problems, doc, "report", "config", (dict,))
    _check(problems, doc, "report", "duration_s", (int, float))
    _check(problems, doc, "report", "generators", (list,))
    _check(problems, doc, "report", "server", (dict,))

    totals = _check(problems, doc, "report", "totals", (dict,))
    if totals is not None:
        for key in ("requests", "errors", "shed"):
            value = _check(problems, totals, "totals", key, (int,))
            if value is not None and value < 0:
                problems.append(f"totals.{key}: negative ({value})")
        _check(problems, totals, "totals", "rps", (int, float))
        retries = _check(problems, totals, "totals", "retries", (int,),
                         required=False)
        if retries is not None and retries < 0:
            problems.append(f"totals.retries: negative ({retries})")
        by_reason = _check(problems, totals, "totals", "shed_by_reason",
                           (dict,), required=False)
        if by_reason is not None:
            for reason, count in by_reason.items():
                if not isinstance(count, int) or count < 0:
                    problems.append(
                        f"totals.shed_by_reason[{reason!r}]: expected "
                        f"non-negative int, got {count!r}")
            if "shed" in totals and isinstance(totals["shed"], int) \
                    and all(isinstance(c, int)
                            for c in by_reason.values()) \
                    and sum(by_reason.values()) != totals["shed"]:
                problems.append(
                    f"totals.shed_by_reason: reasons sum "
                    f"{sum(by_reason.values())} != totals.shed "
                    f"{totals['shed']}")
        by_kind = _check(problems, totals, "totals", "by_kind", (dict,))
        if by_kind is not None:
            for kind_name, entry in by_kind.items():
                if not isinstance(entry, dict):
                    problems.append(f"totals.by_kind.{kind_name}: "
                                    "expected object")
                    continue
                for key in ("requests", "errors", "shed"):
                    _check(problems, entry,
                           f"totals.by_kind.{kind_name}", key, (int,))
                _check(problems, entry, f"totals.by_kind.{kind_name}",
                       "retries", (int,), required=False)
                _check(problems, entry, f"totals.by_kind.{kind_name}",
                       "shed_by_reason", (dict,), required=False)

    latency = _check(problems, doc, "report", "latency", (dict,))
    if latency is not None:
        overall = _check(problems, latency, "latency", "overall", (dict,))
        if overall is not None:
            for key in ("count", "p50_s", "p95_s", "p99_s", "max_s"):
                _check(problems, overall, "latency.overall", key,
                       (int, float))
            if not problems:
                if not (overall["p50_s"] <= overall["p95_s"]
                        <= overall["p99_s"]):
                    problems.append(
                        "latency.overall: percentiles not monotonic "
                        f"(p50={overall['p50_s']}, p95={overall['p95_s']},"
                        f" p99={overall['p99_s']})")
        _check(problems, latency, "latency", "by_kind", (dict,))

    series = _check(problems, doc, "report", "per_second", (list,))
    if series is not None:
        for index, row in enumerate(series):
            if not isinstance(row, dict):
                problems.append(f"per_second[{index}]: expected object")
                continue
            for key in ("t", "requests", "errors", "shed",
                        "p50_s", "p95_s", "p99_s"):
                _check(problems, row, f"per_second[{index}]", key,
                       (int, float))
    if totals is not None and series and not problems:
        summed = sum(row["requests"] for row in series)
        if summed != totals["requests"]:
            problems.append(
                f"per_second: requests sum {summed} != totals.requests "
                f"{totals['requests']}")
    return problems


# ----------------------------------------------------------------------
# HTML rendering (inline SVG, zero dependencies)
# ----------------------------------------------------------------------

_WIDTH, _HEIGHT, _PAD = 640, 180, 36

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
       max-width: 60em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.5em 0; }
td, th { border: 1px solid #ccc; padding: 0.25em 0.7em; text-align: right; }
th { background: #f2f2f2; } td:first-child, th:first-child
{ text-align: left; }
svg { background: #fafafa; border: 1px solid #ddd; }
.legend span { margin-right: 1.2em; font-size: 0.85em; }
.swatch { display: inline-block; width: 0.8em; height: 0.8em;
          margin-right: 0.3em; vertical-align: -0.05em; }
"""

_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd")


def _polyline(points: Sequence[Tuple[float, float]], xmax: float,
              ymax: float, color: str) -> str:
    if not points or xmax <= 0 or ymax <= 0:
        return ""
    inner_w = _WIDTH - 2 * _PAD
    inner_h = _HEIGHT - 2 * _PAD
    coords = " ".join(
        f"{_PAD + x / xmax * inner_w:.1f},"
        f"{_HEIGHT - _PAD - min(y, ymax) / ymax * inner_h:.1f}"
        for x, y in points)
    return (f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
            f'points="{coords}"/>')


def _fmt_tick(value: float) -> str:
    if value >= 1000:
        return f"{value / 1000:.3g}k"
    if value >= 1:
        return f"{value:.3g}"
    return f"{value:.2g}"


def _chart(title: str, series: Dict[str, List[Tuple[float, float]]],
           unit: str = "") -> str:
    """One SVG line chart; ``series`` maps legend label -> (x, y) points."""
    xmax = max((x for pts in series.values() for x, _ in pts), default=0.0)
    ymax = max((y for pts in series.values() for _, y in pts), default=0.0)
    xmax = max(xmax, 1e-9)
    ymax = max(ymax * 1.05, 1e-9)
    lines = [f"<h2>{html.escape(title)}</h2>"]
    legend = []
    body = []
    for (label, points), color in zip(series.items(), _COLORS):
        body.append(_polyline(points, xmax, ymax, color))
        legend.append(f'<span><span class="swatch" '
                      f'style="background:{color}"></span>'
                      f'{html.escape(label)}</span>')
    axes = (
        f'<line x1="{_PAD}" y1="{_HEIGHT - _PAD}" x2="{_WIDTH - _PAD}" '
        f'y2="{_HEIGHT - _PAD}" stroke="#999"/>'
        f'<line x1="{_PAD}" y1="{_PAD}" x2="{_PAD}" '
        f'y2="{_HEIGHT - _PAD}" stroke="#999"/>'
        f'<text x="{_PAD}" y="{_HEIGHT - _PAD + 14}" font-size="10" '
        f'fill="#666">0</text>'
        f'<text x="{_WIDTH - _PAD}" y="{_HEIGHT - _PAD + 14}" '
        f'font-size="10" fill="#666" text-anchor="end">'
        f'{_fmt_tick(xmax)}s</text>'
        f'<text x="{_PAD - 4}" y="{_PAD + 4}" font-size="10" fill="#666" '
        f'text-anchor="end">{_fmt_tick(ymax)}{html.escape(unit)}</text>')
    lines.append(f'<div class="legend">{"".join(legend)}</div>')
    lines.append(f'<svg width="{_WIDTH}" height="{_HEIGHT}" '
                 f'viewBox="0 0 {_WIDTH} {_HEIGHT}">{axes}'
                 f'{"".join(body)}</svg>')
    return "\n".join(lines)


def _summary_table(report: Dict[str, Any]) -> str:
    totals = report["totals"]
    rows = [
        "<table><tr><th>kind</th><th>requests</th><th>errors</th>"
        "<th>shed</th><th>retries</th><th>p50 ms</th><th>p95 ms</th>"
        "<th>p99 ms</th><th>max ms</th></tr>"]
    by_kind_latency = report["latency"].get("by_kind", {})
    for kind, entry in sorted(totals.get("by_kind", {}).items()):
        if not entry["requests"] and not entry["errors"] \
                and not entry["shed"]:
            continue
        lat = by_kind_latency.get(kind)
        cells = [html.escape(kind), str(entry["requests"]),
                 str(entry["errors"]), str(entry["shed"]),
                 str(entry.get("retries", 0))]
        if lat:
            cells.extend(f"{lat[key] * 1e3:.2f}"
                         for key in ("p50_s", "p95_s", "p99_s", "max_s"))
        else:
            cells.extend("-" for _ in range(4))
        rows.append("<tr><td>" + "</td><td>".join(cells) + "</td></tr>")
    overall = report["latency"]["overall"]
    rows.append(
        "<tr><th>total</th><th>{requests}</th><th>{errors}</th>"
        "<th>{shed}</th><th>{retries}</th><th>{p50:.2f}</th>"
        "<th>{p95:.2f}</th><th>{p99:.2f}</th><th>{mx:.2f}</th></tr>".format(
            requests=totals["requests"], errors=totals["errors"],
            shed=totals["shed"], retries=totals.get("retries", 0),
            p50=overall["p50_s"] * 1e3,
            p95=overall["p95_s"] * 1e3, p99=overall["p99_s"] * 1e3,
            mx=overall["max_s"] * 1e3))
    rows.append("</table>")
    return "".join(rows)


def _shed_reason_table(totals: Dict[str, Any]) -> str:
    """503 breakdown by the server's ``X-Shed-Reason`` header."""
    by_reason = totals.get("shed_by_reason") or {}
    if not by_reason:
        return ""
    rows = ["<h2>Shed breakdown (X-Shed-Reason)</h2>",
            "<table><tr><th>reason</th><th>count</th></tr>"]
    for reason, count in sorted(by_reason.items()):
        rows.append(f"<tr><td>{html.escape(str(reason))}</td>"
                    f"<td>{count}</td></tr>")
    rows.append("</table>")
    return "".join(rows)


def _delta_table(delta: Optional[Dict[str, float]]) -> str:
    if not delta:
        return "<p>(no /metrics scrape available)</p>"
    rows = ["<table><tr><th>metric</th><th>delta over run</th></tr>"]
    for name, value in sorted(delta.items()):
        rows.append(f"<tr><td><code>{html.escape(name)}</code></td>"
                    f"<td>{value:g}</td></tr>")
    rows.append("</table>")
    return "".join(rows)


def render_html(report: Dict[str, Any]) -> str:
    """The self-contained HTML report for one loadgen run."""
    config = report.get("config", {})
    server = report.get("server", {})
    series = report.get("per_second", [])
    rps_pts = [(row["t"], float(row["requests"])) for row in series]
    err_pts = [(row["t"], float(row["errors"] + row["shed"]))
               for row in series]
    lat = {
        "p50": [(row["t"], row["p50_s"] * 1e3) for row in series],
        "p95": [(row["t"], row["p95_s"] * 1e3) for row in series],
        "p99": [(row["t"], row["p99_s"] * 1e3) for row in series],
    }
    charts = [
        _chart("Throughput (requests per second)",
               {"requests/s": rps_pts, "errors+shed/s": err_pts}),
        _chart("Latency percentiles (ms)", lat, unit="ms"),
    ]
    rss_pts = [(row["t"], row["rss_kb"] / 1024.0)
               for row in series if "rss_kb" in row]
    cpu_pts = [(row["t"], row["cpu_pct"])
               for row in series if "cpu_pct" in row]
    if rss_pts:
        charts.append(_chart("Server RSS (MiB)", {"rss": rss_pts},
                             unit="MiB"))
    if cpu_pts:
        charts.append(_chart("Server CPU (%)", {"cpu": cpu_pts},
                             unit="%"))
    shape = server.get("shape", "?")
    title = (f"loadgen: {config.get('profile', '?')} profile vs "
             f"{shape} server")
    induced = server.get("induced_requests")
    induced_line = ""
    if induced is not None:
        induced_line = (
            f"<p>Server-side <code>"
            f"{html.escape(str(server.get('induced_counter')))}</code> "
            f"delta over the run: <b>{induced:g}</b> (report counted "
            f"{report['totals']['requests']} completed requests).</p>")
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p>{config.get('generators', '?')} generator processes × "
        f"{config.get('concurrency', '?')} threads, "
        f"{html.escape(str(config.get('mode', '?')))}-loop, "
        f"{report.get('duration_s', '?')}s window"
        + (f", {server.get('workers')} fleet workers"
           if shape == "fleet" else "") + ".</p>",
        _summary_table(report),
        _shed_reason_table(report.get("totals", {})),
        induced_line,
        *charts,
        "<h2>Server /metrics delta</h2>",
        _delta_table(server.get("metrics_delta")),
        "</body></html>",
    ]
    return "\n".join(parts)
