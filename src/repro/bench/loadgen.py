"""Distributed load-generation harness (``python -m repro.bench.loadgen``).

``repro.bench.regress`` is a single-process loopback probe: fine for
regression ratios, structurally unable to say how the serving stack
behaves under sustained, mixed, multi-core load.  This module is the
standing judgment instrument the ROADMAP calls for:

* a coordinator forks N **generator processes** (fork start method — the
  same pattern as ``regress._drive_clients`` — so load generation is
  never GIL-bound against the server under test), each running
  ``concurrency`` client threads;
* every thread drives a configurable **traffic mix**: binary SOAP-bin
  calls over keep-alive, XML SOAP calls, depth-k pipelined
  ``call_many()`` batches, and multi-megabyte ``largemsg`` record
  streams over the reactor's chunked stream routes, with a
  **cache-hit-ratio knob** (``value_pool``
  — how many distinct request values circulate; 1 means every request is
  identical and the server's content-addressed cache converges to all
  hits);
* arrivals are **closed-loop** (each thread back-to-back, concurrency-
  bound) or **open-loop** (a target aggregate RPS with Poisson or uniform
  inter-arrival times, so the harness keeps offering load while the
  server queues);
* the server under test is any of the three shapes — ``threaded``,
  ``reactor``, a prefork ``fleet`` — built in-process with admission
  control and load-coupled quality, or an ``external`` address;
* the coordinator samples server-side **RSS + CPU from /proc** once a
  second, scrapes ``/metrics`` before and after the measurement window
  (so the report can assert the induced load against the server's own
  counters), and folds the generators' per-second
  :class:`~repro.bench.timers.LogHistogram` buckets into
  ``LOADGEN_report.json`` plus a self-contained HTML report with
  time-series charts (:mod:`repro.bench.loadgen_report`).

Latency percentiles are bucketed, not sampled: every observation lands
in a mergeable log-spaced histogram, so p50/p95/p99 are exact to bucket
resolution (~±10%) regardless of how many million calls the run makes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from dataclasses import dataclass, field, asdict
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..pbio import WIRE_MODES, Format, FormatRegistry
from .timers import LogHistogram

SCHEMA_VERSION = 1

KINDS = ("binary", "xml", "pipelined", "extract", "largemsg")
SERVER_SHAPES = ("threaded", "reactor", "fleet", "external")
ARRIVALS = ("poisson", "uniform")
MODES = ("closed", "open")

#: The echo workload: full-fidelity and load-degraded reply formats.
ECHO_REQUEST = Format.from_dict(
    "LoadEcho", {"seq": "int32", "payload": "float64[]"})
ECHO_REPLY = ECHO_REQUEST
ECHO_REPLY_LITE = Format.from_dict("LoadEchoLite", {"seq": "int32"})

#: Server-load-coupled quality policy: above the threshold the reply
#: drops its payload field, so a saturating profile produces visible
#: quality transitions (``repro_quality_switches_total``).
QUALITY_FILE = """
attribute server_load
history 2
0.0 0.85 - LoadEcho
0.85 inf - LoadEchoLite
"""

#: The large-message workload: PBIO record streams pushed through the
#: reactor's chunked stream route and echoed back record by record, so
#: multi-megabyte requests never materialize whole on the server.
STREAM_ROUTE = "/stream"
STREAM_RECORD = Format.from_dict(
    "LoadStreamRecord", {"seq": "int32", "data": "float64[]"})


def _stream_registry() -> FormatRegistry:
    registry = FormatRegistry()
    registry.register(STREAM_RECORD)
    return registry


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------

@dataclass
class LoadgenConfig:
    """Everything one run needs; JSON-serialized into the report."""

    profile: str = "mixed"
    #: traffic mix weights by kind (normalized at use)
    mix: Dict[str, float] = field(
        default_factory=lambda: {"binary": 0.5, "xml": 0.25,
                                 "pipelined": 0.25})
    duration_s: float = 10.0
    #: forked generator processes
    generators: int = 2
    #: client threads per generator
    concurrency: int = 4
    #: "closed" (back-to-back) or "open" (target-RPS arrivals)
    mode: str = "closed"
    #: aggregate target requests/s for open-loop mode
    rps: float = 500.0
    arrivals: str = "poisson"
    #: pipeline depth for the pipelined kind
    depth: int = 8
    #: sub-calls per call_many batch
    batch: int = 16
    #: distinct request values in circulation (1 = max cache hits)
    value_pool: int = 8
    payload_elements: int = 256
    #: server under test: threaded/reactor/fleet (in-process) or external
    server: str = "reactor"
    #: worker processes for the fleet shape
    workers: int = 2
    #: "host:port" when server == "external"
    target: Optional[str] = None
    #: admission sizing for the in-process server
    admission_concurrency: int = 8
    admission_queue: int = 32
    #: per-call retry budget (1 = never retry); >1 wraps the binary/xml/
    #: extract kinds in call_with_policy so CallMeta retry counts land
    #: in the report
    retry_attempts: int = 1
    #: dataset records served by the extract kind's server
    extract_records: int = 20_000
    #: wire representation for both sides: auto (negotiate), native,
    #: or compact
    wire: str = "auto"
    #: bytes streamed per largemsg request (before framing overhead)
    largemsg_bytes: int = 4 << 20
    #: float64 elements per streamed record (~8 bytes each)
    largemsg_record_elements: int = 16_384
    seed: int = 1

    def validate(self) -> None:
        if self.server not in SERVER_SHAPES:
            raise ValueError(f"server must be one of {SERVER_SHAPES}")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        if self.arrivals not in ARRIVALS:
            raise ValueError(f"arrivals must be one of {ARRIVALS}")
        if self.wire not in WIRE_MODES:
            raise ValueError(f"wire must be one of {WIRE_MODES}")
        if self.server == "external" and not self.target:
            raise ValueError("server='external' requires target='host:port'")
        unknown = set(self.mix) - set(KINDS)
        if unknown:
            raise ValueError(f"unknown mix kinds {sorted(unknown)}; "
                             f"choose from {KINDS}")
        if not any(w > 0 for w in self.mix.values()):
            raise ValueError("mix needs at least one positive weight")
        for name in ("duration_s", "generators", "concurrency", "depth",
                     "batch", "value_pool", "payload_elements", "workers",
                     "retry_attempts", "extract_records", "largemsg_bytes",
                     "largemsg_record_elements"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.mix.get("extract", 0) > 0 and any(
                w > 0 for k, w in self.mix.items() if k != "extract"):
            raise ValueError(
                "the extract kind hosts a different service than the "
                "echo kinds and cannot be mixed with them")
        if self.mix.get("largemsg", 0) > 0:
            if any(w > 0 for k, w in self.mix.items() if k != "largemsg"):
                raise ValueError(
                    "the largemsg kind drives a chunked stream route, "
                    "not the echo endpoint, and cannot be mixed with "
                    "other kinds")
            if self.server not in ("reactor", "external"):
                raise ValueError(
                    "the largemsg kind needs incremental stream routes; "
                    "only the reactor shape (or an external reactor) "
                    "serves them")


#: Built-in traffic profiles (overridable field by field via the CLI).
PROFILES: Dict[str, Dict[str, Any]] = {
    "mixed": {"mix": {"binary": 0.5, "xml": 0.25, "pipelined": 0.25}},
    "binary": {"mix": {"binary": 1.0}},
    "xml": {"mix": {"xml": 1.0}},
    "pipelined": {"mix": {"pipelined": 1.0}},
    # every request identical: the content-addressed cache tier converges
    # to all hits, so cache_hits dominates the metrics delta
    "cachehit": {"mix": {"binary": 1.0}, "value_pool": 1},
    # tiny admission pool + aggressive closed-loop concurrency: drives
    # composite load past the quality threshold so shed counters and
    # quality transitions become visible (binary-only: degraded XML
    # replies are exercised by tier-1 tests, not under overload here)
    "saturate": {"mix": {"binary": 1.0}, "concurrency": 16,
                 "admission_concurrency": 2, "admission_queue": 4,
                 "payload_elements": 2048},
    # the resumable-extraction workload: every thread runs a paginated
    # ETL job against an ExtractService; retries are on so shed pages
    # exercise the dedup window and CallMeta retry counts flow into the
    # report
    "extract": {"mix": {"extract": 1.0}, "retry_attempts": 3},
    # the constant-memory large-message path: every request streams a
    # multi-megabyte PBIO record stream through the reactor's chunked
    # stream route and reads the echo back frame by frame, so the
    # report's RSS series stays flat while streamed-bytes counters climb
    "largemsg": {"mix": {"largemsg": 1.0}, "server": "reactor",
                 "concurrency": 2},
}


def config_for_profile(profile: str, **overrides: Any) -> LoadgenConfig:
    """A :class:`LoadgenConfig` for a named profile plus overrides."""
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; choose from "
                         f"{sorted(PROFILES)}")
    merged: Dict[str, Any] = {"profile": profile}
    merged.update(PROFILES[profile])
    merged.update({k: v for k, v in overrides.items() if v is not None})
    cfg = LoadgenConfig(**merged)
    cfg.validate()
    return cfg


# ----------------------------------------------------------------------
# the server under test
# ----------------------------------------------------------------------

def _build_echo_service(wire: str = "auto"):
    """A quality-managed SOAP-bin echo service for the harness.

    The echo handler returns the request value unchanged, so requests
    drawn from a small ``value_pool`` produce identical responses and the
    content-addressed cache tier can win; the ``server_load`` policy
    degrades the reply format under saturation.
    """
    from ..core import SoapBinService
    registry = FormatRegistry()
    registry.register(ECHO_REQUEST)
    registry.register(ECHO_REPLY_LITE)
    service = SoapBinService(registry, quality_text=QUALITY_FILE,
                             wire=wire)
    service.add_operation("Echo", ECHO_REQUEST, ECHO_REPLY,
                          lambda params: params)
    return service


def _build_app_service(cfg: LoadgenConfig):
    """The service under test plus its ``quality_stats`` hook.

    Echo by default; the extraction app when the mix drives the
    ``extract`` kind (which is why ``validate`` keeps the two exclusive —
    they speak different format sets).
    """
    if cfg.mix.get("extract", 0) > 0:
        from ..apps.extract import ExtractService
        app = ExtractService(total=cfg.extract_records, wire=cfg.wire)
        return app.service, app.quality_stats
    service = _build_echo_service(cfg.wire)
    return service, service.quality_stats


def _protection(cfg: LoadgenConfig, quality, fleet_view=None):
    from ..serving import AdmissionController, LoadQualityCoupling
    admission = AdmissionController(
        max_concurrency=cfg.admission_concurrency,
        queue_limit=cfg.admission_queue)
    coupling = LoadQualityCoupling(quality, admission,
                                   fleet_view=fleet_view)
    return admission, coupling


class _ServerUnderTest:
    """One of the three in-process server shapes, or an external target.

    Owns everything the coordinator needs afterwards: the app address,
    the scrape address (+ path semantics are identical), and the pids to
    sample from ``/proc``.
    """

    def __init__(self, cfg: LoadgenConfig, port: int = 0) -> None:
        self.cfg = cfg
        self.shape = cfg.server
        self._server = None
        self._fleet = None
        if self.shape == "external":
            host, _, target_port = cfg.target.rpartition(":")
            self.address: Tuple[str, int] = (host or "127.0.0.1",
                                             int(target_port))
            self.scrape_address = self.address
            return
        if self.shape == "fleet":
            from ..serving import FleetServer
            from ..transport import endpoint_http_handler

            def factory(ctx):
                # runs in the forked worker: fresh service per process
                service, quality_stats = _build_app_service(cfg)
                admission, coupling = _protection(
                    cfg, service.quality, fleet_view=ctx.fleet_view)
                return (endpoint_http_handler(service.endpoint),
                        {"admission": admission, "load_coupling": coupling,
                         "quality_stats": quality_stats})

            self._fleet = FleetServer(factory, workers=cfg.workers,
                                      port=port)
            if not self._fleet.wait_ready(20.0):
                self._fleet.close()
                raise RuntimeError("fleet workers never became ready")
            self.address = self._fleet.address
            self.scrape_address = self._fleet.control_address
            return
        from ..transport import serve_endpoint
        service, quality_stats = _build_app_service(cfg)
        admission, coupling = _protection(cfg, service.quality)
        server_kwargs: Dict[str, Any] = {}
        if cfg.mix.get("largemsg", 0) > 0:
            from ..pbio import pbio_stream_route
            server_kwargs["stream_routes"] = {
                STREAM_ROUTE: pbio_stream_route(_stream_registry(),
                                                wire=cfg.wire)}
        self._server = serve_endpoint(
            service.endpoint, concurrency=self.shape, port=port,
            admission=admission, load_coupling=coupling,
            quality_stats=quality_stats, backlog=512, **server_kwargs)
        self.address = self._server.address
        self.scrape_address = self.address

    def pids(self) -> List[int]:
        if self.shape == "external":
            return []
        if self._fleet is not None:
            return [pid for pid in self._fleet.worker_pids()
                    if pid is not None]
        return [os.getpid()]

    #: metric whose before/after delta counts the app requests the run
    #: pushed through admission (fleet publishes served, not admitted)
    @property
    def induced_counter(self) -> str:
        if self._fleet is not None:
            return "repro_fleet_requests_served_total"
        if self.cfg.mix.get("largemsg", 0) > 0:
            # stream routes run on the reactor thread, outside admission
            return "repro_http_chunked_requests_total"
        return "repro_admission_admitted_total"

    def scrape(self) -> Optional[Dict[str, float]]:
        from ..http11 import HttpConnection
        from ..serving.metrics import parse_exposition
        try:
            with HttpConnection(self.scrape_address, timeout=10.0) as conn:
                response = conn.get("/metrics")
            if response.status != 200:
                return None
            return parse_exposition(response.body.decode("utf-8"))
        except Exception:  # noqa: BLE001 - external targets may lack it
            return None

    def close(self) -> None:
        if self._fleet is not None:
            self._fleet.close()
        if self._server is not None:
            self._server.close()


# ----------------------------------------------------------------------
# /proc sampling (server-side RSS + CPU)
# ----------------------------------------------------------------------

def _proc_rss_kb(pid: int) -> int:
    try:
        with open(f"/proc/{pid}/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def _proc_cpu_ticks(pid: int) -> int:
    """utime+stime clock ticks (fields 14/15 of ``/proc/<pid>/stat``)."""
    try:
        with open(f"/proc/{pid}/stat") as fh:
            raw = fh.read()
        # the comm field may contain spaces/parens; split after it
        fields = raw.rsplit(")", 1)[1].split()
        return int(fields[11]) + int(fields[12])
    except (OSError, IndexError, ValueError):
        return 0


class _ProcSampler(threading.Thread):
    """Samples RSS and CPU% of the server pids once per second."""

    def __init__(self, pids: List[int]) -> None:
        super().__init__(name="loadgen-proc-sampler", daemon=True)
        self.pids = pids
        self.samples: List[Dict[str, float]] = []
        self._halt = threading.Event()
        try:
            self._clk_tck = os.sysconf("SC_CLK_TCK")
        except (ValueError, OSError, AttributeError):
            self._clk_tck = 100

    def run(self) -> None:
        if not self.pids:
            return
        start = time.monotonic()
        last_t = start
        last_ticks = sum(_proc_cpu_ticks(pid) for pid in self.pids)
        while not self._halt.wait(1.0):
            now = time.monotonic()
            ticks = sum(_proc_cpu_ticks(pid) for pid in self.pids)
            dt = max(1e-9, now - last_t)
            cpu_pct = ((ticks - last_ticks) / self._clk_tck) / dt * 100.0
            self.samples.append({
                "t": round(now - start, 3),
                "rss_kb": sum(_proc_rss_kb(pid) for pid in self.pids),
                "cpu_pct": round(max(0.0, cpu_pct), 2),
            })
            last_t, last_ticks = now, ticks

    def stop(self) -> List[Dict[str, float]]:
        self._halt.set()
        if self.is_alive():
            self.join(timeout=5.0)
        return self.samples


# ----------------------------------------------------------------------
# generator process
# ----------------------------------------------------------------------

class SheddedError(Exception):
    """Raised by the XML status channel when the server answers 503."""

    def __init__(self, reason: str) -> None:
        super().__init__(f"shed: {reason}")
        self.reason = reason


class _XmlStatusChannel:
    """HttpChannel wrapper turning 503 replies into typed shed errors.

    ``SoapClient`` parses every reply body as XML; a 503 shed reply is
    plain text and would surface as an opaque parse error.  Raising here,
    at the channel boundary, keeps the generator's shed/error
    classification exact for the XML kind too.
    """

    def __init__(self, channel) -> None:
        self._channel = channel

    def call(self, body, content_type, headers=None):
        reply = self._channel.call(body, content_type, headers)
        if reply.status == 503:
            raise SheddedError(
                reply.headers.get("X-Shed-Reason", "overloaded"))
        return reply

    def close(self) -> None:
        self._channel.close()


def _exc_chain(exc: BaseException):
    seen = set()
    current: Optional[BaseException] = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        yield current
        current = current.__cause__


def _is_shed(exc: BaseException) -> bool:
    for err in _exc_chain(exc):
        if isinstance(err, SheddedError):
            return True
        text = str(err)
        if "status 503" in text or "overloaded" in text \
                or "shed:" in text:
            return True
    return False


def _shed_reason(exc: BaseException) -> str:
    """The server's ``X-Shed-Reason``, recovered from the error shape.

    The XML channel carries it verbatim on :class:`SheddedError`; the
    binary kinds see the 503 *body* (``overloaded: <reason>``) quoted
    inside the protocol error text, so the reason is parsed back out of
    it.  Anything else — e.g. an injected 503 with a different body —
    classifies as ``unknown`` rather than being dropped.
    """
    for err in _exc_chain(exc):
        if isinstance(err, SheddedError):
            return err.reason
        text = str(err)
        if "overloaded:" in text:
            tail = text.split("overloaded:", 1)[1].strip()
            if tail:
                return tail.split()[0].strip(",.;")
    return "unknown"


class _Recorder:
    """Per-thread run ledger: totals and per-second histogram buckets."""

    def __init__(self) -> None:
        self.by_kind: Dict[str, Dict[str, Any]] = {
            kind: {"requests": 0, "errors": 0, "shed": 0, "retries": 0,
                   "streamed_bytes": 0, "shed_by_reason": {},
                   "hist": LogHistogram(), "max_s": 0.0}
            for kind in KINDS}
        self.seconds: Dict[int, Dict[str, Any]] = {}

    def _second(self, t_rel: float) -> Dict[str, Any]:
        key = int(t_rel)
        bucket = self.seconds.get(key)
        if bucket is None:
            bucket = self.seconds[key] = {
                "requests": 0, "errors": 0, "shed": 0,
                "hist": LogHistogram()}
        return bucket

    def ok(self, kind: str, t_rel: float, latency_s: float,
           count: int = 1, retries: int = 0,
           streamed_bytes: int = 0) -> None:
        entry = self.by_kind[kind]
        entry["requests"] += count
        entry["retries"] += retries
        entry["streamed_bytes"] += streamed_bytes
        entry["max_s"] = max(entry["max_s"], latency_s)
        bucket = self._second(t_rel)
        bucket["requests"] += count
        for _ in range(count):
            entry["hist"].record(latency_s)
            bucket["hist"].record(latency_s)

    def failed(self, kind: str, t_rel: float, shed: bool,
               count: int = 1, reason: Optional[str] = None,
               retries: int = 0) -> None:
        key = "shed" if shed else "errors"
        entry = self.by_kind[kind]
        entry[key] += count
        entry["retries"] += retries
        if shed:
            reason = reason or "unknown"
            by_reason = entry["shed_by_reason"]
            by_reason[reason] = by_reason.get(reason, 0) + count
        self._second(t_rel)[key] += count

    def merge(self, other: "_Recorder") -> None:
        for kind, entry in other.by_kind.items():
            mine = self.by_kind[kind]
            mine["requests"] += entry["requests"]
            mine["errors"] += entry["errors"]
            mine["shed"] += entry["shed"]
            mine["retries"] += entry["retries"]
            mine["streamed_bytes"] += entry["streamed_bytes"]
            for reason, count in entry["shed_by_reason"].items():
                mine["shed_by_reason"][reason] = \
                    mine["shed_by_reason"].get(reason, 0) + count
            mine["max_s"] = max(mine["max_s"], entry["max_s"])
            mine["hist"].merge(entry["hist"])
        for key, bucket in other.seconds.items():
            if key in self.seconds:
                mine = self.seconds[key]
                mine["requests"] += bucket["requests"]
                mine["errors"] += bucket["errors"]
                mine["shed"] += bucket["shed"]
                mine["hist"].merge(bucket["hist"])
            else:
                self.seconds[key] = bucket

    def to_dict(self) -> Dict[str, Any]:
        return {
            "by_kind": {
                kind: {"requests": e["requests"], "errors": e["errors"],
                       "shed": e["shed"], "retries": e["retries"],
                       "streamed_bytes": e["streamed_bytes"],
                       "shed_by_reason": dict(e["shed_by_reason"]),
                       "max_s": e["max_s"],
                       "hist": e["hist"].to_dict()}
                for kind, e in self.by_kind.items()},
            "seconds": {
                str(key): {"requests": b["requests"],
                           "errors": b["errors"], "shed": b["shed"],
                           "hist": b["hist"].to_dict()}
                for key, b in self.seconds.items()},
        }


class _ClientSet:
    """One thread's clients, one per traffic kind actually in the mix."""

    def __init__(self, cfg: LoadgenConfig, address,
                 ident: str = "0-0") -> None:
        from ..core import SoapBinClient, XmlQualityClient
        from ..transport import HttpChannel, PipelinedHttpChannel
        self._channels: List[Any] = []
        self.binary = self.xml = self.pipelined = self.extract = None
        self.largemsg = None
        if cfg.mix.get("largemsg", 0) > 0:
            from ..http11 import HttpConnection
            from ..pbio import PbioSession
            self.largemsg = HttpConnection(address)
            self._channels.append(self.largemsg)
            registry = _stream_registry()
            # one send session and one sink session per thread: format
            # announcements prime on the first request and stay cached
            self._lm_session = PbioSession(registry, wire=cfg.wire)
            self._lm_sink_session = PbioSession(registry, wire=cfg.wire)
            record_bytes = cfg.largemsg_record_elements * 8
            self._lm_records = max(1, cfg.largemsg_bytes // record_bytes)
            self._lm_data = [float(i) % 97.0
                             for i in range(cfg.largemsg_record_elements)]
        if cfg.mix.get("extract", 0) > 0:
            from ..apps.extract import extract_formats
            from ..apps.extract_client import client_registry
            channel = HttpChannel(address)
            self._channels.append(channel)
            self.extract = SoapBinClient(channel, client_registry(),
                                         wire=cfg.wire)
            self._extract_formats = extract_formats()
            self._extract_ident = ident
            self._extract_lap = 0
            self._extract_job = f"loadgen-{ident}-lap0"
            self._extract_cursor = self._extract_cursor0 = None
        if cfg.mix.get("binary", 0) > 0:
            channel = HttpChannel(address)
            self._channels.append(channel)
            self.binary = SoapBinClient(channel, self._client_registry(),
                                        wire=cfg.wire)
        if cfg.mix.get("xml", 0) > 0:
            # XmlQualityClient understands the message-type header, so it
            # keeps decoding when a saturating run degrades the reply
            # format; the status wrapper makes 503 sheds typed instead of
            # surfacing as XML parse errors
            channel = _XmlStatusChannel(HttpChannel(address))
            self._channels.append(channel)
            self.xml = XmlQualityClient(channel, self._client_registry())
        if cfg.mix.get("pipelined", 0) > 0:
            channel = PipelinedHttpChannel(address, depth=cfg.depth)
            self._channels.append(channel)
            self.pipelined = SoapBinClient(channel,
                                           self._client_registry(),
                                           wire=cfg.wire)

    @staticmethod
    def _client_registry() -> FormatRegistry:
        registry = FormatRegistry()
        registry.register(ECHO_REQUEST)
        registry.register(ECHO_REPLY_LITE)
        return registry

    def warmup(self, values: List[Dict[str, Any]]) -> None:
        """Prime announcements and connections before the gun."""
        value = values[0]
        if self.binary is not None:
            self.binary.call("Echo", value, ECHO_REQUEST, ECHO_REPLY)
        if self.xml is not None:
            self.xml.call("Echo", value, ECHO_REQUEST, ECHO_REPLY)
        if self.pipelined is not None:
            self.pipelined.call_many("Echo", [value, value],
                                     ECHO_REQUEST, ECHO_REPLY)
        if self.largemsg is not None:
            self.largemsg_stream(records=1)
        if self.extract is not None:
            from ..apps.extract import DESCRIBE_OPERATION
            fmts = self._extract_formats
            described = self.extract.call(
                DESCRIBE_OPERATION,
                {"job_id": self._extract_job, "page_records": 0},
                fmts["ExtractDescribeRequest"],
                fmts["ExtractDescribeReply"])
            self._extract_cursor0 = described["cursor"]
            self._extract_cursor = described["cursor"]

    def extract_fetch(self) -> Dict[str, Any]:
        """One page of the thread's standing extraction job.

        The cursor only advances on success, so a retried attempt
        re-fetches the same page and exercises the server's dedup
        window; at EOF the job wraps back to the first cursor so a
        long run keeps offering load.
        """
        from ..apps.extract import FETCH_OPERATION, PAGE_FORMAT
        fmts = self._extract_formats
        page = self.extract.call(
            FETCH_OPERATION,
            {"job_id": self._extract_job, "cursor": self._extract_cursor,
             "max_records": 0},
            fmts["ExtractFetchRequest"], fmts[PAGE_FORMAT])
        next_cursor = page["next_cursor"]
        if next_cursor:
            self._extract_cursor = next_cursor
        else:
            # EOF: wrap into a *fresh* job so laps recompute pages
            # instead of replaying the whole previous lap out of the
            # dedup window (retries within a lap still replay)
            self._extract_lap += 1
            self._extract_job = (f"loadgen-{self._extract_ident}"
                                 f"-lap{self._extract_lap}")
            self._extract_cursor = self._extract_cursor0
        return page

    def largemsg_stream(self, records: Optional[int] = None) -> int:
        """One large-message request: push a PBIO record stream up the
        chunked route and drain the echoed stream frame by frame.

        Neither side ever holds the payload whole — the sender yields
        one frame at a time, the reader decodes per reply chunk.
        Returns the framed bytes sent, which is exactly what the
        server's ``streamed_bytes_in`` counter accounts.
        """
        from ..pbio import RecordStreamReader, iter_frames
        nrecords = self._lm_records if records is None else records
        sent = 0

        def produce():
            for seq in range(nrecords):
                yield STREAM_RECORD, {"seq": seq, "data": self._lm_data}

        def frames():
            nonlocal sent
            for frame in iter_frames(self._lm_session, produce()):
                sent += len(frame)
                yield frame

        response = self.largemsg.stream(
            STREAM_ROUTE, frames(),
            content_type="application/x-pbio-stream")
        if response.status != 200:
            body = response.read()
            raise RuntimeError(f"largemsg stream: status "
                               f"{response.status} {body[:80]!r}")
        sink = RecordStreamReader(self._lm_sink_session)
        echoed = 0
        for chunk in response.iter_chunks():
            echoed += len(sink.feed(chunk))
        sink.finish()
        if echoed != nrecords:
            raise RuntimeError(f"largemsg stream: {echoed}/{nrecords} "
                               "records echoed")
        return sent

    def close(self) -> None:
        for channel in self._channels:
            try:
                channel.close()
            except Exception:  # noqa: BLE001 - teardown
                pass


def _make_values(cfg: LoadgenConfig) -> List[Dict[str, Any]]:
    """The circulating request values.

    ``seq`` is the pool index, NOT a per-call counter: a request must be
    byte-identical on reuse for the server's content-addressed cache to
    see it again, which is the whole point of the ``value_pool`` knob.
    """
    import random
    rng = random.Random(cfg.seed)
    return [{"seq": i,
             "payload": [rng.random() for _ in range(cfg.payload_elements)]}
            for i in range(cfg.value_pool)]


def _generator_thread(cfg: LoadgenConfig, address, gen_index: int,
                      thread_index: int, warm_barrier: threading.Barrier,
                      start_evt, recorder: _Recorder,
                      failures: List[str]) -> None:
    import random
    rng = random.Random(cfg.seed * 1_000_003
                        + gen_index * 1009 + thread_index)
    values = _make_values(cfg)
    kinds = [k for k in KINDS if cfg.mix.get(k, 0) > 0]
    weights = [cfg.mix[k] for k in kinds]
    policy = None
    if cfg.retry_attempts > 1:
        from ..reliability import RetryPolicy
        policy = RetryPolicy(max_attempts=cfg.retry_attempts,
                             deadline_s=30.0,
                             backoff_initial_s=0.01,
                             backoff_max_s=0.25)
    clients = None
    try:
        clients = _ClientSet(cfg, address,
                             ident=f"{gen_index}-{thread_index}")
        clients.warmup(values)
    except Exception as exc:  # noqa: BLE001 - reported to coordinator
        failures.append(f"generator {gen_index} thread {thread_index} "
                        f"warmup failed: {exc!r}")
        if clients is not None:
            clients.close()
        clients = None
    finally:
        try:
            warm_barrier.wait(timeout=60.0)
        except threading.BrokenBarrierError:
            pass
    if clients is None:
        return
    start_evt.wait()
    start = time.perf_counter()
    deadline = start + cfg.duration_s
    # open-loop: this thread owns an equal slice of the aggregate RPS
    thread_rate = cfg.rps / (cfg.generators * cfg.concurrency)
    next_at = start
    consecutive_failures = 0
    try:
        while True:
            now = time.perf_counter()
            if now >= deadline:
                break
            if cfg.mode == "open":
                if cfg.arrivals == "poisson":
                    gap = rng.expovariate(thread_rate)
                else:
                    gap = 1.0 / thread_rate
                next_at = max(next_at + gap, now - 1.0)  # cap the backlog
                if next_at > now:
                    time.sleep(min(next_at - now, deadline - now))
                    now = time.perf_counter()
                    if now >= deadline:
                        break
            kind = rng.choices(kinds, weights)[0]
            t_rel = now - start
            if kind == "pipelined":
                batch = [values[rng.randrange(len(values))]
                         for _ in range(cfg.batch)]
                begun = time.perf_counter()
                results = clients.pipelined.call_many(
                    "Echo", batch, ECHO_REQUEST, ECHO_REPLY,
                    return_exceptions=True)
                per_call = (time.perf_counter() - begun) / len(batch)
                ok = err = 0
                shed_reasons: Dict[str, int] = {}
                for result in results:
                    if isinstance(result, BaseException):
                        if _is_shed(result):
                            reason = _shed_reason(result)
                            shed_reasons[reason] = \
                                shed_reasons.get(reason, 0) + 1
                        else:
                            err += 1
                    else:
                        ok += 1
                if ok:
                    recorder.ok(kind, t_rel, per_call, count=ok)
                for reason, count in shed_reasons.items():
                    recorder.failed(kind, t_rel, shed=True, count=count,
                                    reason=reason)
                if err:
                    recorder.failed(kind, t_rel, shed=False, count=err)
                consecutive_failures = 0 if ok else consecutive_failures + 1
            else:
                if kind == "extract":
                    attempt: Callable[[], Any] = clients.extract_fetch
                elif kind == "largemsg":
                    attempt = clients.largemsg_stream
                else:
                    value = values[rng.randrange(len(values))]
                    client = (clients.binary if kind == "binary"
                              else clients.xml)
                    attempt = (lambda c=client, v=value:
                               c.call("Echo", v, ECHO_REQUEST, ECHO_REPLY))
                begun = time.perf_counter()
                retries = 0
                result: Any = None
                try:
                    if policy is None:
                        result = attempt()
                    else:
                        from ..reliability import call_with_policy
                        result, meta = call_with_policy(attempt, policy,
                                                        idempotent=True)
                        retries = meta.attempts - 1
                except Exception as exc:  # noqa: BLE001 - classified
                    meta = getattr(exc, "meta", None)
                    if meta is not None:
                        retries = meta.attempts - 1
                    shed = _is_shed(exc)
                    recorder.failed(
                        kind, t_rel, shed=shed,
                        reason=_shed_reason(exc) if shed else None,
                        retries=retries)
                    consecutive_failures += 1
                else:
                    recorder.ok(kind, t_rel,
                                time.perf_counter() - begun,
                                retries=retries,
                                streamed_bytes=(result if kind == "largemsg"
                                                else 0))
                    consecutive_failures = 0
            if consecutive_failures >= 50:
                # server gone or breaker-grade failure: back off so a
                # dead target doesn't turn the run into a CPU-bound
                # error loop that drowns the report in noise
                time.sleep(0.05)
                consecutive_failures = 0
    finally:
        clients.close()


def _generator_main(cfg: LoadgenConfig, gen_index: int, address,
                    ready_q, start_evt, out_q) -> None:
    """Body of one forked generator process."""
    recorders = [_Recorder() for _ in range(cfg.concurrency)]
    failures: List[str] = []
    warm_barrier = threading.Barrier(cfg.concurrency + 1)
    threads = [
        threading.Thread(
            target=_generator_thread,
            args=(cfg, address, gen_index, i, warm_barrier, start_evt,
                  recorders[i], failures),
            name=f"loadgen-{gen_index}-{i}", daemon=True)
        for i in range(cfg.concurrency)]
    for thread in threads:
        thread.start()
    try:
        warm_barrier.wait(timeout=60.0)
    except threading.BrokenBarrierError:
        failures.append(f"generator {gen_index}: warmup barrier broke")
    ready_q.put(os.getpid())
    for thread in threads:
        thread.join(timeout=cfg.duration_s + 60.0)
    merged = _Recorder()
    for recorder in recorders:
        merged.merge(recorder)
    doc = merged.to_dict()
    doc["pid"] = os.getpid()
    doc["failures"] = failures
    out_q.put(doc)


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------

def _hist_summary(hist: LogHistogram, max_s: float = 0.0) -> Dict[str, Any]:
    return {"count": hist.total,
            "p50_s": hist.percentile(50.0),
            "p95_s": hist.percentile(95.0),
            "p99_s": hist.percentile(99.0),
            "max_s": max_s}


def _merge_generator_docs(docs: List[Dict[str, Any]],
                          duration_s: float) -> Dict[str, Any]:
    """Fold the per-generator ledgers into report totals + time series."""
    by_kind: Dict[str, Dict[str, Any]] = {
        kind: {"requests": 0, "errors": 0, "shed": 0, "retries": 0,
               "streamed_bytes": 0, "shed_by_reason": {},
               "hist": LogHistogram(), "max_s": 0.0}
        for kind in KINDS}
    seconds: Dict[int, Dict[str, Any]] = {}
    for doc in docs:
        for kind, entry in doc["by_kind"].items():
            mine = by_kind[kind]
            mine["requests"] += entry["requests"]
            mine["errors"] += entry["errors"]
            mine["shed"] += entry["shed"]
            mine["retries"] += entry.get("retries", 0)
            mine["streamed_bytes"] += entry.get("streamed_bytes", 0)
            for reason, count in entry.get("shed_by_reason", {}).items():
                mine["shed_by_reason"][reason] = \
                    mine["shed_by_reason"].get(reason, 0) + count
            mine["max_s"] = max(mine["max_s"], entry["max_s"])
            mine["hist"].merge(LogHistogram.from_dict(entry["hist"]))
        for key_s, bucket in doc["seconds"].items():
            key = int(key_s)
            mine = seconds.setdefault(
                key, {"requests": 0, "errors": 0, "shed": 0,
                      "hist": LogHistogram()})
            mine["requests"] += bucket["requests"]
            mine["errors"] += bucket["errors"]
            mine["shed"] += bucket["shed"]
            mine["hist"].merge(LogHistogram.from_dict(bucket["hist"]))
    overall = LogHistogram()
    overall_max = 0.0
    totals: Dict[str, Any] = {"requests": 0, "errors": 0, "shed": 0,
                              "retries": 0, "streamed_bytes": 0}
    shed_by_reason: Dict[str, int] = {}
    for entry in by_kind.values():
        totals["requests"] += entry["requests"]
        totals["errors"] += entry["errors"]
        totals["shed"] += entry["shed"]
        totals["retries"] += entry["retries"]
        totals["streamed_bytes"] += entry["streamed_bytes"]
        for reason, count in entry["shed_by_reason"].items():
            shed_by_reason[reason] = shed_by_reason.get(reason, 0) + count
        overall.merge(entry["hist"])
        overall_max = max(overall_max, entry["max_s"])
    totals["rps"] = totals["requests"] / duration_s if duration_s else 0.0
    totals["shed_by_reason"] = shed_by_reason
    totals["by_kind"] = {
        kind: {"requests": e["requests"], "errors": e["errors"],
               "shed": e["shed"], "retries": e["retries"],
               "streamed_bytes": e["streamed_bytes"],
               "shed_by_reason": dict(e["shed_by_reason"])}
        for kind, e in by_kind.items()}
    per_second = [
        {"t": key,
         "requests": seconds[key]["requests"],
         "errors": seconds[key]["errors"],
         "shed": seconds[key]["shed"],
         "p50_s": seconds[key]["hist"].percentile(50.0),
         "p95_s": seconds[key]["hist"].percentile(95.0),
         "p99_s": seconds[key]["hist"].percentile(99.0)}
        for key in sorted(seconds)]
    latency = {"overall": _hist_summary(overall, overall_max)}
    latency["by_kind"] = {
        kind: _hist_summary(e["hist"], e["max_s"])
        for kind, e in by_kind.items() if e["hist"].total}
    return {"totals": totals, "latency": latency,
            "per_second": per_second}


def _metrics_delta(before: Optional[Dict[str, float]],
                   after: Optional[Dict[str, float]]
                   ) -> Optional[Dict[str, float]]:
    if before is None or after is None:
        return None
    return {name: round(after[name] - before[name], 6)
            for name in sorted(after)
            if name in before and after[name] != before[name]}


def run_loadgen(cfg: LoadgenConfig) -> Dict[str, Any]:
    """Run one load-generation pass; returns the report document."""
    import multiprocessing
    cfg.validate()
    sut = _ServerUnderTest(cfg)
    mp = multiprocessing.get_context("fork")
    ready_q: Any = mp.SimpleQueue()
    out_q: Any = mp.SimpleQueue()
    start_evt = mp.Event()
    procs = [mp.Process(target=_generator_main,
                        args=(cfg, index, sut.address, ready_q, start_evt,
                              out_q),
                        name=f"loadgen-gen-{index}", daemon=True)
             for index in range(cfg.generators)]
    sampler = _ProcSampler(sut.pids())
    started_at = time.time()
    try:
        for proc in procs:
            proc.start()
        for _ in procs:                      # every generator warmed up
            ready_q.get()
        # scrape AFTER warmup: the before/after delta then covers exactly
        # the measurement window, so induced-load assertions are tight
        metrics_before = sut.scrape()
        sampler.start()
        start_evt.set()
        docs = [out_q.get() for _ in procs]
        metrics_after = sut.scrape()
    finally:
        samples = sampler.stop()
        for proc in procs:
            proc.join(timeout=cfg.duration_s + 90.0)
            if proc.is_alive():              # pragma: no cover - hung child
                proc.terminate()
        sut.close()
    report = {
        "schema": SCHEMA_VERSION,
        "kind": "loadgen",
        "started_at_unix": round(started_at, 3),
        "config": asdict(cfg),
        "duration_s": cfg.duration_s,
    }
    report.update(_merge_generator_docs(docs, cfg.duration_s))
    # align /proc samples with the per-second latency series
    for row, sample in zip(report["per_second"], samples):
        row["rss_kb"] = sample["rss_kb"]
        row["cpu_pct"] = sample["cpu_pct"]
    delta = _metrics_delta(metrics_before, metrics_after)
    induced = None
    if delta is not None:
        induced = delta.get(sut.induced_counter)
    report["server"] = {
        "shape": sut.shape,
        "workers": cfg.workers if sut.shape == "fleet" else 1,
        "address": list(sut.address),
        "proc_samples": samples,
        "metrics_before": metrics_before,
        "metrics_after": metrics_after,
        "metrics_delta": delta,
        "induced_counter": sut.induced_counter,
        "induced_requests": induced,
    }
    report["generators"] = [
        {"pid": doc["pid"], "failures": doc["failures"],
         "requests": sum(e["requests"] for e in doc["by_kind"].values())}
        for doc in docs]
    return report


def write_report(cfg: LoadgenConfig, out_base: str) -> Dict[str, Any]:
    """Run and write ``<out_base>.json`` + ``<out_base>.html``."""
    from .loadgen_report import render_html
    report = run_loadgen(cfg)
    json_path = f"{out_base}.json"
    html_path = f"{out_base}.html"
    with open(json_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with open(html_path, "w") as fh:
        fh.write(render_html(report))
    report["_paths"] = {"json": json_path, "html": html_path}
    return report


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Loadgen flags, shared by ``python -m`` and ``repro.cli loadgen``."""
    parser.add_argument("--profile", default="mixed",
                        choices=sorted(PROFILES),
                        help="traffic profile (default: %(default)s)")
    parser.add_argument("--duration", type=float, default=None,
                        metavar="S", help="measurement window seconds")
    parser.add_argument("--workers", type=int, default=None,
                        help="fleet worker processes (>1 implies "
                             "--server fleet unless given)")
    parser.add_argument("--generators", type=int, default=None,
                        help="forked load-generator processes")
    parser.add_argument("--concurrency", type=int, default=None,
                        help="client threads per generator")
    parser.add_argument("--mode", choices=MODES, default=None,
                        help="closed (concurrency-bound) or open "
                             "(target-RPS)")
    parser.add_argument("--rps", type=float, default=None,
                        help="aggregate target RPS for open-loop mode")
    parser.add_argument("--arrivals", choices=ARRIVALS, default=None,
                        help="open-loop inter-arrival distribution")
    parser.add_argument("--depth", type=int, default=None,
                        help="pipeline depth for the pipelined kind")
    parser.add_argument("--batch", type=int, default=None,
                        help="sub-calls per call_many batch")
    parser.add_argument("--value-pool", type=int, default=None,
                        dest="value_pool",
                        help="distinct request values (1 = max cache hits)")
    parser.add_argument("--payload-elements", type=int, default=None,
                        dest="payload_elements",
                        help="float64 elements per request payload")
    parser.add_argument("--server", choices=SERVER_SHAPES, default=None,
                        help="server shape under test")
    parser.add_argument("--target", default=None, metavar="HOST:PORT",
                        help="external server address (implies "
                             "--server external)")
    parser.add_argument("--retry-attempts", type=int, default=None,
                        dest="retry_attempts",
                        help="per-call attempts for binary/xml/extract "
                             "kinds (1 = never retry)")
    parser.add_argument("--extract-records", type=int, default=None,
                        dest="extract_records",
                        help="dataset records for the extract profile")
    parser.add_argument("--largemsg-bytes", type=int, default=None,
                        dest="largemsg_bytes",
                        help="payload bytes streamed per largemsg request")
    parser.add_argument("--wire", choices=WIRE_MODES, default=None,
                        help="PBIO wire representation for both the "
                             "server and the generators (default: auto)")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--out", default="LOADGEN_report",
                        help="output base path; writes <out>.json and "
                             "<out>.html (default: %(default)s)")
    parser.add_argument("--serve-only", action="store_true",
                        dest="serve_only",
                        help="host the loadgen echo service instead of "
                             "driving load — the target for a "
                             "--target run from another process/host")
    parser.add_argument("--port", type=int, default=0,
                        help="port for --serve-only (default: any)")


def config_from_args(args: argparse.Namespace) -> LoadgenConfig:
    overrides = {
        "duration_s": args.duration,
        "workers": args.workers,
        "generators": args.generators,
        "concurrency": args.concurrency,
        "mode": args.mode,
        "rps": args.rps,
        "arrivals": args.arrivals,
        "depth": args.depth,
        "batch": args.batch,
        "value_pool": args.value_pool,
        "payload_elements": args.payload_elements,
        "server": args.server,
        "target": args.target,
        "retry_attempts": args.retry_attempts,
        "extract_records": args.extract_records,
        "largemsg_bytes": args.largemsg_bytes,
        "wire": args.wire,
        "seed": args.seed,
    }
    if args.target and args.server is None:
        overrides["server"] = "external"
    elif args.server is None and args.workers and args.workers > 1:
        # `loadgen --workers 2` means "against a 2-worker fleet"
        overrides["server"] = "fleet"
    return config_for_profile(args.profile, **overrides)


def print_summary(report: Dict[str, Any],
                  out=sys.stdout) -> None:
    totals = report["totals"]
    latency = report["latency"]["overall"]
    server = report["server"]
    print(f"loadgen profile={report['config']['profile']} "
          f"server={server['shape']}"
          + (f" workers={server['workers']}"
             if server["shape"] == "fleet" else ""), file=out)
    print(f"  {totals['requests']} requests in "
          f"{report['duration_s']:g}s ({totals['rps']:,.0f} rps), "
          f"{totals['errors']} errors, {totals['shed']} shed, "
          f"{totals.get('retries', 0)} retries", file=out)
    if totals.get("streamed_bytes"):
        print(f"  {totals['streamed_bytes'] / (1 << 20):,.1f} MiB "
              "streamed through chunked routes", file=out)
    if totals.get("shed_by_reason"):
        breakdown = ", ".join(
            f"{reason}={count}" for reason, count in
            sorted(totals["shed_by_reason"].items()))
        print(f"  shed by reason: {breakdown}", file=out)
    print(f"  latency p50 {latency['p50_s'] * 1e3:.2f} ms, "
          f"p95 {latency['p95_s'] * 1e3:.2f} ms, "
          f"p99 {latency['p99_s'] * 1e3:.2f} ms", file=out)
    if server.get("induced_requests") is not None:
        print(f"  server {server['induced_counter']} delta: "
              f"{server['induced_requests']:,.0f}", file=out)


def print_failures(report: Dict[str, Any], out=sys.stderr) -> bool:
    """Print generator warmup/setup failures; True if there were any."""
    failures = [msg for gen in report["generators"]
                for msg in gen["failures"]]
    for msg in failures:
        print(f"warning: {msg}", file=out)
    return bool(failures)


def serve_echo(cfg: LoadgenConfig, port: int = 0) -> int:
    """Host the loadgen echo service — the target for ``--target`` runs.

    An external target must serve *this* service (the ``LoadEcho``
    formats and quality policy the generators drive); a generic server
    answers every call with a format-mismatch fault.
    """
    import time as _time
    if cfg.server == "external":
        raise ValueError("--serve-only hosts a server; it cannot be "
                         "combined with --target/--server external")
    sut = _ServerUnderTest(cfg, port=port)
    host, bound_port = sut.address
    print(f"loadgen echo service ({cfg.server}"
          + (f", {cfg.workers} workers" if cfg.server == "fleet" else "")
          + f") on {host}:{bound_port} — drive it with "
          f"`python -m repro.cli loadgen --target {host}:{bound_port}`")
    if sut.scrape_address != sut.address:
        chost, cport = sut.scrape_address
        print(f"fleet /metrics on http://{chost}:{cport}/metrics")
    try:
        while True:
            _time.sleep(0.5)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        sut.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="SOAP-binQ distributed load-generation harness")
    add_arguments(parser)
    args = parser.parse_args(argv)
    try:
        cfg = config_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.serve_only:
        try:
            return serve_echo(cfg, port=args.port)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    report = write_report(cfg, args.out)
    print_summary(report)
    print(f"wrote {report['_paths']['json']} and "
          f"{report['_paths']['html']}")
    return 1 if print_failures(report) else 0


if __name__ == "__main__":
    sys.exit(main())
