"""The performance-regression harness behind ``BENCH_headline.json``.

Every PR from the compiled-codec fast path onward tracks the same handful
of headline numbers, so a regression in any hot path shows up as a diff in
one JSON file:

* **codec** — encode/decode ops/s for the three paper workloads (10k-element
  float64 list, 10k-element int32 NumPy array, depth-8 nested business
  struct), each with the interpreted field-walk ("slow path") alongside so
  the compiled-codec speedup is explicit;
* **wire** — steady-state session ``pack_bytes``/``unpack_stream``
  round-trips per second (framing + codec + zero-copy parse);
* **xlate** — XML translation ops/s for the Fig. 5b/Fig. 7 array payloads
  (``to_xml``/``from_xml`` on 10k- and 1k-element int arrays), with the
  tree/pull reference paths alongside so the compiled-XML-plan speedup is
  explicit;
* **rpc** — p50/p95 end-to-end call latency for a SOAP-bin echo operation
  over real loopback HTTP with pooled keep-alive connections.

Run it directly::

    PYTHONPATH=src python -m repro.bench.regress --out BENCH_headline.json

or in smoke mode (a few seconds, used by the tier-1 test suite)::

    PYTHONPATH=src python -m repro.bench.regress --smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from ..core import SoapBinClient, SoapBinService
from ..pbio import Format, FormatRegistry, interp_decode, interp_encode
from ..transport import PooledHttpChannel, serve_endpoint
from ..http11 import HttpConnectionPool
from .datagen import (int_array_value, nested_struct_value,
                      register_array_format, register_nested_formats)
from .timers import percentile

SCHEMA_VERSION = 1

FLOAT_ARRAY_FORMAT = Format.from_dict("RegressFloatArray",
                                      {"data": "float64[]"})
ECHO_FORMAT = Format.from_dict("RegressEcho",
                               {"seq": "int32", "payload": "float64[]"})


def _rate(fn: Callable[[], Any], min_time: float) -> float:
    """Calls per second of ``fn``, measured over at least ``min_time``."""
    fn()  # warmup / JIT the codec caches
    n = 1
    while True:
        start = time.perf_counter()
        for _ in range(n):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= min_time:
            return n / elapsed
        if elapsed <= 0:
            n *= 10
        else:
            n = max(n * 2, int(n * (min_time / elapsed) * 1.2) + 1)


def _codec_entry(registry: FormatRegistry, fmt: Format,
                 value: Dict[str, Any], min_time: float,
                 slow_path: bool = True) -> Dict[str, float]:
    compiler = registry.compiler
    encode = compiler.encoder(fmt)
    decode = compiler.decoder(fmt)
    payload = encode(value)
    entry: Dict[str, float] = {
        "payload_bytes": len(payload),
        "encode_ops_s": _rate(lambda: encode(value), min_time),
        "decode_ops_s": _rate(lambda: decode(payload, 0), min_time),
    }
    if slow_path:
        entry["interp_encode_ops_s"] = _rate(
            lambda: interp_encode(fmt, value, registry), min_time)
        entry["interp_decode_ops_s"] = _rate(
            lambda: interp_decode(fmt, payload, 0, registry), min_time)
        entry["encode_speedup_vs_interp"] = (
            entry["encode_ops_s"] / entry["interp_encode_ops_s"])
        entry["decode_speedup_vs_interp"] = (
            entry["decode_ops_s"] / entry["interp_decode_ops_s"])
    return entry


def _bench_codecs(min_time: float) -> Dict[str, Dict[str, float]]:
    registry = FormatRegistry()
    out: Dict[str, Dict[str, float]] = {}

    registry.register(FLOAT_ARRAY_FORMAT)
    float_value = {"data": [float(i) * 0.5 for i in range(10_000)]}
    out["float64_array_10k_list"] = _codec_entry(
        registry, FLOAT_ARRAY_FORMAT, float_value, min_time)

    array_fmt = register_array_format(registry)
    # slow_path=False: the interpreter walks the ndarray per element, which
    # in full mode would dominate the harness runtime for no extra signal —
    # the float64 list workload above already pins down the speedup ratio.
    out["int32_array_10k_numpy"] = _codec_entry(
        registry, array_fmt, int_array_value(10_000), min_time,
        slow_path=False)

    nested_fmt = register_nested_formats(registry, 8)
    out["nested_struct_d8"] = _codec_entry(
        registry, nested_fmt, nested_struct_value(8), min_time)
    return out


def _bench_wire(min_time: float) -> Dict[str, float]:
    from ..pbio import PbioSession
    registry = FormatRegistry()
    fmt = register_nested_formats(registry, 8)
    value = nested_struct_value(8)
    sender = PbioSession(registry)
    receiver = PbioSession(registry)

    def roundtrip() -> None:
        receiver.unpack_stream(sender.pack_bytes(fmt, value))

    roundtrip()  # burn the one-time announcement
    return {"nested_struct_d8_roundtrip_ops_s": _rate(roundtrip, min_time)}


def _bench_xlate(min_time: float) -> Dict[str, Dict[str, float]]:
    """XML translation throughput: compiled plans vs tree/pull paths.

    The payloads mirror the paper's array workloads: 10k ints is the
    Fig. 5b generation-cost point, 1k ints the Fig. 7a interoperability
    parse point.
    """
    from ..core import ConversionHandler
    from ..soap.encoding import decode_fields_pull
    from ..xmlcore import XmlPullParser

    registry = FormatRegistry()
    fmt = register_array_format(registry)
    out: Dict[str, Dict[str, float]] = {}
    for n in (10_000, 1_000):
        handler = ConversionHandler(fmt, registry)
        value = int_array_value(n)
        xml_text = handler.to_xml(value)
        assert xml_text == handler.to_xml_tree(value)

        def from_xml_pull() -> Dict[str, Any]:
            pp = XmlPullParser(xml_text)
            start = pp.require_start()
            decoded = decode_fields_pull(pp, fmt, registry)
            pp.require_end(start.name)
            return decoded

        entry: Dict[str, float] = {
            "xml_bytes": len(xml_text),
            "to_xml_ops_s": _rate(lambda: handler.to_xml(value), min_time),
            "to_xml_tree_ops_s": _rate(
                lambda: handler.to_xml_tree(value), min_time),
            "from_xml_ops_s": _rate(
                lambda: handler.from_xml(xml_text), min_time),
            "from_xml_pull_ops_s": _rate(from_xml_pull, min_time),
        }
        entry["to_xml_speedup_vs_tree"] = (
            entry["to_xml_ops_s"] / entry["to_xml_tree_ops_s"])
        entry["from_xml_speedup_vs_pull"] = (
            entry["from_xml_ops_s"] / entry["from_xml_pull_ops_s"])
        out[f"int32_array_{n // 1000}k"] = entry
    return out


def _bench_rpc(calls: int, payload_elements: int) -> Dict[str, Any]:
    from ..reliability import RetryPolicy

    registry = FormatRegistry()
    registry.register(ECHO_FORMAT)
    service = SoapBinService(registry)
    service.add_operation("Echo", ECHO_FORMAT, ECHO_FORMAT,
                          lambda params: params)
    server = serve_endpoint(service.endpoint)
    pool = HttpConnectionPool()
    value = {"seq": 0,
             "payload": [float(i) for i in range(payload_elements)]}
    # the production shape: reliability enabled; the happy path must not
    # pay for it (the p50 gate below is compared against the pre-policy
    # baseline)
    policy = RetryPolicy(max_attempts=3, deadline_s=30.0,
                         backoff_initial_s=0.05)
    try:
        channel = PooledHttpChannel(server.address, pool=pool,
                                    retry_policy=policy)
        client = SoapBinClient(channel, registry)
        for _ in range(min(10, calls)):  # warmup: announcement + pool fill
            client.call("Echo", value, ECHO_FORMAT, ECHO_FORMAT)
        latencies: List[float] = []
        for seq in range(calls):
            value["seq"] = seq
            start = time.perf_counter()
            client.call("Echo", value, ECHO_FORMAT, ECHO_FORMAT)
            latencies.append(time.perf_counter() - start)
    finally:
        pool.close()
        server.close()
    return {
        "calls": calls,
        "payload_elements": payload_elements,
        "p50_call_latency_s": percentile(latencies, 50),
        "p95_call_latency_s": percentile(latencies, 95),
        "ops_s": len(latencies) / sum(latencies),
        "pooled_connections_created": pool.created,
        "pooled_connections_reused": pool.reused,
        "retry_policy_enabled": True,
        "retries": pool.retries,
    }


def run(smoke: bool = False) -> Dict[str, Any]:
    """Run the whole harness; returns the result document."""
    min_time = 0.05 if smoke else 0.5
    calls = 150 if smoke else 1000
    return {
        "schema": SCHEMA_VERSION,
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "codec": _bench_codecs(min_time),
        "wire": _bench_wire(min_time),
        "xlate": _bench_xlate(min_time),
        "rpc": _bench_rpc(calls, payload_elements=256),
    }


def write_report(path: str, smoke: bool = False) -> Dict[str, Any]:
    """Run the harness and write the JSON document to ``path``.

    The file is opened before any measurement runs, so an unwritable path
    fails immediately instead of after minutes of benchmarking.
    """
    with open(path, "w") as fh:
        result = run(smoke=smoke)
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="SOAP-binQ performance regression harness")
    parser.add_argument("--out", default="BENCH_headline.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--smoke", action="store_true",
                        help="fast mode (<30 s) for CI smoke runs")
    args = parser.parse_args(argv)
    try:
        result = write_report(args.out, smoke=args.smoke)
    except OSError as exc:
        print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
        return 1
    speed = result["codec"]["float64_array_10k_list"]
    print(f"wrote {args.out} ({result['mode']} mode)")
    print(f"  float64[10k] encode: {speed['encode_ops_s']:,.0f} ops/s "
          f"({speed['encode_speedup_vs_interp']:.1f}x over field walk)")
    xl = result["xlate"]["int32_array_10k"]
    print(f"  int32[10k] to_xml: {xl['to_xml_ops_s']:,.0f} ops/s "
          f"({xl['to_xml_speedup_vs_tree']:.1f}x over tree)")
    print(f"  rpc p50: {result['rpc']['p50_call_latency_s'] * 1e3:.3f} ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
