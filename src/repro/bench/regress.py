"""The performance-regression harness behind ``BENCH_headline.json``.

Every PR from the compiled-codec fast path onward tracks the same handful
of headline numbers, so a regression in any hot path shows up as a diff in
one JSON file:

* **codec** — encode/decode ops/s for the three paper workloads (10k-element
  float64 list, 10k-element int32 NumPy array, depth-8 nested business
  struct), each with the interpreted field-walk ("slow path") alongside so
  the compiled-codec speedup is explicit;
* **wire** — steady-state session ``pack_bytes``/``unpack_stream``
  round-trips per second (framing + codec + zero-copy parse), the
  native-layout vs compact-varint size/throughput trade on three payload
  shapes (small-int-heavy, float-array, nested-struct), and the
  constant-memory streaming evidence: a multi-MB PBIO record stream
  pushed through the reactor's chunked route in a forked child while
  VmRSS growth is sampled;
* **xlate** — XML translation ops/s for the Fig. 5b/Fig. 7 array payloads
  (``to_xml``/``from_xml`` on 10k- and 1k-element int arrays), with the
  tree/pull reference paths alongside so the compiled-XML-plan speedup is
  explicit;
* **rpc** — p50/p95 end-to-end call latency for a SOAP-bin echo operation
  over real loopback HTTP with pooled keep-alive connections;
* **concurrency** — the event-driven serving core under load: active-call
  latency while thousands of idle keep-alive connections are held (with
  thread and RSS growth recorded), pipelined vs serial throughput at
  depths 1/8/32, and a reactor-vs-threaded A/B of plain call latency;
* **cache** — the content-addressed quality/response cache tier: the
  quality-managed RPC with the cache off (every call re-runs the quality
  handler + encode) vs on (steady-state hits replay memoized bytes), and
  a conditional-request A/B where ``If-None-Match`` turns the round-trip
  into a header-only ``304 Not Modified``;
* **scaleout** — the prefork reactor fleet: SOAP-bin echo RPC ops/s with
  one worker vs ``os.cpu_count()`` workers on one port (load generated
  by forked client processes, so the measurement is not GIL-bound), the
  scaling efficiency, and fleet-wide pipelined depth-8 throughput
  against the single-core ceiling.

Run it directly::

    PYTHONPATH=src python -m repro.bench.regress --out BENCH_headline.json

or in smoke mode (a few seconds, used by the tier-1 test suite)::

    PYTHONPATH=src python -m repro.bench.regress --smoke

``--sections scaleout`` (comma/space separable, repeatable) runs only the
named sections and, when ``--out`` already exists, merges the fresh
numbers into it — so fleet tuning reruns don't pay the codec/xlate
suites.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from ..core import SoapBinClient, SoapBinService
from ..pbio import Format, FormatRegistry, interp_decode, interp_encode
from ..transport import PooledHttpChannel, serve_endpoint
from ..http11 import (HttpConnection, HttpConnectionPool, HttpServer,
                      PipelinedHttpConnection, Request, Response)
from .datagen import (int_array_value, nested_struct_value,
                      register_array_format, register_nested_formats)
from .timers import percentile

SCHEMA_VERSION = 1

FLOAT_ARRAY_FORMAT = Format.from_dict("RegressFloatArray",
                                      {"data": "float64[]"})
ECHO_FORMAT = Format.from_dict("RegressEcho",
                               {"seq": "int32", "payload": "float64[]"})


def _rate(fn: Callable[[], Any], min_time: float) -> float:
    """Calls per second of ``fn``, measured over at least ``min_time``."""
    fn()  # warmup / JIT the codec caches
    n = 1
    while True:
        start = time.perf_counter()
        for _ in range(n):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= min_time:
            return n / elapsed
        if elapsed <= 0:
            n *= 10
        else:
            n = max(n * 2, int(n * (min_time / elapsed) * 1.2) + 1)


def _codec_entry(registry: FormatRegistry, fmt: Format,
                 value: Dict[str, Any], min_time: float,
                 slow_path: bool = True) -> Dict[str, float]:
    compiler = registry.compiler
    encode = compiler.encoder(fmt)
    decode = compiler.decoder(fmt)
    payload = encode(value)
    entry: Dict[str, float] = {
        "payload_bytes": len(payload),
        "encode_ops_s": _rate(lambda: encode(value), min_time),
        "decode_ops_s": _rate(lambda: decode(payload, 0), min_time),
    }
    if slow_path:
        entry["interp_encode_ops_s"] = _rate(
            lambda: interp_encode(fmt, value, registry), min_time)
        entry["interp_decode_ops_s"] = _rate(
            lambda: interp_decode(fmt, payload, 0, registry), min_time)
        entry["encode_speedup_vs_interp"] = (
            entry["encode_ops_s"] / entry["interp_encode_ops_s"])
        entry["decode_speedup_vs_interp"] = (
            entry["decode_ops_s"] / entry["interp_decode_ops_s"])
    return entry


def _bench_codecs(min_time: float) -> Dict[str, Dict[str, float]]:
    registry = FormatRegistry()
    out: Dict[str, Dict[str, float]] = {}

    registry.register(FLOAT_ARRAY_FORMAT)
    float_value = {"data": [float(i) * 0.5 for i in range(10_000)]}
    out["float64_array_10k_list"] = _codec_entry(
        registry, FLOAT_ARRAY_FORMAT, float_value, min_time)

    array_fmt = register_array_format(registry)
    # slow_path=False: the interpreter walks the ndarray per element, which
    # in full mode would dominate the harness runtime for no extra signal —
    # the float64 list workload above already pins down the speedup ratio.
    out["int32_array_10k_numpy"] = _codec_entry(
        registry, array_fmt, int_array_value(10_000), min_time,
        slow_path=False)

    nested_fmt = register_nested_formats(registry, 8)
    out["nested_struct_d8"] = _codec_entry(
        registry, nested_fmt, nested_struct_value(8), min_time)
    return out


WIRE_SMALL_INT_FORMAT = Format.from_dict(
    "RegressWireSmallInt",
    {"seq": "int32", "ids": "int64[]", "counts": "int32[]"})

#: one stream record = 128 KiB of float64 payload
STREAM_RECORD_ELEMENTS = 16_384


def _wire_shape_entry(registry: FormatRegistry, fmt: Format,
                      value: Dict[str, Any],
                      min_time: float) -> Dict[str, float]:
    """Native-layout vs compact-varint bytes and codec throughput for one
    payload shape — the size/CPU trade the wire negotiation picks between
    (docs/wire-compact.md)."""
    compiler = registry.compiler
    native_enc = compiler.encoder(fmt)
    native_dec = compiler.decoder(fmt)
    compact_enc = compiler.compact_encoder(fmt)
    compact_dec = compiler.compact_decoder(fmt)
    native_payload = native_enc(value)
    compact_payload = compact_enc(value)
    return {
        "native_bytes": len(native_payload),
        "compact_bytes": len(compact_payload),
        "compact_shrink": len(native_payload) / len(compact_payload),
        "native_encode_ops_s": _rate(lambda: native_enc(value), min_time),
        "compact_encode_ops_s": _rate(lambda: compact_enc(value), min_time),
        "native_decode_ops_s": _rate(
            lambda: native_dec(native_payload, 0), min_time),
        "compact_decode_ops_s": _rate(
            lambda: compact_dec(compact_payload, 0), min_time),
    }


def _stream_rss_child(payload_bytes: int, out_q) -> None:
    """Forked child: push ``payload_bytes`` of PBIO records through the
    reactor's streaming route and read the echo back, sampling VmRSS.

    Forked so the baseline is a fresh heap — the parent's accumulated
    allocations would mask (or fake) growth.  Client and server share the
    process, so the growth figure covers *both* ends of the stream: the
    constant-memory claim holds only if neither side buffers the payload.
    """
    import threading
    from ..pbio import (PbioSession, RecordStreamReader, iter_frames,
                        pbio_stream_route)

    registry = FormatRegistry()
    fmt = Format.from_dict("RegressStreamRecord",
                           {"seq": "int32", "data": "float64[]"})
    registry.register(fmt)
    data = [float(i) * 0.5 for i in range(STREAM_RECORD_ELEMENTS)]
    record_bytes = STREAM_RECORD_ELEMENTS * 8
    nrecords = max(4, payload_bytes // record_bytes)

    def records():
        for seq in range(nrecords):
            yield fmt, {"seq": seq, "data": data}

    server = HttpServer(lambda request: Response(status=404),
                        concurrency="reactor",
                        stream_routes={"/stream":
                                       pbio_stream_route(registry)})
    stop = threading.Event()
    peak = [0]

    def sample() -> None:
        while not stop.is_set():
            peak[0] = max(peak[0], _rss_kb())
            stop.wait(0.01)

    conn = HttpConnection(server.address)
    session = PbioSession(registry)
    sink = RecordStreamReader(PbioSession(registry))
    try:
        baseline_kb = _rss_kb()
        sampler = threading.Thread(target=sample, daemon=True)
        sampler.start()
        resp = conn.stream("/stream", iter_frames(session, records()),
                           content_type="application/x-pbio-stream")
        frames_back = 0
        bytes_back = 0
        for chunk in resp.iter_chunks():
            bytes_back += len(chunk)
            frames_back += len(sink.feed(chunk))
        sink.finish()
        stop.set()
        sampler.join()
        peak_kb = max(peak[0], _rss_kb())
    finally:
        stop.set()
        conn.close()
        server.close()
    assert resp.status == 200, resp.status
    assert frames_back == nrecords, (frames_back, nrecords)
    out_q.put({
        "payload_bytes": nrecords * record_bytes,
        "records": nrecords,
        "echoed_bytes": bytes_back,
        "rss_baseline_kb": baseline_kb,
        "rss_peak_kb": peak_kb,
        "rss_growth_kb": max(0, peak_kb - baseline_kb),
    })


def _bench_wire_streaming(smoke: bool) -> Dict[str, Any]:
    """The constant-memory evidence: a multi-MB record stream crosses the
    reactor and comes back while RSS stays frame-sized.  Full mode pushes
    64 MiB (the gate bound lives in :mod:`.gates`); smoke keeps CI fast
    with 8 MiB but still proves the roundtrip."""
    import multiprocessing
    mp = multiprocessing.get_context("fork")
    payload_bytes = (8 << 20) if smoke else (64 << 20)
    out_q: Any = mp.SimpleQueue()
    proc = mp.Process(target=_stream_rss_child,
                      args=(payload_bytes, out_q), daemon=True)
    proc.start()
    try:
        result: Dict[str, Any] = out_q.get()
    finally:
        proc.join(timeout=120.0)
        if proc.is_alive():             # pragma: no cover - hung child
            proc.terminate()
    result["rss_growth_ratio"] = (result["rss_growth_kb"] * 1024
                                  / result["payload_bytes"])
    return result


def _bench_wire(min_time: float, smoke: bool) -> Dict[str, Any]:
    from ..pbio import PbioSession
    registry = FormatRegistry()
    nested_fmt = register_nested_formats(registry, 8)
    nested_value = nested_struct_value(8)
    sender = PbioSession(registry)
    receiver = PbioSession(registry)

    def roundtrip() -> None:
        receiver.unpack_stream(sender.pack_bytes(nested_fmt, nested_value))

    roundtrip()  # burn the one-time announcement
    roundtrip()  # ... and let wire="auto" settle on its steady-state rep
    out: Dict[str, Any] = {
        "nested_struct_d8_roundtrip_ops_s": _rate(roundtrip, min_time),
        "roundtrip_rep": sender.wire_rep(),
    }

    registry.register(FLOAT_ARRAY_FORMAT)
    registry.register(WIRE_SMALL_INT_FORMAT)
    small_value = {"seq": 7,
                   "ids": [i % 100 for i in range(5000)],
                   "counts": [i % 50 for i in range(5000)]}
    float_value = {"data": [float(i) * 0.5 for i in range(10_000)]}
    out["shapes"] = {
        # ids/counts under one varint byte each: compact's best case
        "small_int_heavy": _wire_shape_entry(
            registry, WIRE_SMALL_INT_FORMAT, small_value, min_time),
        # float64 stays 8 bytes either way: the no-win crossover case
        "float64_array_10k": _wire_shape_entry(
            registry, FLOAT_ARRAY_FORMAT, float_value, min_time),
        "nested_struct_d8": _wire_shape_entry(
            registry, nested_fmt, nested_value, min_time),
    }
    out["streaming"] = _bench_wire_streaming(smoke)
    return out


def _bench_xlate(min_time: float) -> Dict[str, Dict[str, float]]:
    """XML translation throughput: compiled plans vs tree/pull paths.

    The payloads mirror the paper's array workloads: 10k ints is the
    Fig. 5b generation-cost point, 1k ints the Fig. 7a interoperability
    parse point.
    """
    from ..core import ConversionHandler
    from ..soap.encoding import decode_fields_pull
    from ..xmlcore import XmlPullParser

    registry = FormatRegistry()
    fmt = register_array_format(registry)
    out: Dict[str, Dict[str, float]] = {}
    for n in (10_000, 1_000):
        handler = ConversionHandler(fmt, registry)
        value = int_array_value(n)
        xml_text = handler.to_xml(value)
        assert xml_text == handler.to_xml_tree(value)

        def from_xml_pull() -> Dict[str, Any]:
            pp = XmlPullParser(xml_text)
            start = pp.require_start()
            decoded = decode_fields_pull(pp, fmt, registry)
            pp.require_end(start.name)
            return decoded

        entry: Dict[str, float] = {
            "xml_bytes": len(xml_text),
            "to_xml_ops_s": _rate(lambda: handler.to_xml(value), min_time),
            "to_xml_tree_ops_s": _rate(
                lambda: handler.to_xml_tree(value), min_time),
            "from_xml_ops_s": _rate(
                lambda: handler.from_xml(xml_text), min_time),
            "from_xml_pull_ops_s": _rate(from_xml_pull, min_time),
        }
        entry["to_xml_speedup_vs_tree"] = (
            entry["to_xml_ops_s"] / entry["to_xml_tree_ops_s"])
        entry["from_xml_speedup_vs_pull"] = (
            entry["from_xml_ops_s"] / entry["from_xml_pull_ops_s"])
        out[f"int32_array_{n // 1000}k"] = entry
    return out


def _bench_rpc(calls: int, payload_elements: int) -> Dict[str, Any]:
    from ..reliability import RetryPolicy

    registry = FormatRegistry()
    registry.register(ECHO_FORMAT)
    service = SoapBinService(registry)
    service.add_operation("Echo", ECHO_FORMAT, ECHO_FORMAT,
                          lambda params: params)
    server = serve_endpoint(service.endpoint)
    pool = HttpConnectionPool()
    value = {"seq": 0,
             "payload": [float(i) for i in range(payload_elements)]}
    # the production shape: reliability enabled; the happy path must not
    # pay for it (the p50 gate below is compared against the pre-policy
    # baseline)
    policy = RetryPolicy(max_attempts=3, deadline_s=30.0,
                         backoff_initial_s=0.05)
    try:
        channel = PooledHttpChannel(server.address, pool=pool,
                                    retry_policy=policy)
        client = SoapBinClient(channel, registry)
        for _ in range(min(10, calls)):  # warmup: announcement + pool fill
            client.call("Echo", value, ECHO_FORMAT, ECHO_FORMAT)
        latencies: List[float] = []
        for seq in range(calls):
            value["seq"] = seq
            start = time.perf_counter()
            client.call("Echo", value, ECHO_FORMAT, ECHO_FORMAT)
            latencies.append(time.perf_counter() - start)
        pool_stats = pool.stats()
    finally:
        pool.close()
        server.close()
    return {
        "calls": calls,
        "payload_elements": payload_elements,
        "p50_call_latency_s": percentile(latencies, 50),
        "p95_call_latency_s": percentile(latencies, 95),
        "ops_s": len(latencies) / sum(latencies),
        "pooled_connections_created": pool.created,
        "pooled_connections_reused": pool.reused,
        "retry_policy_enabled": True,
        "retries": pool.retries,
        "pool_stats": pool_stats,
    }


def _rss_kb() -> int:
    """Resident set size of this process in KiB (Linux ``/proc``)."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def _echo_rpc_setup():
    """The same echo service/client shape as :func:`_bench_rpc`."""
    registry = FormatRegistry()
    registry.register(ECHO_FORMAT)
    service = SoapBinService(registry)
    service.add_operation("Echo", ECHO_FORMAT, ECHO_FORMAT,
                          lambda params: params)
    return registry, service


def _bench_idle_hold(requested: int, active_calls: int) -> Dict[str, Any]:
    """Hold thousands of idle keep-alive connections against the reactor
    while measuring active-call RPC latency — the c10k shape the
    thread-per-connection core could not serve."""
    import resource
    import socket
    import threading

    soft, _hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    # two fds per loopback connection (client + server end), plus slack
    target = max(64, min(requested, (soft - 256) // 2))
    registry, service = _echo_rpc_setup()
    server = serve_endpoint(service.endpoint, concurrency="reactor",
                            backlog=1024)
    value = {"seq": 0, "payload": [float(i) for i in range(256)]}
    threads_before = threading.active_count()
    rss_before = _rss_kb()
    held: List[socket.socket] = []
    pool = HttpConnectionPool()
    try:
        for _ in range(target):
            held.append(socket.create_connection(server.address,
                                                 timeout=10.0))
        deadline = time.monotonic() + 30.0
        while (getattr(server, "_active_connections", target) < target
               and time.monotonic() < deadline):
            time.sleep(0.02)
        threads_during = threading.active_count()
        rss_during = _rss_kb()
        channel = PooledHttpChannel(server.address, pool=pool)
        client = SoapBinClient(channel, registry)
        for _ in range(min(10, active_calls)):
            client.call("Echo", value, ECHO_FORMAT, ECHO_FORMAT)
        latencies: List[float] = []
        for seq in range(active_calls):
            value["seq"] = seq
            start = time.perf_counter()
            client.call("Echo", value, ECHO_FORMAT, ECHO_FORMAT)
            latencies.append(time.perf_counter() - start)
    finally:
        pool.close()
        for sock in held:
            sock.close()
        server.close()
    return {
        "connections_held": target,
        "threads_added": threads_during - threads_before,
        "rss_held_kb": rss_during - rss_before,
        "active_calls": active_calls,
        "active_p50_latency_s": percentile(latencies, 50),
        "active_p95_latency_s": percentile(latencies, 95),
    }


def _bench_pipelined(requests_per_depth: int) -> Dict[str, Any]:
    """Raw HTTP echo throughput: the serial keep-alive client
    (``HttpConnection``, what ``HttpChannel`` drives — the path a
    ``call_many`` adopter migrates *from*) versus one pipelined
    connection at depth 1/8/32.  Speedups are quoted against the serial
    client; the depth-1 figure sits alongside so the non-blocking
    transport's own serial cost stays visible."""
    body = b"x" * 256

    def handler(request):
        return Response(body=request.body)

    depths = (1, 8, 32)
    samples: Dict[Any, List[float]] = {depth: [] for depth in depths}
    samples["serial"] = []
    # requests are built once, outside every timed window: the metric is
    # transport throughput, not Request-object construction
    requests = [Request(method="POST", target="/", body=body)
                for _ in range(requests_per_depth)]
    with HttpServer(handler, concurrency="reactor") as server:
        serial = HttpConnection(server.address)
        pipes = {depth: PipelinedHttpConnection(server.address, depth=depth)
                 for depth in depths}
        try:
            for _ in range(64):  # warmup
                serial.post("/", body, "application/octet-stream")
            for depth in depths:
                pipes[depth].request_many(requests[:64])
            # interleaved passes, median per config: scheduler noise on a
            # shared box lands on every config instead of whichever one
            # happened to run during the bad slice
            for _ in range(5):
                start = time.perf_counter()
                for _ in range(requests_per_depth):
                    serial.post("/", body, "application/octet-stream")
                elapsed = time.perf_counter() - start
                samples["serial"].append(requests_per_depth / elapsed)
                for depth in depths:
                    start = time.perf_counter()
                    responses = pipes[depth].request_many(requests)
                    elapsed = time.perf_counter() - start
                    assert len(responses) == requests_per_depth
                    samples[depth].append(requests_per_depth / elapsed)
        finally:
            serial.close()
            for pipe in pipes.values():
                pipe.close()
    out: Dict[str, Any] = {
        f"pipelined_depth{depth}_ops_s": percentile(samples[depth], 50)
        for depth in depths}
    out["serial_ops_s"] = percentile(samples["serial"], 50)
    # speedups are the median of *per-pass* ratios: each pass's pipelined
    # run is paired with the serial run adjacent to it in time, so a
    # machine-wide slow slice cancels instead of skewing the quotient
    for depth in (8, 32):
        ratios = [pipelined / serial_rate for pipelined, serial_rate
                  in zip(samples[depth], samples["serial"])]
        out[f"pipelined_depth{depth}_speedup_vs_serial"] = (
            percentile(ratios, 50))
    return out


def _bench_mode_ab(calls: int) -> Dict[str, Any]:
    """Serial keep-alive call latency, reactor vs threaded — the switch
    must not tax the single-connection happy path."""

    def handler(request):
        return Response(body=request.body)

    out: Dict[str, Any] = {}
    body = b"x" * 256
    for mode in ("reactor", "threaded"):
        with HttpServer(handler, concurrency=mode) as server:
            with PipelinedHttpConnection(server.address, depth=1) as pipe:
                for _ in range(min(10, calls)):
                    pipe.post("/", body, "application/octet-stream")
                latencies: List[float] = []
                for _ in range(calls):
                    start = time.perf_counter()
                    pipe.post("/", body, "application/octet-stream")
                    latencies.append(time.perf_counter() - start)
        out[f"{mode}_p50_call_latency_s"] = percentile(latencies, 50)
    return out


def _bench_concurrency(smoke: bool) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "idle_hold": _bench_idle_hold(
            requested=128 if smoke else 5000,
            active_calls=60 if smoke else 200),
    }
    out.update(_bench_pipelined(300 if smoke else 3000))
    out.update(_bench_mode_ab(60 if smoke else 400))
    return out


# ----------------------------------------------------------------------
# scaleout: the prefork reactor fleet vs one worker
# ----------------------------------------------------------------------

def _fleet_echo_factory(ctx):
    """Worker factory: a fresh SOAP-bin echo service per forked worker."""
    from ..transport import endpoint_http_handler
    _registry, service = _echo_rpc_setup()
    return endpoint_http_handler(service.endpoint)


def _scaleout_rpc_client(address, duration_s, ready_q, start_evt, out_q):
    """One forked load generator: pooled SOAP-bin echo calls for a fixed
    window; reports how many completed."""
    registry = FormatRegistry()
    registry.register(ECHO_FORMAT)
    pool = HttpConnectionPool()
    channel = PooledHttpChannel(address, pool=pool)
    client = SoapBinClient(channel, registry)
    value = {"seq": 0, "payload": [float(i) for i in range(256)]}
    try:
        for _ in range(3):   # warmup: announcement + pool fill
            client.call("Echo", value, ECHO_FORMAT, ECHO_FORMAT)
        ready_q.put(os.getpid())
        start_evt.wait()
        count = 0
        deadline = time.perf_counter() + duration_s
        while time.perf_counter() < deadline:
            value["seq"] = count
            client.call("Echo", value, ECHO_FORMAT, ECHO_FORMAT)
            count += 1
        out_q.put(count)
    finally:
        pool.close()


def _scaleout_pipe_client(address, duration_s, ready_q, start_evt, out_q):
    """One forked pipelined load generator (depth 8, raw HTTP echo)."""
    body = b"x" * 256
    requests = [Request(method="POST", target="/", body=body)
                for _ in range(64)]
    with PipelinedHttpConnection(address, depth=8) as pipe:
        pipe.request_many(requests[:16])     # warmup
        ready_q.put(os.getpid())
        start_evt.wait()
        count = 0
        deadline = time.perf_counter() + duration_s
        while time.perf_counter() < deadline:
            responses = pipe.request_many(requests)
            count += len(responses)
        out_q.put(count)


def _drive_clients(target, address, duration_s, nclients) -> float:
    """Fork ``nclients`` load generators against ``address``; aggregate
    ops/s over the common measurement window."""
    import multiprocessing
    mp = multiprocessing.get_context("fork")
    ready_q: Any = mp.SimpleQueue()
    out_q: Any = mp.SimpleQueue()
    start_evt = mp.Event()
    procs = [mp.Process(target=target,
                        args=(address, duration_s, ready_q, start_evt,
                              out_q),
                        daemon=True)
             for _ in range(nclients)]
    for proc in procs:
        proc.start()
    try:
        for _ in range(nclients):            # all warmed up before the gun
            ready_q.get()
        start_evt.set()
        total = sum(out_q.get() for _ in range(nclients))
    finally:
        for proc in procs:
            proc.join(timeout=duration_s + 30.0)
            if proc.is_alive():              # pragma: no cover - hung child
                proc.terminate()
    return total / duration_s


def _bench_scaleout(smoke: bool) -> Dict[str, Any]:
    """Fleet RPC throughput at 1 vs N workers (N = cores), plus fleet
    pipelined depth-8 against the single-core ceiling.

    Load comes from forked client *processes*, so on a multi-core box the
    measurement exercises real parallelism end to end; on a single-core
    container the N-worker figures honestly collapse to ~1x.
    """
    from ..serving import FleetServer
    cores = os.cpu_count() or 1
    workers = cores
    duration_s = 0.4 if smoke else 2.0
    nclients = max(2, 2 * workers)

    def measure(n_workers: int) -> Dict[str, float]:
        fleet = FleetServer(_fleet_echo_factory, workers=n_workers,
                            control_port=None)
        try:
            if not fleet.wait_ready(20.0):
                raise RuntimeError("fleet workers never became ready")
            rpc = _drive_clients(_scaleout_rpc_client, fleet.address,
                                 duration_s, nclients)
            pipe = _drive_clients(_scaleout_pipe_client, fleet.address,
                                  duration_s, max(1, n_workers))
            return {"rpc_ops_s": rpc, "pipelined_depth8_ops_s": pipe,
                    "mode": fleet.mode}
        finally:
            fleet.close()

    single = measure(1)
    if workers > 1:
        fleet_n = measure(workers)
    else:
        fleet_n = dict(single)   # one core: the fleet IS one worker
    # the serial baseline for the pipelining speedup: one serial
    # keep-alive connection against a single worker (the PR-5 ceiling's
    # own denominator)
    fleet = FleetServer(_fleet_echo_factory, workers=1, control_port=None)
    try:
        if not fleet.wait_ready(20.0):
            raise RuntimeError("fleet worker never became ready")
        body = b"x" * 256
        with HttpConnection(fleet.address) as conn:
            for _ in range(32):
                conn.post("/bench", body, "application/octet-stream")
            count = 0
            deadline = time.perf_counter() + duration_s
            while time.perf_counter() < deadline:
                conn.post("/bench", body, "application/octet-stream")
                count += 1
        serial_ops = count / duration_s
    finally:
        fleet.close()
    return {
        "cores": cores,
        "workers": workers,
        "mode": fleet_n["mode"],
        "duration_s": duration_s,
        "rpc_client_processes": nclients,
        "single_worker_rpc_ops_s": single["rpc_ops_s"],
        "fleet_rpc_ops_s": fleet_n["rpc_ops_s"],
        "scaling_efficiency": (fleet_n["rpc_ops_s"]
                               / (workers * single["rpc_ops_s"])
                               if single["rpc_ops_s"] else 0.0),
        "serial_ops_s": serial_ops,
        "fleet_pipelined_depth8_ops_s": fleet_n["pipelined_depth8_ops_s"],
        "fleet_pipelined_depth8_speedup_vs_serial": (
            fleet_n["pipelined_depth8_ops_s"] / serial_ops
            if serial_ops else 0.0),
    }


# ----------------------------------------------------------------------
# cache: the content-addressed quality/response cache tier
# ----------------------------------------------------------------------

CACHE_REQUEST_FORMAT = Format.from_dict("RegressCacheRequest",
                                        {"n": "int32"})
CACHE_FULL_FORMAT = Format.from_dict("RegressCacheResponse",
                                     {"seq": "int32", "payload": "float64[]"})
CACHE_HALF_FORMAT = Format.from_dict("RegressCacheHalf",
                                     {"seq": "int32", "payload": "float64[]"})

_CACHE_QUALITY_FILE = """
attribute rtt
history 1
handler RegressCacheHalf slow_stride
0.0 inf - RegressCacheHalf
"""


def _slow_stride_handler(value, app_format, wire_format, registry,
                         attributes):
    """A deliberately Python-level quality handler: per-element arithmetic
    the cache can win back (real deployments put image resizing here)."""
    payload = value["payload"]
    halved = [payload[i] * 0.5 + float(i % 7)
              for i in range(0, len(payload), 2)]
    return {"seq": value["seq"], "payload": halved}


def _cache_service(registry: FormatRegistry, payload_elements: int,
                   response_cache: bool) -> SoapBinService:
    from ..core import HandlerRegistry
    for fmt in (CACHE_REQUEST_FORMAT, CACHE_FULL_FORMAT, CACHE_HALF_FORMAT):
        registry.register(fmt)
    handlers = HandlerRegistry()
    handlers.register("slow_stride", _slow_stride_handler)
    service = SoapBinService(registry, quality_text=_CACHE_QUALITY_FILE,
                             handlers=handlers,
                             response_cache=response_cache)
    result = {"seq": 7,
              "payload": [float(i) * 0.25 for i in range(payload_elements)]}
    service.add_operation("GetData", CACHE_REQUEST_FORMAT, CACHE_FULL_FORMAT,
                          lambda params: result)
    return service


def _cache_rpc_pass(payload_elements: int, calls: int,
                    response_cache: bool) -> Dict[str, Any]:
    """p50/ops_s of the quality-managed RPC, cold path vs cache tier.

    Every call asks for the same value, so with the cache on the steady
    state is all hits; with it off every response re-runs the quality
    handler and the encode — the exact work ROADMAP item 3 calls out.
    """
    registry = FormatRegistry()
    service = _cache_service(registry, payload_elements, response_cache)
    server = serve_endpoint(service.endpoint,
                            quality_stats=service.quality_stats)
    pool = HttpConnectionPool()
    value = {"n": payload_elements}
    try:
        channel = PooledHttpChannel(server.address, pool=pool)
        client = SoapBinClient(channel, registry)
        for _ in range(min(10, calls)):
            client.call("GetData", value, CACHE_REQUEST_FORMAT,
                        CACHE_FULL_FORMAT)
        latencies: List[float] = []
        for _ in range(calls):
            start = time.perf_counter()
            client.call("GetData", value, CACHE_REQUEST_FORMAT,
                        CACHE_FULL_FORMAT)
            latencies.append(time.perf_counter() - start)
        quality = service.quality_stats() or {}
    finally:
        pool.close()
        server.close()
    return {
        "p50_call_latency_s": percentile(latencies, 50),
        "p95_call_latency_s": percentile(latencies, 95),
        "ops_s": len(latencies) / sum(latencies),
        "cache_stats": quality.get("cache"),
    }


def _cache_304_pass(payload_elements: int, calls: int) -> Dict[str, Any]:
    """Raw-HTTP conditional requests: a cache-hit full response vs a
    ``304 Not Modified`` round-trip that skips encode and body bytes."""
    from ..core.modes import HEADER_CLIENT_ID, PBIO_CONTENT_TYPE
    from ..http11 import Headers
    from ..pbio import PbioSession

    registry = FormatRegistry()
    service = _cache_service(registry, payload_elements,
                             response_cache=True)
    server = serve_endpoint(service.endpoint,
                            quality_stats=service.quality_stats)
    session = PbioSession(registry)
    value = {"n": payload_elements}
    # first pack carries the announcement; the second is the steady-state
    # data-only request every timed round-trip replays
    first_blob = session.pack_bytes(CACHE_REQUEST_FORMAT, value)
    steady_blob = session.pack_bytes(CACHE_REQUEST_FORMAT, value)
    try:
        with HttpConnection(server.address) as conn:
            base = Headers([(HEADER_CLIENT_ID, "bench-cache-304")])
            first = conn.post("/", first_blob, PBIO_CONTENT_TYPE,
                              headers=Headers(list(base)))
            assert first.status == 200, first.status
            etag = first.headers.get("ETag")
            assert etag, "quality cache did not stamp an ETag"
            conditional = Headers(list(base))
            conditional.set("If-None-Match", etag)

            def timed(headers: Headers, expected_status: int,
                      n: int) -> List[float]:
                out: List[float] = []
                for _ in range(n):
                    start = time.perf_counter()
                    resp = conn.post("/", steady_blob, PBIO_CONTENT_TYPE,
                                     headers=Headers(list(headers)))
                    out.append(time.perf_counter() - start)
                    assert resp.status == expected_status, resp.status
                return out

            timed(base, 200, min(10, calls))        # warmup
            full = timed(base, 200, calls)
            not_modified = timed(conditional, 304, calls)
            full_bytes = len(first.body)
        responses_304 = server.responses_304
    finally:
        server.close()
    return {
        "full_response_bytes": full_bytes,
        "full_response_p50_s": percentile(full, 50),
        "full_response_ops_s": len(full) / sum(full),
        "not_modified_p50_s": percentile(not_modified, 50),
        "not_modified_ops_s": (len(not_modified) / sum(not_modified)),
        "responses_304": responses_304,
    }


def _bench_cache(smoke: bool) -> Dict[str, Any]:
    payload_elements = 8192
    calls = 60 if smoke else 400
    cold = _cache_rpc_pass(payload_elements, calls, response_cache=False)
    hit = _cache_rpc_pass(payload_elements, calls, response_cache=True)
    cond = _cache_304_pass(payload_elements, calls)
    out: Dict[str, Any] = {
        "payload_elements": payload_elements,
        "calls": calls,
        "cold_p50_call_latency_s": cold["p50_call_latency_s"],
        "cold_ops_s": cold["ops_s"],
        "hit_p50_call_latency_s": hit["p50_call_latency_s"],
        "hit_ops_s": hit["ops_s"],
        "hit_speedup_vs_cold": (cold["p50_call_latency_s"]
                                / hit["p50_call_latency_s"]
                                if hit["p50_call_latency_s"] else 0.0),
        "cache_stats": hit["cache_stats"],
    }
    out.update(cond)
    out["not_modified_speedup_vs_full"] = (
        cond["full_response_p50_s"] / cond["not_modified_p50_s"]
        if cond["not_modified_p50_s"] else 0.0)
    return out


#: Section name -> builder.  Each builder takes ``smoke`` and returns the
#: section document.
SECTIONS: Dict[str, Callable[[bool], Any]] = {
    "codec": lambda smoke: _bench_codecs(0.05 if smoke else 0.5),
    "wire": lambda smoke: _bench_wire(0.05 if smoke else 0.5, smoke),
    "xlate": lambda smoke: _bench_xlate(0.05 if smoke else 0.5),
    "rpc": lambda smoke: _bench_rpc(150 if smoke else 1000,
                                    payload_elements=256),
    "concurrency": _bench_concurrency,
    "scaleout": _bench_scaleout,
    "cache": _bench_cache,
}


def run(smoke: bool = False,
        sections: Optional[List[str]] = None) -> Dict[str, Any]:
    """Run the harness; returns the result document.

    ``sections`` restricts the run to the named sections (default: all).
    """
    if sections is None:
        names = list(SECTIONS)
    else:
        unknown = [name for name in sections if name not in SECTIONS]
        if unknown:
            raise ValueError(
                f"unknown section(s) {unknown}: choose from "
                f"{list(SECTIONS)}")
        names = list(dict.fromkeys(sections))    # dedupe, keep order
    result: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
    }
    for name in names:
        result[name] = SECTIONS[name](smoke)
    return result


def write_report(path: str, smoke: bool = False,
                 sections: Optional[List[str]] = None) -> Dict[str, Any]:
    """Run the harness and write the JSON document to ``path``.

    The file is opened before any measurement runs, so an unwritable path
    fails immediately instead of after minutes of benchmarking.  With a
    ``sections`` subset, sections already present in an existing report at
    ``path`` are carried over unchanged — only the named ones are
    re-measured.
    """
    carried: Dict[str, Any] = {}
    if sections is not None and os.path.exists(path):
        try:
            with open(path) as fh:
                carried = json.load(fh)
        except (OSError, ValueError):
            carried = {}
    with open(path, "w") as fh:
        result = run(smoke=smoke, sections=sections)
        for name in SECTIONS:
            if name not in result and name in carried:
                result[name] = carried[name]
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="SOAP-binQ performance regression harness")
    parser.add_argument("--out", default="BENCH_headline.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--smoke", action="store_true",
                        help="fast mode (<30 s) for CI smoke runs")
    parser.add_argument("--sections", nargs="+", metavar="NAME",
                        choices=sorted(SECTIONS),
                        help="run only the named sections (e.g. "
                             "'--sections scaleout'); other sections are "
                             "carried over from an existing --out file")
    args = parser.parse_args(argv)
    try:
        result = write_report(args.out, smoke=args.smoke,
                              sections=args.sections)
    except OSError as exc:
        print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
        return 1
    ran = set(args.sections if args.sections else SECTIONS)
    print(f"wrote {args.out} ({result['mode']} mode, "
          f"sections: {' '.join(sorted(ran))})")
    if "codec" in ran:
        speed = result["codec"]["float64_array_10k_list"]
        print(f"  float64[10k] encode: {speed['encode_ops_s']:,.0f} ops/s "
              f"({speed['encode_speedup_vs_interp']:.1f}x over field walk)")
    if "xlate" in ran:
        xl = result["xlate"]["int32_array_10k"]
        print(f"  int32[10k] to_xml: {xl['to_xml_ops_s']:,.0f} ops/s "
              f"({xl['to_xml_speedup_vs_tree']:.1f}x over tree)")
    if "wire" in ran:
        small = result["wire"]["shapes"]["small_int_heavy"]
        stream = result["wire"]["streaming"]
        print(f"  wire compact: small-int {small['native_bytes']:,} -> "
              f"{small['compact_bytes']:,} bytes "
              f"({small['compact_shrink']:.1f}x smaller)")
        print(f"  wire streaming: {stream['payload_bytes'] >> 20} MiB "
              f"echoed, RSS +{stream['rss_growth_kb']} KiB "
              f"({stream['rss_growth_ratio']:.3f} of payload)")
    if "rpc" in ran:
        print(f"  rpc p50: "
              f"{result['rpc']['p50_call_latency_s'] * 1e3:.3f} ms")
    if "concurrency" in ran:
        conc = result["concurrency"]
        print(f"  pipelined depth-8: {conc['pipelined_depth8_ops_s']:,.0f} "
              f"ops/s ({conc['pipelined_depth8_speedup_vs_serial']:.1f}x "
              f"over serial)")
        hold = conc["idle_hold"]
        print(f"  {hold['connections_held']} idle conns held: active rpc "
              f"p50 {hold['active_p50_latency_s'] * 1e3:.3f} ms, "
              f"+{hold['threads_added']} threads")
    if "cache" in ran:
        ca = result["cache"]
        print(f"  quality cache: cold p50 "
              f"{ca['cold_p50_call_latency_s'] * 1e3:.3f} ms, hit p50 "
              f"{ca['hit_p50_call_latency_s'] * 1e3:.3f} ms "
              f"({ca['hit_speedup_vs_cold']:.1f}x), 304 p50 "
              f"{ca['not_modified_p50_s'] * 1e3:.3f} ms "
              f"({ca['not_modified_speedup_vs_full']:.1f}x over full)")
    if "scaleout" in ran:
        sc = result["scaleout"]
        print(f"  fleet ({sc['workers']} workers on {sc['cores']} cores, "
              f"{sc['mode']}): rpc {sc['fleet_rpc_ops_s']:,.0f} ops/s "
              f"({sc['scaling_efficiency']:.2f} efficiency), "
              f"pipelined depth-8 "
              f"{sc['fleet_pipelined_depth8_speedup_vs_serial']:.1f}x "
              f"over serial")
    return 0


if __name__ == "__main__":
    sys.exit(main())
