"""Benchmark harness: workload generators, timers, tables and the
figure/table computations behind ``benchmarks/``."""

from . import datagen, figures
from .tables import human_bytes, human_time, print_table, render_table
from .timers import jitter_stats, mean, measure, percentile, stdev

__all__ = [
    "datagen", "figures",
    "measure", "mean", "stdev", "percentile", "jitter_stats",
    "render_table", "print_table", "human_bytes", "human_time",
]
