"""Benchmark harness: workload generators, timers, tables and the
figure/table computations behind ``benchmarks/``.

Heavier machinery lives in submodules imported on demand (they pull in
transport/serving):

* :mod:`~repro.bench.regress` — the BENCH_headline.json regression run;
* :mod:`~repro.bench.gates` — the CI gate logic judging those reports;
* :mod:`~repro.bench.loadgen` — the multi-process load generator
  (``python -m repro.cli loadgen``) and its JSON/HTML reports.
"""

from . import datagen, figures
from .tables import human_bytes, human_time, print_table, render_table
from .timers import (LogHistogram, jitter_stats, mean, measure, percentile,
                     stdev)

__all__ = [
    "datagen", "figures",
    "measure", "mean", "stdev", "percentile", "jitter_stats",
    "LogHistogram",
    "render_table", "print_table", "human_bytes", "human_time",
]
