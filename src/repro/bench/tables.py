"""Plain-text table rendering for benchmark output.

Every figure-reproduction benchmark prints its series through these
helpers, so `pytest benchmarks/ --benchmark-only` output reads like the
paper's figures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.0001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[Cell]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[format_cell(c) for c in row]
                                 for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i])
                         for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in str_rows:
        out.append(line(row))
    return "\n".join(out)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                title: str = "") -> None:
    print()
    print(render_table(headers, rows, title))
    print()


def human_bytes(n: Union[int, float]) -> str:
    """1234567 -> '1.18 MiB'."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.2f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.2f} GiB"


def human_time(seconds: float) -> str:
    """0.00123 -> '1.23 ms'."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"
