"""Microbenchmark workload generators.

§IV-B: "Two sets of entirely different data types are used, one representing
scientific applications via arrays of different sizes, and a second
representing business applications via a nested structure of varying depth."
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

import numpy as np

from ..pbio import Format, FormatRegistry

#: Array element counts swept by the array microbenchmarks (int32 elements,
#: so the top of the sweep is a ~4 MB native payload / ~1M elements is
#: covered by the headline benchmark separately).
ARRAY_SIZES = [100, 1_000, 10_000, 100_000]

#: Nesting depths swept by the struct microbenchmarks.
STRUCT_DEPTHS = [1, 2, 4, 6, 8, 10]

ARRAY_FORMAT = Format.from_dict("ArrayMessage", {"data": "int32[]"})


def int_array_value(n: int, seed: int = 17) -> Dict[str, Any]:
    """An n-element int32 array message (the scientific workload)."""
    rng = np.random.default_rng(seed)
    return {"data": rng.integers(-1_000_000, 1_000_000, size=n,
                                 dtype=np.int32)}


def int_array_value_list(n: int, seed: int = 17) -> Dict[str, Any]:
    """Same workload as a plain Python list (pure-Python marshalling path)."""
    value = int_array_value(n, seed)
    return {"data": [int(v) for v in value["data"]]}


def register_array_format(registry: FormatRegistry) -> Format:
    registry.register(ARRAY_FORMAT)
    return ARRAY_FORMAT


def nested_struct_formats(depth: int) -> List[Format]:
    """Formats for a business record nested ``depth`` levels deep.

    Each level carries compact scalar fields plus the child struct — the
    numeric-heavy shape behind the paper's observation that nesting yields
    "a ninefold increase in the size of the XML document vs. the
    corresponding PBIO message" (tags wrap every field at every level,
    while PBIO pays 7 packed bytes per level).
    """
    formats = [Format.from_dict(
        "NestedL0", {"id": "int32", "flag": "uint8", "amount": "float64"})]
    for level in range(1, depth + 1):
        formats.append(Format.from_dict(
            f"NestedL{level}",
            {"id": "int32", "flag": "uint8", "seq": "int16",
             "child": f"struct NestedL{level - 1}"}))
    return formats


def register_nested_formats(registry: FormatRegistry,
                            depth: int) -> Format:
    """Register the chain and return the outermost format."""
    formats = nested_struct_formats(depth)
    for fmt in formats:
        registry.register(fmt)
    return formats[-1]


def nested_struct_value(depth: int, seed: int = 23) -> Dict[str, Any]:
    """A value for the depth-``depth`` nested format."""
    rng = random.Random(seed)

    def build(level: int) -> Dict[str, Any]:
        node: Dict[str, Any] = {
            "id": rng.randrange(100_000, 1_000_000),
            "flag": rng.randrange(2),
        }
        if level == 0:
            node["amount"] = round(rng.uniform(-1e6, 1e6), 2)
        else:
            node["seq"] = rng.randrange(10_000, 30_000)
            node["child"] = build(level - 1)
        return node

    return build(depth)


def wide_nested_struct_formats(depth: int, fanout: int = 3) -> List[Format]:
    """A bushier variant: each level holds ``fanout`` children of the next
    level down (array of structs).  Used by the struct-size ablation —
    document size grows exponentially with depth here."""
    formats = [Format.from_dict(
        "WideL0", {"id": "int32", "amount": "float64"})]
    for level in range(1, depth + 1):
        formats.append(Format.from_dict(
            f"WideL{level}",
            {"id": "int32",
             "children": f"struct WideL{level - 1}[{fanout}]"}))
    return formats


def wide_nested_struct_value(depth: int, fanout: int = 3,
                             seed: int = 29) -> Dict[str, Any]:
    rng = random.Random(seed)

    def build(level: int) -> Dict[str, Any]:
        if level == 0:
            return {"id": rng.randrange(1000), "amount": rng.random()}
        return {"id": rng.randrange(1000),
                "children": [build(level - 1) for _ in range(fanout)]}

    return build(depth)


def native_size_bytes(value: Any) -> int:
    """Approximate native size of a workload value (for reporting)."""
    if isinstance(value, np.ndarray):
        return value.nbytes
    if isinstance(value, dict):
        return sum(native_size_bytes(v) for v in value.values())
    if isinstance(value, list):
        return sum(native_size_bytes(v) for v in value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, float):
        return 8
    if isinstance(value, int):
        return 4
    return 0
