"""Command-line interface for the SOAP-binQ toolkit.

Mirrors the workflow of the original system's command-line WSDL compiler::

    python -m repro.cli compile service.wsdl --quality policy.q -o stubs.py
    python -m repro.cli validate service.wsdl
    python -m repro.cli quality-check policy.q
    python -m repro.cli figures table1 headline
    python -m repro.cli serve --port 8080
    python -m repro.cli loadgen --profile mixed --duration 10 --workers 2
    python -m repro.cli extract-serve --port 8080 --records 100000
    python -m repro.cli extract --target 127.0.0.1:8080 \\
        --checkpoint job.ckpt

``compile`` writes the generated client + skeleton stub source to a real
Python file (the paper's stub files); ``figures`` regenerates evaluation
tables without going through pytest; ``serve`` runs the quickstart echo
service on a real port.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__


class _CliParser(argparse.ArgumentParser):
    """Argument parser whose failures are one line, not a usage dump.

    With seven subcommands the stock multi-line usage block buries the
    actual problem; an unknown subcommand or flag prints the error plus
    a ``--help`` pointer and exits 2.  ``add_subparsers`` inherits this
    class, so nested parse errors behave the same way.
    """

    def error(self, message: str):
        self.exit(2, f"{self.prog}: error: {message} "
                     f"(run `{self.prog} --help` for usage)\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        return 130


def build_parser() -> argparse.ArgumentParser:
    parser = _CliParser(
        prog="repro-binq",
        description="SOAP-binQ reproduction toolkit (ICDCS 2004)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command")

    compile_cmd = sub.add_parser(
        "compile", help="compile WSDL (+ quality file) into Python stubs")
    compile_cmd.add_argument("wsdl", help="path to the WSDL file")
    compile_cmd.add_argument("--quality", help="path to a quality file")
    compile_cmd.add_argument("-o", "--out", default="-",
                             help="output path ('-' for stdout)")
    compile_cmd.set_defaults(handler=cmd_compile)

    validate_cmd = sub.add_parser("validate",
                                  help="parse and validate a WSDL file")
    validate_cmd.add_argument("wsdl", help="path to the WSDL file")
    validate_cmd.set_defaults(handler=cmd_validate)

    quality_cmd = sub.add_parser("quality-check",
                                 help="parse and validate a quality file")
    quality_cmd.add_argument("quality", help="path to the quality file")
    quality_cmd.set_defaults(handler=cmd_quality_check)

    figures_cmd = sub.add_parser(
        "figures", help="regenerate evaluation tables (fast subset)")
    figures_cmd.add_argument(
        "names", nargs="*",
        choices=["fig4", "table1", "headline", "remoteviz", "sizes"],
        help="which tables (default: table1 remoteviz sizes)")
    figures_cmd.set_defaults(handler=cmd_figures)

    serve_cmd = sub.add_parser(
        "serve", help="run the demo echo service on a real port")
    serve_cmd.add_argument("--port", type=int, default=0)
    serve_cmd.add_argument("--requests", type=int, default=0,
                           help="exit after N requests (0 = forever)")
    serve_cmd.add_argument("--wire", default="auto",
                           choices=["auto", "native", "compact"],
                           help="PBIO wire representation policy "
                                "(default: %(default)s)")
    serve_cmd.set_defaults(handler=cmd_serve)

    fleet_cmd = sub.add_parser(
        "serve-fleet",
        help="run the echo service on a prefork reactor fleet (one port, "
             "N worker processes)")
    fleet_cmd.add_argument("--port", type=int, default=0)
    fleet_cmd.add_argument("--workers", type=int, default=0,
                           help="worker processes (0 = os.cpu_count())")
    fleet_cmd.add_argument("--mode", default="auto",
                           choices=["auto", "reuseport", "handoff"],
                           help="accept distribution (default: auto)")
    fleet_cmd.add_argument("--control-port", type=int, default=0,
                           help="fleet /healthz control port (0 = any)")
    fleet_cmd.add_argument("--requests", type=int, default=0,
                           help="exit after N fleet-wide requests "
                                "(0 = forever)")
    fleet_cmd.set_defaults(handler=cmd_serve_fleet)

    loadgen_cmd = sub.add_parser(
        "loadgen",
        help="drive multi-process load at a server and write a "
             "LOADGEN_report.json + HTML report")
    from .bench.loadgen import add_arguments as _loadgen_arguments
    _loadgen_arguments(loadgen_cmd)
    loadgen_cmd.set_defaults(handler=cmd_loadgen)

    xserve_cmd = sub.add_parser(
        "extract-serve",
        help="host the resumable dataset-extraction service "
             "(see docs/extraction.md)")
    xserve_cmd.add_argument("--port", type=int, default=0)
    xserve_cmd.add_argument("--workers", type=int, default=1,
                            help="worker processes; >1 runs a prefork "
                                 "fleet (default: 1)")
    xserve_cmd.add_argument("--control-port", type=int, default=0,
                            help="fleet /healthz control port (0 = any)")
    xserve_cmd.add_argument("--records", type=int, default=100_000,
                            help="dataset records (default: %(default)s)")
    xserve_cmd.add_argument("--seed", type=int, default=1234)
    xserve_cmd.add_argument("--page-records", type=int, default=256,
                            dest="page_records",
                            help="default page size in records")
    xserve_cmd.add_argument("--pages", type=int, default=0,
                            help="exit after N pages served (0 = forever)")
    xserve_cmd.add_argument("--wire", default="auto",
                            choices=["auto", "native", "compact"],
                            help="PBIO wire representation policy "
                                 "(default: %(default)s)")
    xserve_cmd.set_defaults(handler=cmd_extract_serve)

    extract_cmd = sub.add_parser(
        "extract",
        help="run a checkpointed extraction job against an "
             "extract-serve target")
    extract_cmd.add_argument("--target", required=True,
                             metavar="HOST:PORT",
                             help="extract-serve address")
    extract_cmd.add_argument("--checkpoint", required=True,
                             help="checkpoint file (created on first run, "
                                  "resumed from afterwards)")
    extract_cmd.add_argument("--job-id", default="cli-extract",
                             dest="job_id")
    extract_cmd.add_argument("--page-records", type=int, default=256,
                             dest="page_records")
    extract_cmd.add_argument("--depth", type=int, default=8,
                             help="pipeline depth for page fetches")
    extract_cmd.add_argument("--out", default=None, metavar="JSON",
                             help="write the job report as JSON")
    extract_cmd.set_defaults(handler=cmd_extract)

    return parser


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------

def cmd_compile(args: argparse.Namespace) -> int:
    from .wsdl import WsdlCompiler, WsdlError

    try:
        with open(args.wsdl) as fh:
            compiler = WsdlCompiler.from_text(fh.read())
    except WsdlError as exc:
        print(f"WSDL error: {exc}", file=sys.stderr)
        return 1
    quality_note = ""
    if args.quality:
        from .core import parse_quality_file, QualityFileError
        with open(args.quality) as fh:
            quality_text = fh.read()
        try:
            policy = parse_quality_file(quality_text)
        except QualityFileError as exc:
            print(f"quality file error: {exc}", file=sys.stderr)
            return 1
        quality_note = (f"\n_QUALITY_TEXT = {quality_text!r}"
                        f"  # monitored attribute: {policy.attribute}\n")
    else:
        quality_note = "\n_QUALITY_TEXT = None\n"

    source = (f'"""Stubs generated by repro-binq from {args.wsdl}."""\n\n'
              f"from repro.pbio import FormatRegistry\n"
              f"_REGISTRY = FormatRegistry()\n"
              f"{quality_note}\n"
              + _registry_bootstrap(compiler)
              + "\n\n" + compiler.generate_client_source()
              + "\n\n" + compiler.generate_server_source())
    if args.out == "-":
        print(source)
    else:
        with open(args.out, "w") as fh:
            fh.write(source)
        interface = compiler.compile()
        print(f"wrote {args.out}: {len(interface.operations)} operations, "
              f"{len(compiler.registry)} formats")
    return 0


def _registry_bootstrap(compiler) -> str:
    """Source that re-registers every format into the stub's registry."""
    from .wsdl.compiler import WsdlCompiler  # noqa: F401 (doc reference)
    compiler.compile()
    lines = ["# format definitions (from the WSDL types/messages)",
             "from repro.pbio import Format as _Format"]
    for fmt in compiler.registry.formats():
        blob = fmt.to_wire()
        lines.append(f"_REGISTRY.register(_Format.from_wire({blob!r}))")
    return "\n".join(lines)


def cmd_validate(args: argparse.Namespace) -> int:
    from .wsdl import WsdlError, parse_wsdl

    with open(args.wsdl) as fh:
        text = fh.read()
    try:
        document = parse_wsdl(text)
    except WsdlError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    ops = document.all_operations()
    print(f"OK: service {document.name!r}, {len(document.types)} types, "
          f"{len(document.messages)} messages, {len(ops)} operations")
    for op in ops:
        print(f"  {op.name}({op.input_message}) -> {op.output_message}")
    return 0


def cmd_quality_check(args: argparse.Namespace) -> int:
    from .core import QualityFileError, parse_quality_file

    with open(args.quality) as fh:
        text = fh.read()
    try:
        policy = parse_quality_file(text)
    except QualityFileError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(f"OK: attribute {policy.attribute!r}, history {policy.history}, "
          f"{len(policy.rules)} rules")
    for rule in policy.rules:
        handler = policy.handler_for(rule.message_type) or "(projection)"
        print(f"  [{rule.lo:g}, {rule.hi:g}) -> {rule.message_type} "
              f"via {handler}")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from .bench import figures, print_table

    names = args.names or ["table1", "remoteviz", "sizes"]
    if "sizes" in names:
        costs = figures.array_workloads(sizes=[1000, 10000], repeat=1)
        print_table(
            ["workload", "PBIO B", "XML B", "XML/PBIO"],
            [[c.label, c.pbio_bytes, c.xml_bytes,
              c.xml_bytes / c.pbio_bytes] for c in costs],
            title="Representation sizes (arrays)")
    if "fig4" in names:
        from .netsim import lan_100mbps
        link = lan_100mbps(jitter_s=0.0)
        rows = figures.fig4_rows("structs", repeat=1)
        print_table(
            ["workload", "Sun RPC (ms)", "SOAP-bin (ms)"],
            [[r.label, r.overall("sunrpc", link) * 1e3,
              r.overall("soapbin", link) * 1e3] for r in rows],
            title="Fig. 4b — nested structs")
    if "table1" in names:
        rows = figures.table1_rows(repeat=2)
        print_table(
            ["protocol", "size B", "events/s"],
            [[r["protocol"], r["size_bytes"], r["events_per_sec"]]
             for r in rows],
            title="Table I — airline event rates (ADSL)")
    if "headline" in names:
        result = figures.headline_improvement(repeat=1)
        print_table(
            ["link", "improvement"],
            [[name, result[name]["factor"]] for name in figures.LINKS],
            title="Headline — 1 MiB message improvement")
    if "remoteviz" in names:
        result = figures.remoteviz_response(repeat=3)
        print_table(
            ["metric", "value"],
            [["response (us)", result["response_time_s"] * 1e6],
             ["SVG bytes", result["svg_bytes"]]],
            title="Remote visualization (100 Mbps)")
    return 0


def _build_echo_service(wire: str = "auto"):
    """The quickstart echo service (fresh registry + dispatcher)."""
    from .core import SoapBinService
    from .pbio import Format, FormatRegistry

    registry = FormatRegistry()
    req = Format.from_dict("EchoRequest", {"data": "float64[]",
                                           "tag": "string"})
    res = Format.from_dict("EchoResponse", {"data": "float64[]",
                                            "tag": "string",
                                            "count": "int32"})
    registry.register(req)
    registry.register(res)
    service = SoapBinService(registry, wire=wire)
    service.add_operation(
        "Echo", req, res,
        lambda p: {"data": p["data"], "tag": p["tag"],
                   "count": len(p["data"])})
    return service


def cmd_serve(args: argparse.Namespace) -> int:
    import time

    from .transport import serve_endpoint

    service = _build_echo_service(args.wire)
    server = serve_endpoint(service.endpoint, port=args.port)
    print(f"Echo service (binary + XML SOAP, wire={args.wire}) "
          f"on {server.url}")
    try:
        while True:
            if args.requests and server.requests_served >= args.requests:
                break
            time.sleep(0.05)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.close()
    print(f"served {server.requests_served} requests")
    return 0


def cmd_serve_fleet(args: argparse.Namespace) -> int:
    import time

    from .serving import FleetServer
    from .transport import endpoint_http_handler

    def handler_factory(ctx):
        # Runs inside the forked worker: each worker builds a fresh
        # service (own registry, own sessions) and learns client formats
        # through the normal announcement handshake.
        return endpoint_http_handler(_build_echo_service().endpoint)

    fleet = FleetServer(handler_factory,
                        workers=args.workers or None,
                        port=args.port, mode=args.mode,
                        control_port=args.control_port)
    served = 0
    try:
        if not fleet.wait_ready(15.0):
            print("error: fleet workers never became ready",
                  file=sys.stderr)
            return 1
        host, port = fleet.address
        chost, cport = fleet.control_address
        print(f"Echo fleet: {fleet.workers} workers on "
              f"http://{host}:{port} (mode={fleet.mode})")
        print(f"Fleet /healthz on http://{chost}:{cport}/healthz")
        while True:
            served = fleet.aggregate()["requests_served"]
            if args.requests and served >= args.requests:
                break
            time.sleep(0.05)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        fleet.close()
    print(f"served {served} requests across {fleet.workers} workers")
    return 0


def cmd_extract_serve(args: argparse.Namespace) -> int:
    import time

    from .apps.extract import ExtractService
    from .serving import AdmissionController, LoadQualityCoupling

    def build_app():
        return ExtractService(total=args.records, seed=args.seed,
                              page_records=args.page_records,
                              wire=args.wire)

    if args.workers > 1:
        from .serving import FleetServer
        from .transport import endpoint_http_handler

        def factory(ctx):
            # forked worker: fresh service; stateless cursors mean any
            # worker (including a post-crash respawn) serves any page
            app = build_app()
            admission = AdmissionController()
            coupling = LoadQualityCoupling(app.service.quality, admission,
                                           fleet_view=ctx.fleet_view)
            return (endpoint_http_handler(app.endpoint),
                    {"admission": admission, "load_coupling": coupling,
                     "quality_stats": app.quality_stats})

        fleet = FleetServer(factory, workers=args.workers, port=args.port,
                            control_port=args.control_port)
        served = 0
        try:
            if not fleet.wait_ready(20.0):
                print("error: fleet workers never became ready",
                      file=sys.stderr)
                return 1
            host, port = fleet.address
            chost, cport = fleet.control_address
            print(f"Extraction fleet: {fleet.workers} workers, "
                  f"{args.records} records on http://{host}:{port}")
            print(f"Fleet /healthz + /metrics on http://{chost}:{cport}")
            while True:
                served = fleet.aggregate().get("extract_pages_served", 0)
                if args.pages and served >= args.pages:
                    break
                time.sleep(0.05)
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
        finally:
            fleet.close()
        print(f"served {served} pages across {fleet.workers} workers")
        return 0

    from .transport import serve_endpoint
    app = build_app()
    admission = AdmissionController()
    coupling = LoadQualityCoupling(app.service.quality, admission)
    server = serve_endpoint(app.endpoint, concurrency="reactor",
                            port=args.port, admission=admission,
                            load_coupling=coupling,
                            quality_stats=app.quality_stats)
    print(f"Extraction service ({args.records} records) on {server.url}")
    try:
        while True:
            if args.pages and app.counters["pages_served"] >= args.pages:
                break
            time.sleep(0.05)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.close()
    print(f"served {app.counters['pages_served']} pages")
    return 0


def cmd_extract(args: argparse.Namespace) -> int:
    import json

    from .apps.extract_client import CheckpointError, JobError, JobRunner
    from .transport import PipelinedHttpChannel

    host, _, port_text = args.target.rpartition(":")
    try:
        address = (host or "127.0.0.1", int(port_text))
    except ValueError:
        print(f"error: --target must be HOST:PORT, got {args.target!r}",
              file=sys.stderr)
        return 2
    channel = PipelinedHttpChannel(address, depth=args.depth)
    try:
        runner = JobRunner(channel, args.checkpoint, job_id=args.job_id,
                           page_records=args.page_records)
        report = runner.run()
    except (JobError, CheckpointError) as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    finally:
        channel.close()
    resumed = " (resumed)" if report.resumed else ""
    print(f"extracted {report.records}/{report.total} records in "
          f"{report.pages} pages{resumed}: digest {report.digest}, "
          f"{report.pages_degraded} degraded, {report.retries} retries, "
          f"verified={report.verified}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0 if report.verified else 1


def cmd_loadgen(args: argparse.Namespace) -> int:
    from .bench.loadgen import (config_from_args, print_failures,
                                print_summary, serve_echo, write_report)

    cfg = config_from_args(args)
    if args.serve_only:
        return serve_echo(cfg, port=args.port)
    report = write_report(cfg, args.out)
    print_summary(report)
    return 1 if print_failures(report) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
