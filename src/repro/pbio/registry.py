"""Format registries: id assignment, lookup and caching.

Every PBIO transaction begins with a registration of the format with a
"format server" (§III-B).  The registry here is the in-process half of that
story: it assigns wire ids, deduplicates by fingerprint, and acts as the
local cache that makes every message after the first one cheap.  The
network-facing format server lives in :mod:`repro.pbio.server`.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .errors import FormatError, UnknownFormatError
from .fmt import Format


class FormatRegistry:
    """Thread-safe store of formats, keyed by id, name and fingerprint.

    Registration is idempotent: registering a structurally identical format
    returns the previously assigned id.  Registering a *different* format
    under an existing name is an error — formats are immutable contracts;
    the sanctioned escape hatch is :meth:`redefine`, which rebinds a name
    and invalidates every codec cache attached to this registry.

    The registry also owns the per-process codec caches: :attr:`compiler`
    is the shared :class:`~repro.pbio.compiler.CodecCompiler` every layer
    (sessions, conversion handlers, services) should reuse so a format is
    compiled once per process, and :attr:`converter_cache` memoizes the
    format-to-format converters of :mod:`repro.pbio.convert`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_id: Dict[int, Format] = {}
        self._by_name: Dict[str, Format] = {}
        self._id_by_fp: Dict[str, int] = {}
        self._next_id = 1
        #: Optional fallback consulted when an id is unknown locally —
        #: typically :meth:`repro.pbio.server.FormatClient.fetch`.
        self.resolver: Optional[Callable[[int], Optional[Format]]] = None
        #: compilers/planners whose caches must be dropped on :meth:`redefine`
        self._compilers: "weakref.WeakSet" = weakref.WeakSet()
        self._shared_compiler: Optional[Any] = None
        self._shared_xlate: Optional[Any] = None
        #: (src fingerprint, dst fingerprint) -> compiled converter
        self.converter_cache: Dict[Tuple[str, str], Callable] = {}
        #: bumped on every :meth:`redefine`; lets long-lived holders of
        #: compiled codecs notice staleness cheaply
        self.codec_epoch = 0

    # ------------------------------------------------------------------
    # codec cache plumbing
    # ------------------------------------------------------------------
    @property
    def compiler(self):
        """The shared codec compiler for this registry (created lazily)."""
        with self._lock:
            if self._shared_compiler is None:
                from .compiler import CodecCompiler
                self._shared_compiler = CodecCompiler(self)
            return self._shared_compiler

    @property
    def xlate(self):
        """The shared XML-plan cache for this registry (created lazily).

        Holds the compiled XML emitters/parsers of
        :mod:`repro.soap.xlate` — the streaming XML<->native fast path —
        beside the binary codec plans of :attr:`compiler`.  Both cache
        families are invalidated together by :meth:`redefine`.
        """
        with self._lock:
            if self._shared_xlate is None:
                from ..soap.xlate import XlatePlanner
                self._shared_xlate = XlatePlanner(self)
            return self._shared_xlate

    def _attach_compiler(self, compiler: Any) -> None:
        """Track ``compiler`` (anything with ``invalidate()``) so
        :meth:`redefine` can drop its caches."""
        self._compilers.add(compiler)

    # ------------------------------------------------------------------
    def register(self, fmt: Format) -> int:
        """Register ``fmt`` and return its wire id (idempotent)."""
        with self._lock:
            existing_id = self._id_by_fp.get(fmt.fingerprint)
            if existing_id is not None:
                return existing_id
            existing = self._by_name.get(fmt.name)
            if existing is not None and existing.fingerprint != fmt.fingerprint:
                raise FormatError(
                    f"format name {fmt.name!r} already registered with a "
                    f"different structure")
            fid = self._next_id
            self._next_id += 1
            self._by_id[fid] = fmt
            self._by_name[fmt.name] = fmt
            self._id_by_fp[fmt.fingerprint] = fid
            return fid

    def register_with_id(self, fmt: Format, fid: int) -> None:
        """Adopt a format under an id assigned elsewhere (wire handshake).

        Receivers use this when a sender announces ``(id, metadata)``; the
        sender's id space wins for that connection.
        """
        with self._lock:
            current = self._by_id.get(fid)
            if current is not None and current.fingerprint != fmt.fingerprint:
                raise FormatError(
                    f"format id {fid} already bound to {current.name!r}")
            self._by_id[fid] = fmt
            self._by_name.setdefault(fmt.name, fmt)
            self._id_by_fp.setdefault(fmt.fingerprint, fid)
            self._next_id = max(self._next_id, fid + 1)

    def redefine(self, fmt: Format) -> int:
        """Rebind ``fmt.name`` to a (possibly different) structure.

        Returns the wire id — the old name's id is reused so persistent
        sessions keep their id space — and invalidates every codec,
        XML-plan and converter cache attached to this registry, so the
        next ``compiler.encoder(...)`` / ``xlate.emitter(...)`` call
        recompiles against the new layout.
        Codec functions already held by callers keep the layout they were
        compiled for.
        """
        with self._lock:
            old = self._by_name.get(fmt.name)
            if old is None:
                fid = self._id_by_fp.get(fmt.fingerprint)
                if fid is None:
                    fid = self._next_id
                    self._next_id += 1
            else:
                fid = self._id_by_fp.pop(old.fingerprint, None)
                if fid is None:
                    fid = self._next_id
                    self._next_id += 1
            self._by_id[fid] = fmt
            self._by_name[fmt.name] = fmt
            self._id_by_fp[fmt.fingerprint] = fid
            self.codec_epoch += 1
            compilers = list(self._compilers)
            self.converter_cache.clear()
        for compiler in compilers:
            compiler.invalidate()
        return fid

    # ------------------------------------------------------------------
    def by_id(self, fid: int) -> Format:
        """Look up a format by wire id, consulting the resolver if set."""
        with self._lock:
            fmt = self._by_id.get(fid)
        if fmt is not None:
            return fmt
        if self.resolver is not None:
            fetched = self.resolver(fid)
            if fetched is not None:
                self.register_with_id(fetched, fid)
                return fetched
        raise UnknownFormatError(fid)

    def by_name(self, name: str) -> Format:
        with self._lock:
            fmt = self._by_name.get(name)
        if fmt is None:
            raise FormatError(f"no format named {name!r}")
        return fmt

    def has_id(self, fid: int) -> bool:
        with self._lock:
            return fid in self._by_id

    def has_name(self, name: str) -> bool:
        with self._lock:
            return name in self._by_name

    def id_of(self, fmt: Format) -> int:
        with self._lock:
            fid = self._id_by_fp.get(fmt.fingerprint)
        if fid is None:
            raise FormatError(f"format {fmt.name!r} not registered")
        return fid

    def formats(self) -> List[Format]:
        with self._lock:
            return list(self._by_id.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_id)

    def __iter__(self) -> Iterator[Format]:
        return iter(self.formats())

    def __contains__(self, name: str) -> bool:
        return self.has_name(name)


#: A process-wide default registry, used when callers do not care about
#: isolation (examples, quickstart).  Tests construct their own.
default_registry = FormatRegistry()
