"""PBIO formats: named, ordered collections of typed fields.

A :class:`Format` plays the role of an XML schema for binary data (§III-B of
the paper: "formats are similar to XML schemas, in that they define how data
is structured").  Formats are identified on the wire by a small integer id
assigned at registration time and globally by a content fingerprint, so two
independently created but structurally identical formats interoperate.

Format *metadata* can be serialized to a compact binary blob — that blob is
what travels to the format server during the one-time registration handshake
and back to receivers that encounter an unknown format id.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from .errors import DecodeError, FormatError
from .types import (Array, FieldType, Primitive, StructRef,
                    primitive_from_code, parse_type, struct_refs,
                    type_fingerprint_parts)

_META_MAGIC = b"PBFM"
_META_VERSION = 1


@dataclass(frozen=True)
class Field:
    """One named field of a format."""

    name: str
    ftype: FieldType

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise FormatError(f"invalid field name {self.name!r}")

    def describe(self) -> str:
        return f"{self.name}: {self.ftype.describe()}"


class Format:
    """An ordered, named list of fields.

    Instances are immutable once constructed; the fingerprint (a SHA-1 over
    the canonical structure) is computed eagerly and identifies the format
    across processes.
    """

    def __init__(self, name: str, fields: Iterable[Field]) -> None:
        if not name:
            raise FormatError("format name must be non-empty")
        self.name = name
        self.fields: Tuple[Field, ...] = tuple(fields)
        seen = set()
        for f in self.fields:
            if f.name in seen:
                raise FormatError(
                    f"duplicate field {f.name!r} in format {name!r}")
            seen.add(f.name)
        self.fingerprint = self._fingerprint()

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, name: str, spec: Dict[str, str]) -> "Format":
        """Build a format from ``{field_name: type_spec}``.

        >>> Format.from_dict("point", {"x": "float64", "y": "float64"}).name
        'point'
        """
        return cls(name, [Field(k, parse_type(v)) for k, v in spec.items()])

    def _fingerprint(self) -> str:
        parts = [self.name]
        for f in self.fields:
            parts.append(f.name)
            parts.append(repr(type_fingerprint_parts(f.ftype)))
        digest = hashlib.sha1("\x00".join(parts).encode("utf-8"))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    def field_names(self) -> List[str]:
        return [f.name for f in self.fields]

    def field(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(name)

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def referenced_formats(self) -> List[str]:
        """Names of all struct formats referenced (directly) by fields."""
        out: Dict[str, None] = {}
        for f in self.fields:
            out.update(struct_refs(f.ftype))
        return list(out)

    def describe(self) -> str:
        body = "; ".join(f.describe() for f in self.fields)
        return f"format {self.name} {{ {body} }}"

    def __repr__(self) -> str:
        return (f"<Format {self.name!r} fields={len(self.fields)} "
                f"fp={self.fingerprint[:8]}>")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Format):
            return NotImplemented
        return self.fingerprint == other.fingerprint

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    # ------------------------------------------------------------------
    # metadata wire serialization
    # ------------------------------------------------------------------
    def to_wire(self) -> bytes:
        """Serialize the format *definition* for the registration handshake."""
        out = [_META_MAGIC, struct.pack("<BB", _META_VERSION, 0)]
        out.append(_pack_str(self.name))
        out.append(struct.pack("<H", len(self.fields)))
        for f in self.fields:
            out.append(_pack_str(f.name))
            out.append(_pack_type(f.ftype))
        return b"".join(out)

    @classmethod
    def from_wire(cls, blob) -> "Format":
        """Inverse of :meth:`to_wire`.

        Accepts ``bytes``, ``bytearray`` or ``memoryview`` without copying;
        trailing bytes after the metadata are ignored.
        """
        fmt, _ = cls.from_wire_prefix(blob)
        return fmt

    @classmethod
    def from_wire_prefix(cls, blob) -> Tuple["Format", int]:
        """Parse one metadata blob at the head of ``blob``; returns the
        format and the number of bytes it occupied (stream framing)."""
        if len(blob) < 6:
            raise DecodeError("truncated format metadata header")
        if blob[:4] != _META_MAGIC:
            raise DecodeError("bad format metadata magic")
        version = blob[4]
        if version != _META_VERSION:
            raise DecodeError(f"unsupported format metadata version {version}")
        offset = 6
        name, offset = _unpack_str(blob, offset)
        if offset + 2 > len(blob):
            raise DecodeError("truncated format metadata")
        (nfields,) = struct.unpack_from("<H", blob, offset)
        offset += 2
        fields = []
        for _ in range(nfields):
            fname, offset = _unpack_str(blob, offset)
            ftype, offset = _unpack_type(blob, offset)
            fields.append(Field(fname, ftype))
        return cls(name, fields), offset


# ----------------------------------------------------------------------
# metadata encoding helpers
# ----------------------------------------------------------------------

_TAG_PRIM = 1
_TAG_FIXED_ARRAY = 2
_TAG_VAR_ARRAY = 3
_TAG_STRUCT = 4


def _pack_str(s: str) -> bytes:
    raw = s.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise FormatError("name too long")
    return struct.pack("<H", len(raw)) + raw


def _unpack_str(blob, offset: int) -> Tuple[str, int]:
    if offset + 2 > len(blob):
        raise DecodeError("truncated string in format metadata")
    (n,) = struct.unpack_from("<H", blob, offset)
    offset += 2
    if offset + n > len(blob):
        raise DecodeError("truncated string in format metadata")
    return bytes(blob[offset:offset + n]).decode("utf-8"), offset + n


def _pack_type(ftype: FieldType) -> bytes:
    if isinstance(ftype, Primitive):
        return struct.pack("<BB", _TAG_PRIM, ftype.code)
    if isinstance(ftype, Array):
        if ftype.length is not None:
            return (struct.pack("<BI", _TAG_FIXED_ARRAY, ftype.length)
                    + _pack_type(ftype.element))
        return struct.pack("<B", _TAG_VAR_ARRAY) + _pack_type(ftype.element)
    if isinstance(ftype, StructRef):
        return struct.pack("<B", _TAG_STRUCT) + _pack_str(ftype.format_name)
    raise FormatError(f"cannot serialize type {ftype!r}")


def _unpack_type(blob: bytes, offset: int) -> Tuple[FieldType, int]:
    if offset >= len(blob):
        raise DecodeError("truncated type in format metadata")
    tag = blob[offset]
    offset += 1
    if tag == _TAG_PRIM:
        if offset >= len(blob):
            raise DecodeError("truncated primitive code")
        return primitive_from_code(blob[offset]), offset + 1
    if tag == _TAG_FIXED_ARRAY:
        if offset + 4 > len(blob):
            raise DecodeError("truncated array length")
        (length,) = struct.unpack_from("<I", blob, offset)
        element, offset = _unpack_type(blob, offset + 4)
        return Array(element, length), offset
    if tag == _TAG_VAR_ARRAY:
        element, offset = _unpack_type(blob, offset)
        return Array(element, None), offset
    if tag == _TAG_STRUCT:
        name, offset = _unpack_str(blob, offset)
        return StructRef(name), offset
    raise DecodeError(f"unknown type tag {tag}")
