"""Dynamic code generation for PBIO encoders and decoders.

PBIO's defining trick is *dynamic code generation*: rather than interpreting
a format description for every message, it generates native conversion code
once per (format, endian) pair and runs that on the hot path.  This module
is the Python realization — for each format we generate Python source for a
specialized ``encode``/``decode`` function, compile it with :func:`compile`,
and cache the resulting function.

Three codec *plans* exist, picked at compile time:

``fixed``
    The single-pack fast path.  A format whose fields are all fixed-size
    primitives — including, recursively, nested structs of fixed-size
    primitives — compiles to exactly one precompiled :class:`struct.Struct`
    covering the whole message.  Encode is one ``pack`` call, decode is one
    ``unpack_from`` plus a dict literal; nested structs are flattened into
    the parent's layout, so a depth-10 business record costs one call, not
    eleven.

``general``
    Everything else.  Runs of consecutive fixed-size fields are collapsed
    into single precompiled :class:`struct.Struct` calls (nested fixed
    structs are still inlined into those runs), homogeneous primitive
    arrays take a single batch ``Struct(f"<{n}d")``-style call (or a NumPy
    bulk path), and variable-size fields (strings, ragged arrays, dynamic
    struct references) fall back to per-field logic.

``interp``
    The reference field-walk in :mod:`repro.pbio.interp`, used when the
    compiler is constructed with ``use_codegen=False`` (debugging,
    differential testing).

Encoders come in two shapes: ``encoder()`` returns the payload as one
``bytes``, ``encoder_parts()`` returns the un-joined list of buffers so
framing layers can do a single writev-style join with their headers instead
of re-copying the payload.

The generated code implements the PBIO wire encoding:

* fixed-size primitives — native-size two's complement / IEEE754, in the
  *sender's* byte order (the receiver converts: "receiver makes right"),
* ``string`` — u32 byte length + UTF-8 bytes,
* variable-length arrays — u32 element count + elements,
* fixed-length arrays — elements only (length is part of the format),
* nested structs — encoded inline, in field order.

Decoders accept any buffer supporting :func:`struct.unpack_from` —
``bytes``, ``bytearray`` or ``memoryview`` — without copying.
"""

from __future__ import annotations

import struct
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep in practice
    _np = None

from .errors import DecodeError, EncodeError, FormatError
from .fmt import Format
from .interp import (_INT_RANGES, decode_uvarint, encode_uvarint,
                     interp_decode, interp_decode_compact, interp_encode,
                     interp_encode_compact)
from .registry import FormatRegistry
from .types import Array, FieldType, Primitive, StructRef

LITTLE = "<"
BIG = ">"

_NP_CHARS = {
    "b": "i1", "h": "i2", "i": "i4", "q": "i8",
    "B": "u1", "H": "u2", "I": "u4", "Q": "u8",
    "f": "f4", "d": "f8",
}

EncodeFn = Callable[[Dict[str, Any]], bytes]
EncodePartsFn = Callable[[Dict[str, Any]], List[bytes]]
DecodeFn = Callable[[Any, int], Tuple[Dict[str, Any], int]]


# ----------------------------------------------------------------------
# runtime helpers referenced from generated code
# ----------------------------------------------------------------------

@lru_cache(maxsize=512)
def _array_struct(endian: str, count: int, char: str) -> struct.Struct:
    """Precompiled batch codec for ``count`` homogeneous elements."""
    return struct.Struct(f"{endian}{count}{char}")


def _pack_prim_array(values: Any, char: str, endian: str) -> bytes:
    """Bulk-encode an array of one primitive kind.

    NumPy arrays are serialized with a single dtype cast + ``tobytes`` —
    this is what makes the 1 MB-image benchmarks representative.  Plain
    sequences go through one precompiled batch :class:`struct.Struct`.
    """
    if char == "c":
        if isinstance(values, str):
            raw = values.encode("latin-1")
        elif isinstance(values, (bytes, bytearray)):
            raw = bytes(values)
        else:
            raw = "".join(values).encode("latin-1")
        return raw
    if _np is not None and isinstance(values, _np.ndarray):
        dtype = _np.dtype(endian + _NP_CHARS[char])
        return values.astype(dtype, copy=False).tobytes()
    try:
        return _array_struct(endian, len(values), char).pack(*values)
    except struct.error as exc:
        raise EncodeError(f"bad array value: {exc}")


def _unpack_prim_array(buf: Any, off: int, char: str, count: int,
                       endian: str) -> Tuple[Any, int]:
    """Bulk-decode ``count`` primitives starting at ``off`` (zero-copy for
    the NumPy path: the returned array is a view over ``buf``)."""
    if char == "c":
        end = off + count
        if end > len(buf):
            raise DecodeError("truncated char array")
        return bytes(buf[off:end]).decode("latin-1"), end
    size = struct.calcsize(char) * count
    end = off + size
    if end > len(buf):
        raise DecodeError("truncated primitive array")
    if _np is not None and count >= 64 and char in _NP_CHARS:
        dtype = _np.dtype(endian + _NP_CHARS[char])
        arr = _np.frombuffer(buf, dtype=dtype, count=count, offset=off)
        return arr, end
    values = list(_array_struct(endian, count, char).unpack_from(buf, off))
    return values, end


def _pack_string(value: str) -> bytes:
    raw = value.encode("utf-8")
    return struct.pack("<I", len(raw)) + raw


def _unpack_string(buf: Any, off: int) -> Tuple[str, int]:
    if off + 4 > len(buf):
        raise DecodeError("truncated string length")
    (n,) = struct.unpack_from("<I", buf, off)
    off += 4
    if off + n > len(buf):
        raise DecodeError("truncated string body")
    return bytes(buf[off:off + n]).decode("utf-8"), off + n


def _check_len(values: Any, expected: int, field: str) -> Any:
    if len(values) != expected:
        raise EncodeError(
            f"field {field!r}: expected {expected} elements, "
            f"got {len(values)}")
    return values


# ----------------------------------------------------------------------
# runtime helpers for the compact (varint/zigzag) plan
# ----------------------------------------------------------------------

def _pack_compact_string(value: str) -> bytes:
    raw = value.encode("utf-8")
    return encode_uvarint(len(raw)) + raw


def _unpack_compact_string(buf: Any, off: int) -> Tuple[str, int]:
    n, off = decode_uvarint(buf, off)
    if off + n > len(buf):
        raise DecodeError("truncated string body")
    return bytes(buf[off:off + n]).decode("utf-8"), off + n


@lru_cache(maxsize=64)
def _compact_int_encoder(kind: str) -> Callable[[Any], bytes]:
    """A specialized scalar varint encoder for one integer kind."""
    lo, hi = _INT_RANGES[kind]
    signed = kind[0] == "i"

    def enc(value: Any) -> bytes:
        try:
            n = value.__index__()
        except (AttributeError, TypeError):
            raise EncodeError(
                f"required an integer for {kind}, got "
                f"{type(value).__name__}")
        if not lo <= n <= hi:
            raise EncodeError(f"{n} out of range for {kind}")
        if signed:
            n = (n << 1) ^ (n >> 63)
        out = bytearray()
        while n > 0x7F:
            out.append((n & 0x7F) | 0x80)
            n >>= 7
        out.append(n)
        return bytes(out)

    return enc


@lru_cache(maxsize=64)
def _compact_int_decoder(kind: str) -> Callable[[Any, int], Tuple[int, int]]:
    """A specialized scalar varint decoder for one integer kind."""
    lo, hi = _INT_RANGES[kind]
    signed = kind[0] == "i"

    def dec(buf: Any, off: int) -> Tuple[int, int]:
        u, off = decode_uvarint(buf, off)
        n = ((u >> 1) ^ -(u & 1)) if signed else u
        if not lo <= n <= hi:
            raise DecodeError(f"{n} out of range for {kind}")
        return n, off

    return dec


def _pack_compact_int_array(values: Any, kind: str) -> bytes:
    """Bulk varint-encode an array of one integer kind."""
    lo, hi = _INT_RANGES[kind]
    signed = kind[0] == "i"
    if _np is not None and isinstance(values, _np.ndarray):
        values = values.tolist()
    out = bytearray()
    append = out.append
    for value in values:
        try:
            n = value.__index__()
        except (AttributeError, TypeError):
            raise EncodeError(
                f"required an integer for {kind}, got "
                f"{type(value).__name__}")
        if not lo <= n <= hi:
            raise EncodeError(f"{n} out of range for {kind}")
        if signed:
            n = (n << 1) ^ (n >> 63)
        while n > 0x7F:
            append((n & 0x7F) | 0x80)
            n >>= 7
        append(n)
    return bytes(out)


def _unpack_compact_int_array(buf: Any, off: int, kind: str,
                              count: int) -> Tuple[List[int], int]:
    """Bulk varint-decode ``count`` integers of one kind."""
    lo, hi = _INT_RANGES[kind]
    signed = kind[0] == "i"
    values: List[int] = []
    append = values.append
    end = len(buf)
    for _ in range(count):
        result = 0
        shift = 0
        while True:
            if off >= end:
                raise DecodeError("truncated varint")
            byte = buf[off]
            off += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift >= 70:
                raise DecodeError("varint longer than 10 bytes")
        if result >> 64:
            raise DecodeError("varint exceeds 64 bits")
        n = ((result >> 1) ^ -(result & 1)) if signed else result
        if not lo <= n <= hi:
            raise DecodeError(f"{n} out of range for {kind}")
        append(n)
    return values, off


# ----------------------------------------------------------------------
# flat-plan analysis
# ----------------------------------------------------------------------

def flatten_fixed_format(fmt: Format, registry: Optional[FormatRegistry],
                         _visiting: Optional[frozenset] = None
                         ) -> Optional[List[Tuple[Tuple[str, ...], str]]]:
    """The flat plan of a fixed-layout format, or ``None``.

    A format has a fixed layout when every field is a fixed-size primitive
    or a nested struct that itself has a fixed layout.  The plan is the
    ordered list of ``(field path, struct char)`` leaves — exactly the
    arguments of the single :class:`struct.Struct` that covers the whole
    message.  Strings, arrays and unresolvable/recursive struct references
    make the format dynamic (``None``): those stay on the general plan.
    """
    if not fmt.fields:
        return None
    visiting = (_visiting or frozenset()) | {fmt.name}
    leaves: List[Tuple[Tuple[str, ...], str]] = []
    for f in fmt.fields:
        sub = _flatten_fixed_type(f.ftype, registry, visiting)
        if sub is None:
            return None
        leaves.extend(((f.name,) + path, char) for path, char in sub)
    return leaves


def _flatten_fixed_type(ftype: FieldType, registry: Optional[FormatRegistry],
                        visiting: frozenset
                        ) -> Optional[List[Tuple[Tuple[str, ...], str]]]:
    if isinstance(ftype, Primitive):
        if not ftype.is_fixed:
            return None
        return [((), ftype.struct_char)]
    if isinstance(ftype, StructRef):
        if registry is None or ftype.format_name in visiting:
            return None
        try:
            sub_fmt = registry.by_name(ftype.format_name)
        except FormatError:
            return None
        return flatten_fixed_format(sub_fmt, registry, visiting)
    return None


def _dict_expr(leaves: List[Tuple[Tuple[str, ...], str]]) -> str:
    """A nested dict-literal expression rebuilding values from leaf targets.

    ``leaves`` pairs each field path with the local variable holding its
    decoded value, in format field order.
    """
    order: List[Tuple[str, Optional[str]]] = []
    groups: Dict[str, List[Tuple[Tuple[str, ...], str]]] = {}
    for path, target in leaves:
        head = path[0]
        if len(path) == 1:
            order.append((head, target))
        else:
            if head not in groups:
                order.append((head, None))
                groups[head] = []
            groups[head].append((path[1:], target))
    parts = []
    for head, target in order:
        if target is not None:
            parts.append(f"{head!r}: {target}")
        else:
            parts.append(f"{head!r}: {_dict_expr(groups[head])}")
    return "{" + ", ".join(parts) + "}"


# ----------------------------------------------------------------------
# source generation
# ----------------------------------------------------------------------

class _SourceBuilder:
    """Accumulates generated source with struct-batching of fixed fields."""

    def __init__(self, endian: str) -> None:
        self.endian = endian
        self.lines: List[str] = []
        self.namespace: Dict[str, Any] = {
            "_struct": struct,
            "_pack_prim_array": _pack_prim_array,
            "_unpack_prim_array": _unpack_prim_array,
            "_pack_string": _pack_string,
            "_unpack_string": _unpack_string,
            "_check_len": _check_len,
            "_EncodeError": EncodeError,
            "_DecodeError": DecodeError,
        }
        self._counter = 0

    def emit(self, line: str, depth: int = 1) -> None:
        self.lines.append("    " * depth + line)

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"_{prefix}{self._counter}"

    def add_const(self, prefix: str, value: Any) -> str:
        name = self.fresh(prefix)
        self.namespace[name] = value
        return name

    def compile(self, func_name: str, filename: str) -> Callable:
        source = "\n".join(self.lines)
        code = compile(source, filename, "exec")
        exec(code, self.namespace)
        fn = self.namespace[func_name]
        fn.__pbio_source__ = source  # kept for introspection / debugging
        return fn


class _EncodeBatch:
    """A pending run of fixed-size encode expressions."""

    def __init__(self, sb: _SourceBuilder) -> None:
        self.sb = sb
        self.items: List[Tuple[str, str]] = []  # (struct char, value expr)

    def add(self, char: str, expr: str) -> None:
        self.items.append((char, expr))

    def flush(self, depth: int) -> None:
        if not self.items:
            return
        chars = "".join(c for c, _ in self.items)
        packer = self.sb.add_const("s", struct.Struct(self.sb.endian + chars))
        exprs = ", ".join(e for _, e in self.items)
        self.sb.emit(f"_a({packer}.pack({exprs}))", depth)
        self.items.clear()


class _DecodeBatch:
    """A pending run of fixed-size decode targets, plus deferred lines that
    must run right after the batch unpacks (nested-struct dict rebuilds)."""

    def __init__(self, sb: _SourceBuilder) -> None:
        self.sb = sb
        self.items: List[Tuple[str, str]] = []  # (struct char, target name)
        self.post: List[str] = []

    def add(self, char: str, target: str) -> None:
        self.items.append((char, target))

    def add_post(self, line: str) -> None:
        self.post.append(line)

    def flush(self, depth: int) -> None:
        if self.items:
            chars = "".join(c for c, _ in self.items)
            unpacker = self.sb.add_const(
                "s", struct.Struct(self.sb.endian + chars))
            targets = ", ".join(t for _, t in self.items)
            trailing = "," if len(self.items) == 1 else ""
            self.sb.emit(
                f"{targets}{trailing} = {unpacker}.unpack_from(_buf, _off)",
                depth)
            # decode chars from bytes to 1-char strings
            for c, t in self.items:
                if c == "c":
                    self.sb.emit(f"{t} = {t}.decode('latin-1')", depth)
            self.sb.emit(f"_off += {unpacker}.size", depth)
            self.items.clear()
        for line in self.post:
            self.sb.emit(line, depth)
        self.post.clear()


class CodecCompiler:
    """Compiles and caches encode/decode functions per (format, endian).

    One compiler is typically shared per registry (see
    :attr:`FormatRegistry.compiler`); nested struct fields resolve their
    sub-codecs lazily through the compiler so that formats can be
    registered in any order.  The caches are invalidated when the registry
    redefines a format (:meth:`FormatRegistry.redefine`).

    ``use_codegen=False`` swaps every codec for the reference interpreter —
    the slow path — which is handy for differential tests and debugging
    generated code.
    """

    def __init__(self, registry: FormatRegistry,
                 use_codegen: bool = True) -> None:
        self.registry = registry
        self.use_codegen = use_codegen
        self._encoders: Dict[Tuple[str, str], EncodeFn] = {}
        self._encoder_parts: Dict[Tuple[str, str], EncodePartsFn] = {}
        self._decoders: Dict[Tuple[str, str], DecodeFn] = {}
        # compact plans are endianness-independent: keyed by fingerprint only
        self._compact_encoders: Dict[str, EncodeFn] = {}
        self._compact_encoder_parts: Dict[str, EncodePartsFn] = {}
        self._compact_decoders: Dict[str, DecodeFn] = {}
        attach = getattr(registry, "_attach_compiler", None)
        if attach is not None:
            attach(self)

    # ------------------------------------------------------------------
    def encoder(self, fmt: Format, endian: str = LITTLE) -> EncodeFn:
        """Return (compiling if needed) the encode function for ``fmt``."""
        key = (fmt.fingerprint, endian)
        fn = self._encoders.get(key)
        if fn is None:
            self._build_encoders(fmt, endian)
            fn = self._encoders[key]
        return fn

    def encoder_parts(self, fmt: Format,
                      endian: str = LITTLE) -> EncodePartsFn:
        """Like :meth:`encoder` but the function returns the un-joined list
        of buffers, for writev-style framing."""
        key = (fmt.fingerprint, endian)
        fn = self._encoder_parts.get(key)
        if fn is None:
            self._build_encoders(fmt, endian)
            fn = self._encoder_parts[key]
        return fn

    def decoder(self, fmt: Format, endian: str = LITTLE) -> DecodeFn:
        """Return the decode function for ``fmt`` with payload ``endian``."""
        key = (fmt.fingerprint, endian)
        fn = self._decoders.get(key)
        if fn is None:
            fn = self._compile_decoder(fmt, endian)
            self._decoders[key] = fn
        return fn

    def compact_encoder(self, fmt: Format, endian: str = LITTLE) -> EncodeFn:
        """The compact (varint/zigzag) encode function for ``fmt``.

        The compact representation is endianness-independent; ``endian``
        is accepted for interface symmetry and ignored.
        """
        fn = self._compact_encoders.get(fmt.fingerprint)
        if fn is None:
            self._build_compact_encoders(fmt)
            fn = self._compact_encoders[fmt.fingerprint]
        return fn

    def compact_encoder_parts(self, fmt: Format,
                              endian: str = LITTLE) -> EncodePartsFn:
        """Like :meth:`compact_encoder` but returning un-joined buffers."""
        fn = self._compact_encoder_parts.get(fmt.fingerprint)
        if fn is None:
            self._build_compact_encoders(fmt)
            fn = self._compact_encoder_parts[fmt.fingerprint]
        return fn

    def compact_decoder(self, fmt: Format, endian: str = LITTLE) -> DecodeFn:
        """The compact (varint/zigzag) decode function for ``fmt``."""
        fn = self._compact_decoders.get(fmt.fingerprint)
        if fn is None:
            fn = self._compile_compact_decoder(fmt)
            self._compact_decoders[fmt.fingerprint] = fn
        return fn

    def invalidate(self) -> None:
        """Drop every cached codec (a registry format was redefined).

        Functions already handed out keep encoding the layout they were
        compiled for; fetch codecs through the compiler after a
        redefinition to pick up the new layout.
        """
        self._encoders.clear()
        self._encoder_parts.clear()
        self._decoders.clear()
        self._compact_encoders.clear()
        self._compact_encoder_parts.clear()
        self._compact_decoders.clear()

    # ------------------------------------------------------------------
    # encoder generation
    # ------------------------------------------------------------------
    def _build_encoders(self, fmt: Format, endian: str) -> None:
        key = (fmt.fingerprint, endian)
        if not self.use_codegen:
            registry = self.registry

            def encode(value: Dict[str, Any]) -> bytes:
                return interp_encode(fmt, value, registry, endian)

            encode.__pbio_plan__ = "interp"
            self._encoders[key] = encode
            self._encoder_parts[key] = lambda value: [encode(value)]
            return
        leaves = flatten_fixed_format(fmt, self.registry)
        if leaves is not None:
            self._compile_fixed_encoder(fmt, endian, leaves)
        else:
            self._compile_general_encoder(fmt, endian)

    def _compile_fixed_encoder(self, fmt: Format, endian: str,
                               leaves: List[Tuple[Tuple[str, ...], str]]
                               ) -> None:
        sb = _SourceBuilder(endian)
        chars = "".join(char for _, char in leaves)
        packer = sb.add_const("s", struct.Struct(endian + chars))
        exprs = ", ".join(_leaf_encode_expr("_v", path, char)
                          for path, char in leaves)
        for name, ret in (("_encode", f"return {packer}.pack({exprs})"),
                          ("_encode_parts",
                           f"return [{packer}.pack({exprs})]")):
            sb.emit(f"def {name}(_v):", 0)
            sb.emit("try:")
            sb.emit(ret, 2)
            sb.emit("except KeyError as _e:")
            sb.emit("raise _EncodeError(" +
                    repr(f"format {fmt.name!r}: missing field ") +
                    " + str(_e))", 2)
            sb.emit("except (_struct.error, TypeError, AttributeError) "
                    "as _e:")
            sb.emit("raise _EncodeError(" +
                    repr(f"format {fmt.name!r}: ") + " + str(_e))", 2)
        fn = sb.compile("_encode", f"<pbio-encode:{fmt.name}>")
        parts_fn = sb.namespace["_encode_parts"]
        fn.__pbio_plan__ = parts_fn.__pbio_plan__ = "fixed"
        key = (fmt.fingerprint, endian)
        self._encoders[key] = fn
        self._encoder_parts[key] = parts_fn

    def _compile_general_encoder(self, fmt: Format, endian: str) -> None:
        sb = _SourceBuilder(endian)
        sb.emit("def _encode_parts(_v):", 0)
        sb.emit("_out = []")
        sb.emit("_a = _out.append")
        sb.emit("try:")
        sb.emit("pass", 2)
        batch = _EncodeBatch(sb)
        for f in fmt.fields:
            self._gen_encode_field(sb, f.name, f"_v[{f.name!r}]", f.ftype,
                                   batch, depth=2)
        batch.flush(2)
        sb.emit("except KeyError as _e:")
        sb.emit("raise _EncodeError(" +
                repr(f"format {fmt.name!r}: missing field ") +
                " + str(_e))", 2)
        sb.emit("except (_struct.error, TypeError, AttributeError) as _e:")
        sb.emit("raise _EncodeError(" +
                repr(f"format {fmt.name!r}: ") + " + str(_e))", 2)
        body = sb.lines[1:]
        sb.emit("return _out")
        sb.emit("def _encode(_v):", 0)
        sb.lines.extend(body)
        sb.emit("return b''.join(_out)")
        fn = sb.compile("_encode", f"<pbio-encode:{fmt.name}>")
        parts_fn = sb.namespace["_encode_parts"]
        parts_fn.__pbio_source__ = fn.__pbio_source__
        fn.__pbio_plan__ = parts_fn.__pbio_plan__ = "general"
        key = (fmt.fingerprint, endian)
        self._encoders[key] = fn
        self._encoder_parts[key] = parts_fn

    def _gen_encode_field(self, sb: _SourceBuilder, fname: str, src: str,
                          ftype: FieldType, batch: _EncodeBatch,
                          depth: int) -> None:
        if isinstance(ftype, Primitive):
            if ftype.kind == "string":
                batch.flush(depth)
                sb.emit(f"_a(_pack_string({src}))", depth)
            elif ftype.kind == "char":
                batch.add("c", f"{src}.encode('latin-1')")
            else:
                batch.add(ftype.struct_char, src)
            return
        if isinstance(ftype, Array):
            batch.flush(depth)
            var = sb.fresh("arr")
            sb.emit(f"{var} = {src}", depth)
            if ftype.length is not None:
                sb.emit(f"_check_len({var}, {ftype.length}, {fname!r})", depth)
            else:
                lp = sb.add_const("lp", struct.Struct("<I"))
                sb.emit(f"_a({lp}.pack(len({var})))", depth)
            el = ftype.element
            if isinstance(el, Primitive) and el.is_fixed:
                sb.emit(f"_a(_pack_prim_array({var}, {el.struct_char!r}, "
                        f"{sb.endian!r}))", depth)
            else:
                item = sb.fresh("it")
                sb.emit(f"for {item} in {var}:", depth)
                inner = _EncodeBatch(sb)
                self._gen_encode_field(sb, fname, item, el, inner, depth + 1)
                inner.flush(depth + 1)
            return
        if isinstance(ftype, StructRef):
            inlined = self._inline_struct_leaves(ftype)
            if inlined is not None:
                for path, char in inlined:
                    batch.add(char, _leaf_encode_expr(src, path, char))
                return
            batch.flush(depth)
            sub = sb.add_const("sub", _LazyCodec(self, ftype.format_name,
                                                 sb.endian, "encoder"))
            sb.emit(f"_a({sub}({src}))", depth)
            return
        raise FormatError(f"cannot encode type {ftype!r}")

    def _inline_struct_leaves(self, ftype: StructRef
                              ) -> Optional[List[Tuple[Tuple[str, ...], str]]]:
        """The flat plan of a referenced struct, if it has a fixed layout
        and is already registered — lets mixed formats keep nested fixed
        structs inside a single pack/unpack run."""
        try:
            sub_fmt = self.registry.by_name(ftype.format_name)
        except FormatError:
            return None
        return flatten_fixed_format(sub_fmt, self.registry)

    # ------------------------------------------------------------------
    # decoder generation
    # ------------------------------------------------------------------
    def _compile_decoder(self, fmt: Format, endian: str) -> DecodeFn:
        if not self.use_codegen:
            registry = self.registry

            def decode(buf: Any, off: int) -> Tuple[Dict[str, Any], int]:
                return interp_decode(fmt, buf, off, registry, endian)

            decode.__pbio_plan__ = "interp"
            return decode
        leaves = flatten_fixed_format(fmt, self.registry)
        if leaves is not None:
            return self._compile_fixed_decoder(fmt, endian, leaves)
        return self._compile_general_decoder(fmt, endian)

    def _compile_fixed_decoder(self, fmt: Format, endian: str,
                               leaves: List[Tuple[Tuple[str, ...], str]]
                               ) -> DecodeFn:
        sb = _SourceBuilder(endian)
        unpacker_struct = struct.Struct(
            endian + "".join(char for _, char in leaves))
        unpacker = sb.add_const("s", unpacker_struct)
        pairs = [(path, f"_f{i}") for i, (path, _) in enumerate(leaves)]
        targets = ", ".join(t for _, t in pairs)
        trailing = "," if len(pairs) == 1 else ""
        sb.emit("def _decode(_buf, _off):", 0)
        sb.emit("try:")
        sb.emit(f"{targets}{trailing} = {unpacker}.unpack_from(_buf, _off)",
                2)
        sb.emit("except _struct.error as _e:")
        sb.emit("raise _DecodeError(" +
                repr(f"format {fmt.name!r}: truncated message: ") +
                " + str(_e))", 2)
        for (_, char), (_, target) in zip(leaves, pairs):
            if char == "c":
                sb.emit(f"{target} = {target}.decode('latin-1')")
        sb.emit(f"return {_dict_expr(pairs)}, _off + {unpacker_struct.size}")
        fn = sb.compile("_decode", f"<pbio-decode:{fmt.name}>")
        fn.__pbio_plan__ = "fixed"
        return fn

    def _compile_general_decoder(self, fmt: Format, endian: str) -> DecodeFn:
        sb = _SourceBuilder(endian)
        sb.emit("def _decode(_buf, _off):", 0)
        sb.emit("_v = {}")
        sb.emit("try:")
        sb.emit("pass", 2)
        batch = _DecodeBatch(sb)
        tmp_targets: Dict[str, str] = {}
        for f in fmt.fields:
            target = sb.fresh("f")
            tmp_targets[f.name] = target
            self._gen_decode_field(sb, f.name, target, f.ftype, batch,
                                   depth=2)
        batch.flush(2)
        for fname, target in tmp_targets.items():
            sb.emit(f"_v[{fname!r}] = {target}", 2)
        sb.emit("except _struct.error as _e:")
        sb.emit("raise _DecodeError(" +
                repr(f"format {fmt.name!r}: truncated message: ") +
                " + str(_e))", 2)
        sb.emit("return _v, _off")
        fn = sb.compile("_decode", f"<pbio-decode:{fmt.name}>")
        fn.__pbio_plan__ = "general"
        return fn

    def _gen_decode_field(self, sb: _SourceBuilder, fname: str, target: str,
                          ftype: FieldType, batch: _DecodeBatch,
                          depth: int) -> None:
        if isinstance(ftype, Primitive):
            if ftype.kind == "string":
                batch.flush(depth)
                sb.emit(f"{target}, _off = _unpack_string(_buf, _off)", depth)
            else:
                batch.add(ftype.struct_char, target)
            return
        if isinstance(ftype, Array):
            batch.flush(depth)
            if ftype.length is not None:
                count_expr = str(ftype.length)
            else:
                lp = sb.add_const("lp", struct.Struct("<I"))
                cnt = sb.fresh("n")
                sb.emit(f"({cnt},) = {lp}.unpack_from(_buf, _off)", depth)
                sb.emit("_off += 4", depth)
                count_expr = cnt
            el = ftype.element
            if isinstance(el, Primitive) and el.is_fixed:
                sb.emit(f"{target}, _off = _unpack_prim_array(_buf, _off, "
                        f"{el.struct_char!r}, {count_expr}, {sb.endian!r})",
                        depth)
            else:
                sb.emit(f"{target} = []", depth)
                idx = sb.fresh("i")
                sb.emit(f"for {idx} in range({count_expr}):", depth)
                item = sb.fresh("e")
                inner = _DecodeBatch(sb)
                self._gen_decode_field(sb, fname, item, el, inner, depth + 1)
                inner.flush(depth + 1)
                sb.emit(f"{target}.append({item})", depth + 1)
            return
        if isinstance(ftype, StructRef):
            inlined = self._inline_struct_leaves(ftype)
            if inlined is not None:
                pairs = []
                for path, char in inlined:
                    leaf = sb.fresh("g")
                    batch.add(char, leaf)
                    pairs.append((path, leaf))
                batch.add_post(f"{target} = {_dict_expr(pairs)}")
                return
            batch.flush(depth)
            sub = sb.add_const("sub", _LazyCodec(self, ftype.format_name,
                                                 sb.endian, "decoder"))
            sb.emit(f"{target}, _off = {sub}(_buf, _off)", depth)
            return
        raise FormatError(f"cannot decode type {ftype!r}")

    # ------------------------------------------------------------------
    # compact (varint/zigzag) plan generation
    # ------------------------------------------------------------------
    def _compact_source_builder(self) -> _SourceBuilder:
        """A source builder whose struct batches (floats, chars) are
        little-endian — the compact plan's one fixed-layout byte order."""
        sb = _SourceBuilder(LITTLE)
        sb.namespace.update({
            "_uv": encode_uvarint,
            "_duv": decode_uvarint,
            "_pack_compact_string": _pack_compact_string,
            "_unpack_compact_string": _unpack_compact_string,
            "_pack_compact_int_array": _pack_compact_int_array,
            "_unpack_compact_int_array": _unpack_compact_int_array,
        })
        return sb

    def _build_compact_encoders(self, fmt: Format) -> None:
        key = fmt.fingerprint
        if not self.use_codegen:
            registry = self.registry

            def encode(value: Dict[str, Any]) -> bytes:
                return interp_encode_compact(fmt, value, registry)

            encode.__pbio_plan__ = "interp"
            self._compact_encoders[key] = encode
            self._compact_encoder_parts[key] = lambda value: [encode(value)]
            return
        sb = self._compact_source_builder()
        sb.emit("def _encode_parts(_v):", 0)
        sb.emit("_out = []")
        sb.emit("_a = _out.append")
        sb.emit("try:")
        sb.emit("pass", 2)
        batch = _EncodeBatch(sb)
        for f in fmt.fields:
            self._gen_compact_encode_field(sb, f.name, f"_v[{f.name!r}]",
                                           f.ftype, batch, depth=2)
        batch.flush(2)
        sb.emit("except KeyError as _e:")
        sb.emit("raise _EncodeError(" +
                repr(f"format {fmt.name!r}: missing field ") +
                " + str(_e))", 2)
        sb.emit("except (_struct.error, TypeError, AttributeError) as _e:")
        sb.emit("raise _EncodeError(" +
                repr(f"format {fmt.name!r}: ") + " + str(_e))", 2)
        body = sb.lines[1:]
        sb.emit("return _out")
        sb.emit("def _encode(_v):", 0)
        sb.lines.extend(body)
        sb.emit("return b''.join(_out)")
        fn = sb.compile("_encode", f"<pbio-compact-encode:{fmt.name}>")
        parts_fn = sb.namespace["_encode_parts"]
        parts_fn.__pbio_source__ = fn.__pbio_source__
        fn.__pbio_plan__ = parts_fn.__pbio_plan__ = "compact"
        self._compact_encoders[key] = fn
        self._compact_encoder_parts[key] = parts_fn

    def _gen_compact_encode_field(self, sb: _SourceBuilder, fname: str,
                                  src: str, ftype: FieldType,
                                  batch: _EncodeBatch, depth: int) -> None:
        if isinstance(ftype, Primitive):
            kind = ftype.kind
            if kind in _INT_RANGES:
                batch.flush(depth)
                enc = sb.add_const("ci", _compact_int_encoder(kind))
                sb.emit(f"_a({enc}({src}))", depth)
            elif kind == "string":
                batch.flush(depth)
                sb.emit(f"_a(_pack_compact_string({src}))", depth)
            elif kind == "char":
                batch.add("c", f"{src}.encode('latin-1')")
            else:
                batch.add(ftype.struct_char, src)
            return
        if isinstance(ftype, Array):
            batch.flush(depth)
            var = sb.fresh("arr")
            sb.emit(f"{var} = {src}", depth)
            if ftype.length is not None:
                sb.emit(f"_check_len({var}, {ftype.length}, {fname!r})",
                        depth)
            else:
                sb.emit(f"_a(_uv(len({var})))", depth)
            el = ftype.element
            if isinstance(el, Primitive) and el.kind in _INT_RANGES:
                sb.emit(f"_a(_pack_compact_int_array({var}, {el.kind!r}))",
                        depth)
            elif isinstance(el, Primitive) and el.is_fixed:
                sb.emit(f"_a(_pack_prim_array({var}, {el.struct_char!r}, "
                        f"'<'))", depth)
            else:
                item = sb.fresh("it")
                sb.emit(f"for {item} in {var}:", depth)
                inner = _EncodeBatch(sb)
                self._gen_compact_encode_field(sb, fname, item, el, inner,
                                               depth + 1)
                inner.flush(depth + 1)
            return
        if isinstance(ftype, StructRef):
            batch.flush(depth)
            sub = sb.add_const("sub", _LazyCodec(self, ftype.format_name,
                                                 LITTLE, "compact_encoder"))
            sb.emit(f"_a({sub}({src}))", depth)
            return
        raise FormatError(f"cannot encode type {ftype!r}")

    def _compile_compact_decoder(self, fmt: Format) -> DecodeFn:
        if not self.use_codegen:
            registry = self.registry

            def decode(buf: Any, off: int) -> Tuple[Dict[str, Any], int]:
                return interp_decode_compact(fmt, buf, off, registry)

            decode.__pbio_plan__ = "interp"
            return decode
        sb = self._compact_source_builder()
        sb.emit("def _decode(_buf, _off):", 0)
        sb.emit("_v = {}")
        sb.emit("try:")
        sb.emit("pass", 2)
        batch = _DecodeBatch(sb)
        tmp_targets: Dict[str, str] = {}
        for f in fmt.fields:
            target = sb.fresh("f")
            tmp_targets[f.name] = target
            self._gen_compact_decode_field(sb, f.name, target, f.ftype,
                                           batch, depth=2)
        batch.flush(2)
        for fname, target in tmp_targets.items():
            sb.emit(f"_v[{fname!r}] = {target}", 2)
        sb.emit("except _struct.error as _e:")
        sb.emit("raise _DecodeError(" +
                repr(f"format {fmt.name!r}: truncated message: ") +
                " + str(_e))", 2)
        sb.emit("return _v, _off")
        fn = sb.compile("_decode", f"<pbio-compact-decode:{fmt.name}>")
        fn.__pbio_plan__ = "compact"
        return fn

    def _gen_compact_decode_field(self, sb: _SourceBuilder, fname: str,
                                  target: str, ftype: FieldType,
                                  batch: _DecodeBatch, depth: int) -> None:
        if isinstance(ftype, Primitive):
            kind = ftype.kind
            if kind in _INT_RANGES:
                batch.flush(depth)
                dec = sb.add_const("cd", _compact_int_decoder(kind))
                sb.emit(f"{target}, _off = {dec}(_buf, _off)", depth)
            elif kind == "string":
                batch.flush(depth)
                sb.emit(f"{target}, _off = _unpack_compact_string(_buf, "
                        f"_off)", depth)
            else:
                batch.add(ftype.struct_char, target)
            return
        if isinstance(ftype, Array):
            batch.flush(depth)
            if ftype.length is not None:
                count_expr = str(ftype.length)
            else:
                cnt = sb.fresh("n")
                sb.emit(f"{cnt}, _off = _duv(_buf, _off)", depth)
                count_expr = cnt
            el = ftype.element
            if isinstance(el, Primitive) and el.kind in _INT_RANGES:
                sb.emit(f"{target}, _off = _unpack_compact_int_array(_buf, "
                        f"_off, {el.kind!r}, {count_expr})", depth)
            elif isinstance(el, Primitive) and el.is_fixed:
                sb.emit(f"{target}, _off = _unpack_prim_array(_buf, _off, "
                        f"{el.struct_char!r}, {count_expr}, '<')", depth)
            else:
                sb.emit(f"{target} = []", depth)
                idx = sb.fresh("i")
                sb.emit(f"for {idx} in range({count_expr}):", depth)
                item = sb.fresh("e")
                inner = _DecodeBatch(sb)
                self._gen_compact_decode_field(sb, fname, item, el, inner,
                                               depth + 1)
                inner.flush(depth + 1)
                sb.emit(f"{target}.append({item})", depth + 1)
            return
        if isinstance(ftype, StructRef):
            batch.flush(depth)
            sub = sb.add_const("sub", _LazyCodec(self, ftype.format_name,
                                                 LITTLE, "compact_decoder"))
            sb.emit(f"{target}, _off = {sub}(_buf, _off)", depth)
            return
        raise FormatError(f"cannot decode type {ftype!r}")


def _leaf_encode_expr(root: str, path: Tuple[str, ...], char: str) -> str:
    expr = root + "".join(f"[{p!r}]" for p in path)
    if char == "c":
        expr += ".encode('latin-1')"
    return expr


class _LazyCodec:
    """Callable that resolves a nested format's codec on first use.

    Lets mutually referencing formats be registered and compiled in any
    order; after the first call the resolved function is cached on the
    instance, so the steady-state cost is one attribute load.
    """

    __slots__ = ("_compiler", "_name", "_endian", "_which", "_fn")

    def __init__(self, compiler: CodecCompiler, name: str, endian: str,
                 which: str) -> None:
        self._compiler = compiler
        self._name = name
        self._endian = endian
        self._which = which
        self._fn: Optional[Callable] = None

    def __call__(self, *args: Any) -> Any:
        fn = self._fn
        if fn is None:
            fmt = self._compiler.registry.by_name(self._name)
            getter = getattr(self._compiler, self._which)
            fn = getter(fmt, self._endian)
            self._fn = fn
        return fn(*args)
