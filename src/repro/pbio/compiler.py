"""Dynamic code generation for PBIO encoders and decoders.

PBIO's defining trick is *dynamic code generation*: rather than interpreting
a format description for every message, it generates native conversion code
once per (format, layout) pair and runs that on the hot path.  This module
is the Python realization — for each format we generate Python source for a
specialized ``encode``/``decode`` function, compile it with :func:`compile`,
and cache the resulting function.  Runs of consecutive fixed-size fields are
collapsed into single precompiled :class:`struct.Struct` calls, and large
primitive arrays take a NumPy bulk path.

The generated code implements the PBIO wire encoding:

* fixed-size primitives — native-size two's complement / IEEE754, in the
  *sender's* byte order (the receiver converts: "receiver makes right"),
* ``string`` — u32 byte length + UTF-8 bytes,
* variable-length arrays — u32 element count + elements,
* fixed-length arrays — elements only (length is part of the format),
* nested structs — encoded inline, in field order.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep in practice
    _np = None

from .errors import DecodeError, EncodeError, FormatError
from .fmt import Format
from .registry import FormatRegistry
from .types import Array, FieldType, Primitive, StructRef

LITTLE = "<"
BIG = ">"

_NP_CHARS = {
    "b": "i1", "h": "i2", "i": "i4", "q": "i8",
    "B": "u1", "H": "u2", "I": "u4", "Q": "u8",
    "f": "f4", "d": "f8",
}

EncodeFn = Callable[[Dict[str, Any]], bytes]
DecodeFn = Callable[[bytes, int], Tuple[Dict[str, Any], int]]


# ----------------------------------------------------------------------
# runtime helpers referenced from generated code
# ----------------------------------------------------------------------

def _pack_prim_array(values: Any, char: str, endian: str) -> bytes:
    """Bulk-encode an array of one primitive kind.

    NumPy arrays are serialized with a single dtype cast + ``tobytes`` —
    this is what makes the 1 MB-image benchmarks representative.  Plain
    sequences fall back to one big :func:`struct.pack`.
    """
    if char == "c":
        if isinstance(values, str):
            raw = values.encode("latin-1")
        elif isinstance(values, (bytes, bytearray)):
            raw = bytes(values)
        else:
            raw = "".join(values).encode("latin-1")
        return raw
    if _np is not None and isinstance(values, _np.ndarray):
        dtype = _np.dtype(endian + _NP_CHARS[char])
        return values.astype(dtype, copy=False).tobytes()
    try:
        return struct.pack(f"{endian}{len(values)}{char}", *values)
    except struct.error as exc:
        raise EncodeError(f"bad array value: {exc}")


def _unpack_prim_array(buf: bytes, off: int, char: str, count: int,
                       endian: str) -> Tuple[Any, int]:
    """Bulk-decode ``count`` primitives starting at ``off``."""
    if char == "c":
        end = off + count
        if end > len(buf):
            raise DecodeError("truncated char array")
        return buf[off:end].decode("latin-1"), end
    size = struct.calcsize(char) * count
    end = off + size
    if end > len(buf):
        raise DecodeError("truncated primitive array")
    if _np is not None and count >= 64 and char in _NP_CHARS:
        dtype = _np.dtype(endian + _NP_CHARS[char])
        arr = _np.frombuffer(buf, dtype=dtype, count=count, offset=off)
        return arr, end
    values = list(struct.unpack_from(f"{endian}{count}{char}", buf, off))
    return values, end


def _pack_string(value: str) -> bytes:
    raw = value.encode("utf-8")
    return struct.pack("<I", len(raw)) + raw


def _unpack_string(buf: bytes, off: int) -> Tuple[str, int]:
    if off + 4 > len(buf):
        raise DecodeError("truncated string length")
    (n,) = struct.unpack_from("<I", buf, off)
    off += 4
    if off + n > len(buf):
        raise DecodeError("truncated string body")
    return buf[off:off + n].decode("utf-8"), off + n


def _check_len(values: Any, expected: int, field: str) -> Any:
    if len(values) != expected:
        raise EncodeError(
            f"field {field!r}: expected {expected} elements, "
            f"got {len(values)}")
    return values


# ----------------------------------------------------------------------
# source generation
# ----------------------------------------------------------------------

class _SourceBuilder:
    """Accumulates generated source with struct-batching of fixed fields."""

    def __init__(self, endian: str) -> None:
        self.endian = endian
        self.lines: List[str] = []
        self.namespace: Dict[str, Any] = {
            "_struct": struct,
            "_pack_prim_array": _pack_prim_array,
            "_unpack_prim_array": _unpack_prim_array,
            "_pack_string": _pack_string,
            "_unpack_string": _unpack_string,
            "_check_len": _check_len,
            "_EncodeError": EncodeError,
            "_DecodeError": DecodeError,
        }
        self._counter = 0

    def emit(self, line: str, depth: int = 1) -> None:
        self.lines.append("    " * depth + line)

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"_{prefix}{self._counter}"

    def add_const(self, prefix: str, value: Any) -> str:
        name = self.fresh(prefix)
        self.namespace[name] = value
        return name

    def compile(self, func_name: str, filename: str) -> Callable:
        source = "\n".join(self.lines)
        code = compile(source, filename, "exec")
        exec(code, self.namespace)
        fn = self.namespace[func_name]
        fn.__pbio_source__ = source  # kept for introspection / debugging
        return fn


class CodecCompiler:
    """Compiles and caches encode/decode functions per (format, endian).

    One compiler is typically shared per registry; nested struct fields
    resolve their sub-codecs lazily through the compiler so that formats can
    be registered in any order.
    """

    def __init__(self, registry: FormatRegistry) -> None:
        self.registry = registry
        self._encoders: Dict[Tuple[str, str], EncodeFn] = {}
        self._decoders: Dict[Tuple[str, str], DecodeFn] = {}

    # ------------------------------------------------------------------
    def encoder(self, fmt: Format, endian: str = LITTLE) -> EncodeFn:
        """Return (compiling if needed) the encode function for ``fmt``."""
        key = (fmt.fingerprint, endian)
        fn = self._encoders.get(key)
        if fn is None:
            fn = self._compile_encoder(fmt, endian)
            self._encoders[key] = fn
        return fn

    def decoder(self, fmt: Format, endian: str = LITTLE) -> DecodeFn:
        """Return the decode function for ``fmt`` with payload ``endian``."""
        key = (fmt.fingerprint, endian)
        fn = self._decoders.get(key)
        if fn is None:
            fn = self._compile_decoder(fmt, endian)
            self._decoders[key] = fn
        return fn

    # ------------------------------------------------------------------
    # encoder generation
    # ------------------------------------------------------------------
    def _compile_encoder(self, fmt: Format, endian: str) -> EncodeFn:
        sb = _SourceBuilder(endian)
        sb.namespace["_sub_encoder"] = lambda name: self.encoder(
            self.registry.by_name(name), endian)
        sb.emit("def _encode(_v):", 0)
        sb.emit("_out = []")
        sb.emit("_a = _out.append")
        sb.emit("try:")
        sb.emit("pass", 2)
        batch: List[Tuple[str, str]] = []  # (struct char, value expression)

        def flush(depth: int = 2) -> None:
            if not batch:
                return
            chars = "".join(c for c, _ in batch)
            packer = sb.add_const("s", struct.Struct(endian + chars))
            exprs = ", ".join(e for _, e in batch)
            sb.emit(f"_a({packer}.pack({exprs}))", depth)
            batch.clear()

        for f in fmt.fields:
            self._gen_encode_field(sb, f.name, f"_v[{f.name!r}]", f.ftype,
                                   batch, flush, depth=2)
        flush()
        sb.emit("except KeyError as _e:")
        sb.emit("raise _EncodeError(" +
                repr(f"format {fmt.name!r}: missing field ") +
                " + str(_e))", 2)
        sb.emit("except (_struct.error, TypeError, AttributeError) as _e:")
        sb.emit("raise _EncodeError(" +
                repr(f"format {fmt.name!r}: ") + " + str(_e))", 2)
        sb.emit("return b''.join(_out)")
        return sb.compile("_encode", f"<pbio-encode:{fmt.name}>")

    def _gen_encode_field(self, sb: _SourceBuilder, fname: str, src: str,
                          ftype: FieldType, batch: List[Tuple[str, str]],
                          flush: Callable[..., None], depth: int) -> None:
        if isinstance(ftype, Primitive):
            if ftype.kind == "string":
                flush(depth)
                sb.emit(f"_a(_pack_string({src}))", depth)
            elif ftype.kind == "char":
                batch.append(("c", f"{src}.encode('latin-1')"))
            else:
                batch.append((ftype.struct_char, src))
            return
        if isinstance(ftype, Array):
            flush(depth)
            var = sb.fresh("arr")
            sb.emit(f"{var} = {src}", depth)
            if ftype.length is not None:
                sb.emit(f"_check_len({var}, {ftype.length}, {fname!r})", depth)
            else:
                lp = sb.add_const("lp", struct.Struct("<I"))
                sb.emit(f"_a({lp}.pack(len({var})))", depth)
            el = ftype.element
            if isinstance(el, Primitive) and el.is_fixed:
                sb.emit(f"_a(_pack_prim_array({var}, {el.struct_char!r}, "
                        f"{sb.endian!r}))", depth)
            else:
                item = sb.fresh("it")
                sb.emit(f"for {item} in {var}:", depth)
                inner_batch: List[Tuple[str, str]] = []

                def inner_flush(d: int = depth + 1) -> None:
                    if not inner_batch:
                        return
                    chars = "".join(c for c, _ in inner_batch)
                    packer = sb.add_const("s", struct.Struct(sb.endian + chars))
                    exprs = ", ".join(e for _, e in inner_batch)
                    sb.emit(f"_a({packer}.pack({exprs}))", d)
                    inner_batch.clear()

                self._gen_encode_field(sb, fname, item, el, inner_batch,
                                       inner_flush, depth + 1)
                inner_flush()
            return
        if isinstance(ftype, StructRef):
            flush(depth)
            sub = sb.add_const("sub", _LazyCodec(self, ftype.format_name,
                                                 sb.endian, "encoder"))
            sb.emit(f"_a({sub}({src}))", depth)
            return
        raise FormatError(f"cannot encode type {ftype!r}")

    # ------------------------------------------------------------------
    # decoder generation
    # ------------------------------------------------------------------
    def _compile_decoder(self, fmt: Format, endian: str) -> DecodeFn:
        sb = _SourceBuilder(endian)
        sb.emit("def _decode(_buf, _off):", 0)
        sb.emit("_v = {}")
        sb.emit("try:")
        sb.emit("pass", 2)
        batch: List[Tuple[str, str]] = []  # (struct char, target expression)

        def flush(depth: int = 2) -> None:
            if not batch:
                return
            chars = "".join(c for c, _ in batch)
            unpacker = sb.add_const("s", struct.Struct(endian + chars))
            targets = ", ".join(t for _, t in batch)
            trailing = "," if len(batch) == 1 else ""
            sb.emit(f"{targets}{trailing} = {unpacker}.unpack_from(_buf, _off)",
                    depth)
            # decode chars from bytes to 1-char strings
            for c, t in batch:
                if c == "c":
                    sb.emit(f"{t} = {t}.decode('latin-1')", depth)
            sb.emit(f"_off += {unpacker}.size", depth)
            batch.clear()

        tmp_targets: Dict[str, str] = {}
        for f in fmt.fields:
            target = sb.fresh("f")
            tmp_targets[f.name] = target
            self._gen_decode_field(sb, f.name, target, f.ftype, batch, flush,
                                   depth=2)
        flush()
        for fname, target in tmp_targets.items():
            sb.emit(f"_v[{fname!r}] = {target}", 2)
        sb.emit("except _struct.error as _e:")
        sb.emit("raise _DecodeError(" +
                repr(f"format {fmt.name!r}: truncated message: ") +
                " + str(_e))", 2)
        sb.emit("return _v, _off")
        return sb.compile("_decode", f"<pbio-decode:{fmt.name}>")

    def _gen_decode_field(self, sb: _SourceBuilder, fname: str, target: str,
                          ftype: FieldType, batch: List[Tuple[str, str]],
                          flush: Callable[..., None], depth: int) -> None:
        if isinstance(ftype, Primitive):
            if ftype.kind == "string":
                flush(depth)
                sb.emit(f"{target}, _off = _unpack_string(_buf, _off)", depth)
            else:
                batch.append((ftype.struct_char, target))
            return
        if isinstance(ftype, Array):
            flush(depth)
            if ftype.length is not None:
                count_expr = str(ftype.length)
            else:
                lp = sb.add_const("lp", struct.Struct("<I"))
                cnt = sb.fresh("n")
                sb.emit(f"({cnt},) = {lp}.unpack_from(_buf, _off)", depth)
                sb.emit("_off += 4", depth)
                count_expr = cnt
            el = ftype.element
            if isinstance(el, Primitive) and el.is_fixed:
                sb.emit(f"{target}, _off = _unpack_prim_array(_buf, _off, "
                        f"{el.struct_char!r}, {count_expr}, {sb.endian!r})",
                        depth)
            else:
                sb.emit(f"{target} = []", depth)
                idx = sb.fresh("i")
                sb.emit(f"for {idx} in range({count_expr}):", depth)
                item = sb.fresh("e")
                inner_batch: List[Tuple[str, str]] = []

                def inner_flush(d: int = depth + 1) -> None:
                    if not inner_batch:
                        return
                    chars = "".join(c for c, _ in inner_batch)
                    unpacker = sb.add_const("s",
                                            struct.Struct(sb.endian + chars))
                    targets = ", ".join(t for _, t in inner_batch)
                    trailing = "," if len(inner_batch) == 1 else ""
                    sb.emit(f"{targets}{trailing} = "
                            f"{unpacker}.unpack_from(_buf, _off)", d)
                    for c, t in inner_batch:
                        if c == "c":
                            sb.emit(f"{t} = {t}.decode('latin-1')", d)
                    sb.emit(f"_off += {unpacker}.size", d)
                    inner_batch.clear()

                self._gen_decode_field(sb, fname, item, el, inner_batch,
                                       inner_flush, depth + 1)
                inner_flush()
                sb.emit(f"{target}.append({item})", depth + 1)
            return
        if isinstance(ftype, StructRef):
            flush(depth)
            sub = sb.add_const("sub", _LazyCodec(self, ftype.format_name,
                                                 sb.endian, "decoder"))
            sb.emit(f"{target}, _off = {sub}(_buf, _off)", depth)
            return
        raise FormatError(f"cannot decode type {ftype!r}")


class _LazyCodec:
    """Callable that resolves a nested format's codec on first use.

    Lets mutually referencing formats be registered and compiled in any
    order; after the first call the resolved function is cached on the
    instance, so the steady-state cost is one attribute load.
    """

    __slots__ = ("_compiler", "_name", "_endian", "_which", "_fn")

    def __init__(self, compiler: CodecCompiler, name: str, endian: str,
                 which: str) -> None:
        self._compiler = compiler
        self._name = name
        self._endian = endian
        self._which = which
        self._fn: Optional[Callable] = None

    def __call__(self, *args: Any) -> Any:
        fn = self._fn
        if fn is None:
            fmt = self._compiler.registry.by_name(self._name)
            getter = getattr(self._compiler, self._which)
            fn = getter(fmt, self._endian)
            self._fn = fn
        return fn(*args)
