"""The PBIO type system.

PBIO (Portable Binary I/O, Eisenhauer et al.) describes structured data with
*formats*: ordered lists of named, typed fields.  The type system here is the
subset the paper's Soup schema exposes — ``integer``, ``char``, ``string``
and ``float`` as base types, composed through lists (arrays) and structs —
widened with explicit sizes so that heterogeneous-architecture conversion
("receiver makes right") is meaningful.

Field types form a small algebra:

* :class:`Primitive` — fixed-size machine types plus variable-length strings,
* :class:`Array` — fixed-length or variable-length sequences of any type,
* :class:`StructRef` — a nested struct, referenced by format name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from .errors import FormatError

# ----------------------------------------------------------------------
# primitive kinds
# ----------------------------------------------------------------------

#: primitive kind -> (wire code, struct char, byte size).  STRING has no
#: struct char: it is encoded as a u32 length followed by UTF-8 bytes.
_PRIM_INFO = {
    "int8": (1, "b", 1),
    "int16": (2, "h", 2),
    "int32": (3, "i", 4),
    "int64": (4, "q", 8),
    "uint8": (5, "B", 1),
    "uint16": (6, "H", 2),
    "uint32": (7, "I", 4),
    "uint64": (8, "Q", 8),
    "float32": (9, "f", 4),
    "float64": (10, "d", 8),
    "char": (11, "c", 1),
    "string": (12, None, None),
}

_CODE_TO_PRIM = {info[0]: name for name, info in _PRIM_INFO.items()}

#: Mapping from the Soup/WSDL schema's base type names (§III-B of the paper:
#: "integer, char, string and float") to concrete PBIO primitives.
SCHEMA_BASE_TYPES = {
    "integer": "int32",
    "int": "int32",
    "long": "int64",
    "short": "int16",
    "byte": "int8",
    "unsignedInt": "uint32",
    "unsignedByte": "uint8",
    "unsignedShort": "uint16",
    "unsignedLong": "uint64",
    "float": "float32",
    "double": "float64",
    "char": "char",
    "string": "string",
    "boolean": "uint8",
}


@dataclass(frozen=True)
class Primitive:
    """A primitive field type (``int32``, ``float64``, ``string``...)."""

    kind: str

    def __post_init__(self) -> None:
        if self.kind not in _PRIM_INFO:
            raise FormatError(f"unknown primitive type {self.kind!r}")

    @property
    def code(self) -> int:
        return _PRIM_INFO[self.kind][0]

    @property
    def struct_char(self) -> Optional[str]:
        """The :mod:`struct` format character, or None for strings."""
        return _PRIM_INFO[self.kind][1]

    @property
    def size(self) -> Optional[int]:
        """Fixed byte size, or None for variable-length (string)."""
        return _PRIM_INFO[self.kind][2]

    @property
    def is_fixed(self) -> bool:
        return self.kind != "string"

    def describe(self) -> str:
        return self.kind

    def zero(self) -> Union[int, float, str]:
        """The zero/padding value for this type (quality padding, §III-B)."""
        if self.kind == "string":
            return ""
        if self.kind == "char":
            return "\x00"
        if self.kind.startswith("float"):
            return 0.0
        return 0


@dataclass(frozen=True)
class Array:
    """An array of ``element`` values.

    ``length`` of ``None`` means variable length: the element count is
    carried on the wire as a u32 prefix.  A fixed length is part of the
    format itself and occupies no wire space.
    """

    element: "FieldType"
    length: Optional[int] = None

    def __post_init__(self) -> None:
        if self.length is not None and self.length < 0:
            raise FormatError("array length must be non-negative")

    @property
    def is_fixed_length(self) -> bool:
        return self.length is not None

    def describe(self) -> str:
        inner = self.element.describe()
        if self.length is None:
            return f"{inner}[]"
        return f"{inner}[{self.length}]"

    def zero(self) -> list:
        if self.length is None:
            return []
        return [self.element.zero() for _ in range(self.length)]


@dataclass(frozen=True)
class StructRef:
    """A nested struct field, referring to another format by name.

    Nested structs are how the paper's "nested structure of varying depth"
    business workload is modelled; encoding one requires recursive traversal,
    the expensive case in Figs. 4b/6.
    """

    format_name: str

    def describe(self) -> str:
        return f"struct {self.format_name}"

    def zero(self) -> dict:
        # A struct's zero value needs the registry to expand; the conversion
        # layer handles that.  An empty dict is the schema-free placeholder.
        return {}


FieldType = Union[Primitive, Array, StructRef]

# Convenient singletons for the common cases.
INT8 = Primitive("int8")
INT16 = Primitive("int16")
INT32 = Primitive("int32")
INT64 = Primitive("int64")
UINT8 = Primitive("uint8")
UINT16 = Primitive("uint16")
UINT32 = Primitive("uint32")
UINT64 = Primitive("uint64")
FLOAT32 = Primitive("float32")
FLOAT64 = Primitive("float64")
CHAR = Primitive("char")
STRING = Primitive("string")


def primitive_from_code(code: int) -> Primitive:
    """Inverse of :attr:`Primitive.code` (wire metadata decoding)."""
    try:
        return Primitive(_CODE_TO_PRIM[code])
    except KeyError:
        raise FormatError(f"unknown primitive wire code {code}")


def schema_type(name: str) -> Primitive:
    """Resolve a WSDL/Soup schema base type name to a PBIO primitive.

    >>> schema_type("integer").kind
    'int32'
    """
    stripped = name.rsplit(":", 1)[-1]
    if stripped not in SCHEMA_BASE_TYPES:
        raise FormatError(f"unknown schema base type {name!r}")
    return Primitive(SCHEMA_BASE_TYPES[stripped])


def is_base_schema_type(name: str) -> bool:
    return name.rsplit(":", 1)[-1] in SCHEMA_BASE_TYPES


def parse_type(spec: str) -> FieldType:
    """Parse a compact textual type spec.

    Grammar (used by tests, the quality-file parser and examples)::

        spec   := base suffixes
        base   := primitive-kind | schema base type | "struct <name>"
        suffix := "[]" | "[<n>]"

    >>> parse_type("int32[]").describe()
    'int32[]'
    >>> parse_type("struct point").describe()
    'struct point'
    """
    spec = spec.strip()
    suffixes = []
    while spec.endswith("]"):
        open_idx = spec.rfind("[")
        if open_idx < 0:
            raise FormatError(f"unbalanced brackets in type spec {spec!r}")
        inside = spec[open_idx + 1:-1].strip()
        if inside == "":
            suffixes.append(None)
        else:
            try:
                suffixes.append(int(inside))
            except ValueError:
                raise FormatError(f"bad array length {inside!r}")
        spec = spec[:open_idx].strip()
    base: FieldType
    if spec.startswith("struct "):
        base = StructRef(spec[len("struct "):].strip())
    elif spec in _PRIM_INFO:
        base = Primitive(spec)
    elif is_base_schema_type(spec):
        base = schema_type(spec)
    else:
        raise FormatError(f"unknown type spec {spec!r}")
    for length in reversed(suffixes):
        base = Array(base, length)
    return base


def type_fingerprint_parts(ftype: FieldType) -> tuple:
    """A hashable canonical description of a type (for fingerprints)."""
    if isinstance(ftype, Primitive):
        return ("p", ftype.kind)
    if isinstance(ftype, Array):
        return ("a", ftype.length, type_fingerprint_parts(ftype.element))
    if isinstance(ftype, StructRef):
        return ("s", ftype.format_name)
    raise FormatError(f"not a field type: {ftype!r}")


def struct_refs(ftype: FieldType) -> Dict[str, None]:
    """All struct format names referenced by ``ftype`` (ordered set)."""
    out: Dict[str, None] = {}
    if isinstance(ftype, StructRef):
        out[ftype.format_name] = None
    elif isinstance(ftype, Array):
        out.update(struct_refs(ftype.element))
    return out
