"""Constant-memory PBIO record streams for multi-MB payloads.

A *record stream* is a sequence of u32-little-endian length-prefixed
frames, each framing one self-contained PBIO blob — exactly what
:meth:`~repro.pbio.wire.PbioSession.pack_bytes` produces (announcements
ride inside the first frame of each format, so the stream needs no side
channel).  The framing is transport-agnostic: over HTTP it rides
``Transfer-Encoding: chunked`` (chunk boundaries and frame boundaries are
independent), but nothing here imports the HTTP layer.

The point is the memory profile: :class:`RecordStreamReader` buffers *at
most one frame* no matter how large the stream, so a 64 MB payload crosses
a process in frame-sized working memory.  The `Non-Blocking Signature of
very large SOAP Messages` line of work processes huge envelopes the same
way — incrementally, never materialized whole.

:func:`pbio_stream_route` adapts the pieces to the reactor server's
streaming routes (``ReactorHttpServer(stream_routes=...)``): records are
decoded as their bytes arrive, passed through a per-record *transform* —
the streaming quality-handler hook — and re-encoded onto the response
stream by an independent output session (which negotiates compact
encoding like any other; see docs/wire-compact.md).
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from .errors import DecodeError
from .fmt import Format
from .registry import FormatRegistry
from .wire import Buffer, PbioSession

_LEN = struct.Struct("<I")
FRAME_HEADER_SIZE = _LEN.size
#: Per-frame ceiling: one *record*, not the payload, bounds memory.
DEFAULT_MAX_FRAME_BYTES = 16 << 20

Record = Tuple[Format, Dict[str, Any]]
#: Per-record hook: return ``(format, value)`` to emit (possibly reduced
#: by a quality handler), or ``None`` to drop the record.
Transform = Callable[[Format, Dict[str, Any]], Optional[Record]]


def encode_frame(blob: Buffer) -> bytes:
    """Length-prefix one PBIO blob as a stream frame."""
    return _LEN.pack(len(blob)) + bytes(blob)


class RecordStreamWriter:
    """Frame records onto a stream through one sending session.

    The session carries announcement state across the whole stream: the
    first frame of each format includes its announcement, later frames
    are data-only — the §III-B one-time registration, amortized over the
    stream.
    """

    def __init__(self, session: PbioSession) -> None:
        self.session = session
        self.frames_out = 0
        self.bytes_out = 0

    def pack(self, fmt, value: Dict[str, Any]) -> bytes:
        blob = self.session.pack_bytes(fmt, value)
        self.frames_out += 1
        self.bytes_out += FRAME_HEADER_SIZE + len(blob)
        return _LEN.pack(len(blob)) + blob


class RecordStreamReader:
    """Incremental frame decoder: feed arbitrary byte fragments, get back
    complete records; never holds more than one frame.

    A frame longer than ``max_frame_bytes`` fails the stream with a typed
    :class:`~repro.pbio.errors.DecodeError` *before* buffering it — the
    length prefix is the admission check.
    """

    def __init__(self, session: PbioSession,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        self.session = session
        self.max_frame_bytes = max_frame_bytes
        self._buf = bytearray()
        self.frames_in = 0
        self.bytes_in = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes of the partially received frame currently buffered."""
        return len(self._buf)

    def feed(self, data: Buffer) -> List[Record]:
        """Consume a fragment; return the records it completed (possibly
        none, possibly several)."""
        self._buf += data
        self.bytes_in += len(data)
        records: List[Record] = []
        while True:
            if len(self._buf) < FRAME_HEADER_SIZE:
                return records
            (length,) = _LEN.unpack_from(self._buf, 0)
            if length > self.max_frame_bytes:
                raise DecodeError(
                    f"stream frame of {length} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte frame limit")
            end = FRAME_HEADER_SIZE + length
            if len(self._buf) < end:
                return records
            frame = bytes(self._buf[FRAME_HEADER_SIZE:end])
            del self._buf[:end]
            records.append(self.session.unpack_stream(frame))
            self.frames_in += 1

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if self._buf:
            raise DecodeError(
                f"record stream truncated: {len(self._buf)} bytes of an "
                f"unfinished frame at end of stream")


def iter_frames(session: PbioSession, records) -> "iter":
    """Adapt an iterable of ``(format, value)`` records to the chunk
    iterator :meth:`HttpConnection.stream` expects — one frame per chunk,
    encoded lazily so the full payload never exists at once."""
    for fmt, value in records:
        blob = session.pack_bytes(fmt, value)
        yield _LEN.pack(len(blob)) + blob


class PbioStreamHandler:
    """Reactor stream-route handler: record-at-a-time decode → transform
    → re-encode.  Instances are per-request (the route factory builds
    one per stream), so session state never leaks across requests."""

    content_type = "application/x-pbio-stream"

    def __init__(self, registry: FormatRegistry,
                 transform: Optional[Transform] = None,
                 wire: str = "auto",
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        self.reader = RecordStreamReader(
            PbioSession(registry), max_frame_bytes=max_frame_bytes)
        self.writer = RecordStreamWriter(PbioSession(registry, wire=wire))
        self.transform = transform
        self.records = 0

    def on_chunk(self, data: bytes) -> Optional[bytes]:
        out: List[bytes] = []
        for fmt, value in self.reader.feed(data):
            self.records += 1
            if self.reader.session.peer_compact_capable:
                # One peer, two sessions (request/reply): a capability
                # advert seen on the inbound side covers the reply too.
                self.writer.session.mark_peer_compact_capable()
            if self.transform is not None:
                result = self.transform(fmt, value)
                if result is None:
                    continue
                fmt, value = result
            out.append(self.writer.pack(fmt, value))
        return b"".join(out) if out else None

    def finish(self) -> Optional[bytes]:
        self.reader.finish()
        return None


def pbio_stream_route(registry: FormatRegistry,
                      transform: Optional[Transform] = None,
                      wire: str = "auto",
                      max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
    """Build a ``stream_routes`` factory serving a PBIO record stream.

    ::

        server = ReactorHttpServer(handler, stream_routes={
            "/stream": pbio_stream_route(registry, transform=reduce_record),
        })
    """
    def factory(_request) -> PbioStreamHandler:
        return PbioStreamHandler(registry, transform=transform, wire=wire,
                                 max_frame_bytes=max_frame_bytes)
    return factory
