"""Format-to-format value conversion.

This implements the mechanism behind SOAP-binQ's trivial quality handlers
(§III-B): when the transport substitutes a smaller message type for the
application's larger one, it "copies the relevant fields (those fields that
are common to the data structure acquired from the application and those to
be sent) and ignores the rest.  At the other end ... the relevant fields are
copied from the message received from the transport, and the remaining
entries are padded with zeroes."

:func:`compile_converter` builds a reusable converter between two formats:

* fields present in both and type-compatible are copied (recursively for
  nested structs, with truncate/zero-pad for fixed-length arrays),
* fields only in the destination are zero-filled,
* fields only in the source are dropped.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

try:
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from .errors import ConversionError
from .fmt import Format
from .registry import FormatRegistry
from .types import Array, FieldType, Primitive, StructRef

Converter = Callable[[Dict[str, Any]], Dict[str, Any]]


def zero_value(ftype: FieldType, registry: Optional[FormatRegistry] = None) -> Any:
    """The padding value for a field type, expanding struct refs.

    >>> zero_value(Primitive("int32"))
    0
    """
    if isinstance(ftype, Primitive):
        return ftype.zero()
    if isinstance(ftype, Array):
        if ftype.length is None:
            return []
        return [zero_value(ftype.element, registry)
                for _ in range(ftype.length)]
    if isinstance(ftype, StructRef):
        if registry is None or not registry.has_name(ftype.format_name):
            return {}
        sub = registry.by_name(ftype.format_name)
        return {f.name: zero_value(f.ftype, registry) for f in sub.fields}
    raise ConversionError(f"no zero value for {ftype!r}")


def _numeric(kind: str) -> bool:
    return kind not in ("string", "char")


def _compatible(src: FieldType, dst: FieldType) -> bool:
    """Whether a value of ``src`` can be carried in a ``dst`` slot."""
    if isinstance(src, Primitive) and isinstance(dst, Primitive):
        if src.kind == dst.kind:
            return True
        return _numeric(src.kind) and _numeric(dst.kind)
    if isinstance(src, Array) and isinstance(dst, Array):
        return _compatible(src.element, dst.element)
    if isinstance(src, StructRef) and isinstance(dst, StructRef):
        return True  # field-wise matching happens recursively
    return False


def _convert_field(value: Any, src: FieldType, dst: FieldType,
                   registry: FormatRegistry) -> Any:
    if isinstance(dst, Primitive):
        if isinstance(src, Primitive) and src.kind != dst.kind:
            if dst.kind.startswith("float"):
                return float(value)
            return int(value)
        return value
    if isinstance(dst, Array):
        assert isinstance(src, Array)
        items = value
        if dst.length is not None:
            n = len(items)
            if n > dst.length:
                items = items[:dst.length]
            elif n < dst.length:
                pad = [zero_value(dst.element, registry)
                       for _ in range(dst.length - n)]
                items = list(items) + pad
        if isinstance(dst.element, (Array, StructRef)) or (
                isinstance(src.element, Primitive)
                and isinstance(dst.element, Primitive)
                and src.element.kind != dst.element.kind):
            return [_convert_field(item, src.element, dst.element, registry)
                    for item in items]
        return items
    if isinstance(dst, StructRef):
        assert isinstance(src, StructRef)
        src_fmt = registry.by_name(src.format_name)
        dst_fmt = registry.by_name(dst.format_name)
        return compile_converter(src_fmt, dst_fmt, registry)(value)
    raise ConversionError(f"cannot convert into {dst!r}")


def compile_converter(src_fmt: Format, dst_fmt: Format,
                      registry: FormatRegistry) -> Converter:
    """Build a converter mapping values of ``src_fmt`` into ``dst_fmt``.

    The returned callable performs "a single copy" per invocation, as the
    paper describes for quality-file message substitution.  Identical
    formats get an identity-shaped fast path.  Compiled converters are
    memoized on the registry (cleared by
    :meth:`~repro.pbio.registry.FormatRegistry.redefine`), so per-message
    up/down-translation never re-walks the two formats.
    """
    if src_fmt.fingerprint == dst_fmt.fingerprint:
        return dict  # shallow copy preserves caller's ownership expectations

    cache = getattr(registry, "converter_cache", None)
    cache_key = (src_fmt.fingerprint, dst_fmt.fingerprint)
    if cache is not None:
        cached = cache.get(cache_key)
        if cached is not None:
            return cached

    plan = []  # (dst_name, src_field_or_None, dst_type)
    for dst_field in dst_fmt.fields:
        src_field = None
        if src_fmt.has_field(dst_field.name):
            candidate = src_fmt.field(dst_field.name)
            if _compatible(candidate.ftype, dst_field.ftype):
                src_field = candidate
        plan.append((dst_field.name, src_field, dst_field.ftype))

    def convert(value: Dict[str, Any]) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name, src_field, dst_type in plan:
            if src_field is None:
                out[name] = zero_value(dst_type, registry)
            else:
                out[name] = _convert_field(value[name], src_field.ftype,
                                           dst_type, registry)
        return out

    if cache is not None:
        cache[cache_key] = convert
    return convert


def project(value: Dict[str, Any], src_fmt: Format, dst_fmt: Format,
            registry: FormatRegistry) -> Dict[str, Any]:
    """One-shot convenience wrapper around :func:`compile_converter`."""
    return compile_converter(src_fmt, dst_fmt, registry)(value)
