"""Exception types for the PBIO binary I/O substrate."""

from __future__ import annotations


class PbioError(Exception):
    """Base class for all PBIO errors."""


class FormatError(PbioError):
    """A format definition is invalid (bad field type, duplicate name...)."""


class UnknownFormatError(PbioError):
    """A wire message referenced a format id that is not registered and
    could not be fetched from the format server."""

    def __init__(self, format_id: int) -> None:
        self.format_id = format_id
        super().__init__(f"unknown PBIO format id {format_id}")


class EncodeError(PbioError):
    """A value does not match the format it is being encoded with."""


class DecodeError(PbioError):
    """A wire message is truncated or otherwise malformed."""


class ConversionError(PbioError):
    """Two formats cannot be converted into one another."""
