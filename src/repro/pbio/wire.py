"""PBIO wire messages and the per-connection session protocol.

A PBIO *data message* is a small fixed header followed by the encoded
payload.  The header names the format by id and records the sender's byte
order, so the receiver can "make right" — convert from the sender's native
layout — without the sender ever translating its own data.

The first time a session sends a given format it precedes the data message
with a *format announcement* carrying the full format metadata; receivers
cache it (locally and, when configured, in the shared format server), so
subsequent messages of the same type cost only the 12-byte header.  This is
the registration handshake of §III-B: "This transaction occurs only once,
since the format is cached locally thereafter."
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set, Tuple, Union

from .compiler import BIG, LITTLE, CodecCompiler
from .errors import DecodeError, UnknownFormatError
from .fmt import Format
from .registry import FormatRegistry

MAGIC = b"PB"
_HEADER = struct.Struct("<2sBBI")  # magic, flags, kind, format id
HEADER_SIZE = _HEADER.size

FLAG_LITTLE_ENDIAN = 0x01

KIND_DATA = 0
KIND_FORMAT = 1


@dataclass
class Message:
    """A parsed PBIO wire message."""

    kind: int
    endian: str
    format_id: int
    payload: bytes

    @property
    def is_data(self) -> bool:
        return self.kind == KIND_DATA


def encode_message(kind: int, format_id: int, payload: bytes,
                   endian: str = LITTLE) -> bytes:
    """Frame a payload as a PBIO wire message."""
    flags = FLAG_LITTLE_ENDIAN if endian == LITTLE else 0
    return _HEADER.pack(MAGIC, flags, kind, format_id) + payload


def parse_message(blob: Union[bytes, bytearray, memoryview]) -> Message:
    """Parse a wire blob into a :class:`Message`.

    Raises :class:`~repro.pbio.errors.DecodeError` for short blobs or a bad
    magic — the failure-injection tests feed truncated messages here.
    """
    blob = bytes(blob)
    if len(blob) < HEADER_SIZE:
        raise DecodeError(f"message shorter than header "
                          f"({len(blob)} < {HEADER_SIZE})")
    magic, flags, kind, format_id = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise DecodeError(f"bad PBIO magic {magic!r}")
    endian = LITTLE if flags & FLAG_LITTLE_ENDIAN else BIG
    return Message(kind=kind, endian=endian, format_id=format_id,
                   payload=blob[HEADER_SIZE:])


@dataclass
class SessionStats:
    """Counters exposed for the microbenchmarks (registration cost is only
    paid on the first message of each format — Fig. 5/6 discussion)."""

    messages_sent: int = 0
    messages_received: int = 0
    announcements_sent: int = 0
    announcements_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class PbioSession:
    """Encode/decode values for one logical connection.

    The session owns the *sender-side* knowledge of which formats the peer
    has already seen, and the *receiver-side* cache of the peer's id → format
    bindings.  It is transport-agnostic: :meth:`pack` returns the wire blobs
    to send (possibly announcement + data) and :meth:`unpack` consumes one
    received blob.

    Parameters
    ----------
    registry:
        Local format registry (ids in announcements come from here).
    compiler:
        Shared codec compiler; one per registry is typical.
    endian:
        The *native byte order this host writes*.  The paper's testbed mixed
        x86 (little) and SPARC (big); tests emulate the SPARC peer by
        constructing a session with ``endian=BIG``.
    format_fetcher:
        Optional callable ``(format_id) -> Format | None`` consulted for
        unknown ids — typically :meth:`repro.pbio.server.FormatClient.fetch`.
    """

    def __init__(self, registry: FormatRegistry,
                 compiler: Optional[CodecCompiler] = None,
                 endian: str = LITTLE,
                 format_fetcher: Optional[Callable[[int], Optional[Format]]] = None) -> None:
        self.registry = registry
        self.compiler = compiler or CodecCompiler(registry)
        self.endian = endian
        self.format_fetcher = format_fetcher
        self.stats = SessionStats()
        self._announced: Set[int] = set()
        self._remote: Dict[int, Format] = {}

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def pack(self, fmt: Union[Format, str], value: Dict[str, Any]) -> list:
        """Encode ``value`` and return the list of wire blobs to transmit.

        The first call for a format yields ``[announcement, data]``; later
        calls yield ``[data]`` only.
        """
        if isinstance(fmt, str):
            fmt = self.registry.by_name(fmt)
        fid = self.registry.register(fmt)
        blobs = []
        if fid not in self._announced:
            announcement = encode_message(KIND_FORMAT, fid, fmt.to_wire(),
                                          self.endian)
            blobs.append(announcement)
            self._announced.add(fid)
            self.stats.announcements_sent += 1
        payload = self.compiler.encoder(fmt, self.endian)(value)
        blobs.append(encode_message(KIND_DATA, fid, payload, self.endian))
        self.stats.messages_sent += 1
        self.stats.bytes_sent += sum(len(b) for b in blobs)
        return blobs

    def pack_bytes(self, fmt: Union[Format, str],
                   value: Dict[str, Any]) -> bytes:
        """Like :meth:`pack` but concatenated — for stream transports that
        frame each :meth:`unpack_stream` call themselves."""
        return b"".join(self.pack(fmt, value))

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def unpack(self, blob: bytes) -> Optional[Tuple[Format, Dict[str, Any]]]:
        """Consume one wire message.

        Returns ``(format, value)`` for data messages and ``None`` for
        control messages (format announcements).
        """
        msg = parse_message(blob)
        self.stats.bytes_received += len(blob)
        if msg.kind == KIND_FORMAT:
            fmt = Format.from_wire(msg.payload)
            self._remote[msg.format_id] = fmt
            self.registry.register(fmt)
            self.stats.announcements_received += 1
            return None
        if msg.kind != KIND_DATA:
            raise DecodeError(f"unknown message kind {msg.kind}")
        fmt = self._resolve(msg.format_id)
        value, consumed = self.compiler.decoder(fmt, msg.endian)(msg.payload, 0)
        if consumed != len(msg.payload):
            raise DecodeError(
                f"format {fmt.name!r}: {len(msg.payload) - consumed} "
                f"trailing bytes in payload")
        self.stats.messages_received += 1
        return fmt, value

    def unpack_stream(self, blob: bytes) -> Tuple[Format, Dict[str, Any]]:
        """Consume a blob that may contain announcement(s) + one data message
        back to back (the output of :meth:`pack_bytes`)."""
        offset = 0
        result = None
        view = memoryview(blob)
        while offset < len(blob):
            if len(blob) - offset < HEADER_SIZE:
                raise DecodeError("trailing garbage after PBIO message")
            msg_len = self._message_length(view, offset)
            result = self.unpack(bytes(view[offset:offset + msg_len]))
            offset += msg_len
        if result is None:
            raise DecodeError("stream contained no data message")
        return result

    def _message_length(self, view: memoryview, offset: int) -> int:
        """Length of the message at ``offset``.

        Announcements are self-describing (metadata blob knows its length
        through its own fields), so for stream parsing we walk: FORMAT
        messages are followed by more messages; the final DATA message claims
        the rest of the blob.
        """
        _, _, kind, _ = _HEADER.unpack_from(view, offset)
        if kind == KIND_DATA:
            return len(view) - offset
        # Format metadata blob: parse it to find its end.
        payload_start = offset + HEADER_SIZE
        fmt_len = _format_metadata_length(bytes(view[payload_start:]))
        return HEADER_SIZE + fmt_len

    def _resolve(self, fid: int) -> Format:
        fmt = self._remote.get(fid)
        if fmt is not None:
            return fmt
        if self.registry.has_id(fid):
            return self.registry.by_id(fid)
        if self.format_fetcher is not None:
            fetched = self.format_fetcher(fid)
            if fetched is not None:
                self._remote[fid] = fetched
                self.registry.register(fetched)
                return fetched
        raise UnknownFormatError(fid)


def _format_metadata_length(blob: bytes) -> int:
    """Compute the byte length of a format-metadata blob by parsing it."""
    fmt = Format.from_wire(blob)  # raises DecodeError on truncation
    return len(fmt.to_wire())
