"""PBIO wire messages and the per-connection session protocol.

A PBIO *data message* is a small fixed header followed by the encoded
payload.  The header names the format by id and records the sender's byte
order, so the receiver can "make right" — convert from the sender's native
layout — without the sender ever translating its own data.

The first time a session sends a given format it precedes the data message
with a *format announcement* carrying the full format metadata; receivers
cache it (locally and, when configured, in the shared format server), so
subsequent messages of the same type cost only the 12-byte header.  This is
the registration handshake of §III-B: "This transaction occurs only once,
since the format is cached locally thereafter."

The wire path is zero-copy end-to-end:

* :func:`parse_message` hands out the payload as a :class:`memoryview`
  slice over the caller's buffer — nothing is copied until a decoder
  materializes leaf values (and large primitive arrays decode as NumPy
  views over the same buffer, so even they stay copy-free);
* :func:`encode_message` accepts the un-joined buffer list produced by
  ``CodecCompiler.encoder_parts`` and performs a single writev-style
  ``bytes.join`` with the header, instead of joining the payload and then
  copying it again behind the header.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from .compiler import BIG, LITTLE, CodecCompiler
from .errors import DecodeError, FormatError, UnknownFormatError
from .fmt import Format
from .registry import FormatRegistry

MAGIC = b"PB"
_HEADER = struct.Struct("<2sBBI")  # magic, flags, kind, format id
HEADER_SIZE = _HEADER.size

FLAG_LITTLE_ENDIAN = 0x01
#: Dual-purpose negotiation flag (docs/wire-compact.md).  On a DATA
#: message it marks the payload as compact-encoded (varint/zigzag).  On a
#: FORMAT announcement it advertises that the *sender* can decode compact
#: payloads — the capability half of the per-link handshake.
FLAG_COMPACT = 0x02

KIND_DATA = 0
KIND_FORMAT = 1

#: Valid ``PbioSession(wire=...)`` policies: ``"native"`` never sends
#: compact and never advertises; ``"auto"`` advertises and switches to
#: compact once the peer advertises too; ``"compact"`` forces compact
#: data unconditionally (both ends known-capable).
WIRE_MODES = ("auto", "native", "compact")

Buffer = Union[bytes, bytearray, memoryview]


@dataclass
class Message:
    """A parsed PBIO wire message.

    ``payload`` is a :class:`memoryview` slice over the buffer given to
    :func:`parse_message` — no copy is made.  Use :attr:`payload_bytes`
    when an owned ``bytes`` object is genuinely needed.
    """

    kind: int
    endian: str
    format_id: int
    payload: Buffer
    #: DATA: payload is compact-encoded.  FORMAT: sender decodes compact.
    compact: bool = False

    @property
    def is_data(self) -> bool:
        return self.kind == KIND_DATA

    @property
    def payload_bytes(self) -> bytes:
        """The payload materialized as ``bytes`` (copies on demand)."""
        payload = self.payload
        return payload if isinstance(payload, bytes) else bytes(payload)


def encode_message(kind: int, format_id: int,
                   payload: Union[Buffer, Sequence[Buffer]],
                   endian: str = LITTLE, compact: bool = False) -> bytes:
    """Frame a payload as a PBIO wire message.

    ``payload`` may be a single buffer or a sequence of buffers (the
    output of ``CodecCompiler.encoder_parts``); a sequence is joined
    together with the header in one pass, so the payload bytes are copied
    exactly once.  ``compact`` sets :data:`FLAG_COMPACT` (compact payload
    on DATA, capability advertisement on FORMAT).
    """
    flags = FLAG_LITTLE_ENDIAN if endian == LITTLE else 0
    if compact:
        flags |= FLAG_COMPACT
    header = _HEADER.pack(MAGIC, flags, kind, format_id)
    if isinstance(payload, (list, tuple)):
        return b"".join([header, *payload])
    return header + payload


def parse_message(blob: Buffer) -> Message:
    """Parse a wire blob into a :class:`Message` without copying.

    Raises :class:`~repro.pbio.errors.DecodeError` for short blobs or a bad
    magic — the failure-injection tests feed truncated messages here.
    """
    if len(blob) < HEADER_SIZE:
        raise DecodeError(f"message shorter than header "
                          f"({len(blob)} < {HEADER_SIZE})")
    magic, flags, kind, format_id = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise DecodeError(f"bad PBIO magic {magic!r}")
    endian = LITTLE if flags & FLAG_LITTLE_ENDIAN else BIG
    view = blob if isinstance(blob, memoryview) else memoryview(blob)
    return Message(kind=kind, endian=endian, format_id=format_id,
                   payload=view[HEADER_SIZE:],
                   compact=bool(flags & FLAG_COMPACT))


@dataclass
class SessionStats:
    """Counters exposed for the microbenchmarks (registration cost is only
    paid on the first message of each format — Fig. 5/6 discussion)."""

    messages_sent: int = 0
    messages_received: int = 0
    announcements_sent: int = 0
    announcements_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    compact_sent: int = 0
    compact_received: int = 0


class PbioSession:
    """Encode/decode values for one logical connection.

    The session owns the *sender-side* knowledge of which formats the peer
    has already seen, and the *receiver-side* cache of the peer's id → format
    bindings.  It is transport-agnostic: :meth:`pack` returns the wire blobs
    to send (possibly announcement + data) and :meth:`unpack` consumes one
    received blob.

    Parameters
    ----------
    registry:
        Local format registry (ids in announcements come from here).
    compiler:
        Shared codec compiler; defaults to the registry's own
        (``registry.compiler``), so sessions sharing a registry share
        compiled codecs.
    endian:
        The *native byte order this host writes*.  The paper's testbed mixed
        x86 (little) and SPARC (big); tests emulate the SPARC peer by
        constructing a session with ``endian=BIG``.
    format_fetcher:
        Optional callable ``(format_id) -> Format | None`` consulted for
        unknown ids — typically :meth:`repro.pbio.server.FormatClient.fetch`.
    adopt_redefines:
        Trust model for incoming format announcements whose *name* is
        already bound to a different structure in the local registry.
        ``True`` treats the peer's announcement as authoritative and
        rebinds the name via :meth:`FormatRegistry.redefine` — correct
        only when the peer *owns* the registry's contents, i.e. on the
        client side of a live quality redefinition (the server re-announces
        the new layout; see ``docs/caching.md``).  The default ``False``
        raises :class:`~repro.pbio.errors.FormatError`, failing that one
        message: a server must never let one client rebind server-owned
        format names (and flush every codec/response cache) for all
        connections.
    wire:
        Compact-encoding policy for *sent* data (one of
        :data:`WIRE_MODES`).  ``"auto"`` (default) advertises the compact
        capability on announcements and switches to compact payloads once
        the peer has advertised too; ``"native"`` never advertises or
        sends compact; ``"compact"`` forces compact unconditionally.
        Decoding is universal — every session accepts compact data
        regardless of its own policy, so a compact speaker facing a
        native-only listener still interoperates (and an ``"auto"``
        speaker facing one simply stays native).
    """

    def __init__(self, registry: FormatRegistry,
                 compiler: Optional[CodecCompiler] = None,
                 endian: str = LITTLE,
                 format_fetcher: Optional[Callable[[int], Optional[Format]]] = None,
                 adopt_redefines: bool = False,
                 wire: str = "auto") -> None:
        self.registry = registry
        if compiler is None:
            compiler = getattr(registry, "compiler", None) \
                or CodecCompiler(registry)
        self.compiler = compiler
        self.endian = endian
        self.format_fetcher = format_fetcher
        self.adopt_redefines = adopt_redefines
        if wire not in WIRE_MODES:
            raise ValueError(f"wire must be one of {WIRE_MODES}, got {wire!r}")
        self.wire = wire
        self._peer_compact_capable = False
        self.stats = SessionStats()
        self._announced: Set[int] = set()
        self._remote: Dict[int, Format] = {}
        # Join the redefine() invalidation contract (weakly, like the
        # codec/xlate caches): a redefined format keeps its wire id, so
        # without this the peer would keep decoding with stale metadata.
        attach = getattr(registry, "_attach_compiler", None)
        if attach is not None:
            attach(self)

    def invalidate(self) -> None:
        """Forget which formats the peer has seen (called on
        :meth:`~repro.pbio.FormatRegistry.redefine`): the next send of
        each format re-announces it, overwriting the peer's stale id
        binding with the new metadata."""
        # The peer's decode capability is a property of the peer, not of
        # any format — redefinition does not forget it.
        self._announced.clear()

    @property
    def peer_compact_capable(self) -> bool:
        """True once the peer has proved it decodes compact payloads."""
        return self._peer_compact_capable

    def mark_peer_compact_capable(self) -> None:
        """Record out-of-band knowledge that the peer decodes compact —
        e.g. a paired receive session on the same link saw the peer's
        capability advert (the record-stream reply path)."""
        self._peer_compact_capable = True

    def _use_compact(self) -> bool:
        return self.wire == "compact" or (
            self.wire == "auto" and self._peer_compact_capable)

    def wire_rep(self) -> str:
        """The representation the *next* data message will use —
        ``"compact"`` or ``"native"``.  Cache layers key response variants
        on this so compact and native payloads never alias."""
        return "compact" if self._use_compact() else "native"

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def pack(self, fmt: Union[Format, str], value: Dict[str, Any]) -> list:
        """Encode ``value`` and return the list of wire blobs to transmit.

        The first call for a format yields ``[announcement, data]``; later
        calls yield ``[data]`` only.
        """
        if isinstance(fmt, str):
            fmt = self.registry.by_name(fmt)
        fid = self.registry.register(fmt)
        blobs = []
        if fid not in self._announced:
            blobs.append(self._announce(fmt, fid))
        compact = self._use_compact()
        if compact:
            parts = self.compiler.compact_encoder_parts(fmt)(value)
            self.stats.compact_sent += 1
        else:
            parts = self.compiler.encoder_parts(fmt, self.endian)(value)
        blobs.append(encode_message(KIND_DATA, fid, parts, self.endian,
                                    compact=compact))
        self.stats.messages_sent += 1
        self.stats.bytes_sent += sum(len(b) for b in blobs)
        return blobs

    def pack_bytes(self, fmt: Union[Format, str],
                   value: Dict[str, Any]) -> bytes:
        """Like :meth:`pack` but concatenated — for stream transports that
        frame each :meth:`unpack_stream` call themselves.

        The announcement (if due), the data header and the payload parts
        are joined in a single pass.
        """
        if isinstance(fmt, str):
            fmt = self.registry.by_name(fmt)
        fid = self.registry.register(fmt)
        parts: List[bytes] = []
        if fid not in self._announced:
            parts.append(self._announce(fmt, fid))
        compact = self._use_compact()
        flags = FLAG_LITTLE_ENDIAN if self.endian == LITTLE else 0
        if compact:
            flags |= FLAG_COMPACT
        parts.append(_HEADER.pack(MAGIC, flags, KIND_DATA, fid))
        if compact:
            parts.extend(self.compiler.compact_encoder_parts(fmt)(value))
            self.stats.compact_sent += 1
        else:
            parts.extend(self.compiler.encoder_parts(fmt, self.endian)(value))
        blob = b"".join(parts)
        self.stats.messages_sent += 1
        self.stats.bytes_sent += len(blob)
        return blob

    def has_announced(self, fmt: Union[Format, str]) -> bool:
        """True once this session has announced ``fmt`` to the peer — i.e.
        the next :meth:`pack_bytes` for it is a data-only message."""
        if isinstance(fmt, str):
            if not self.registry.has_name(fmt):
                return False
            fmt = self.registry.by_name(fmt)
        try:
            fid = self.registry.id_of(fmt)
        except FormatError:
            return False
        return fid in self._announced

    def send_cached(self, blob: bytes) -> bytes:
        """Account for a pre-encoded data message being replayed on this
        session (the response-cache byte path), keeping :attr:`stats`
        consistent with :meth:`pack_bytes`."""
        self.stats.messages_sent += 1
        self.stats.bytes_sent += len(blob)
        return blob

    def _announce(self, fmt: Format, fid: int) -> bytes:
        # Announcements double as the capability advert: any session not
        # pinned to native tells the peer it can decode compact payloads.
        announcement = encode_message(KIND_FORMAT, fid, fmt.to_wire(),
                                      self.endian,
                                      compact=(self.wire != "native"))
        self._announced.add(fid)
        self.stats.announcements_sent += 1
        return announcement

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def unpack(self, blob: Buffer) -> Optional[Tuple[Format, Dict[str, Any]]]:
        """Consume one wire message (``bytes`` or ``memoryview``).

        Returns ``(format, value)`` for data messages and ``None`` for
        control messages (format announcements).
        """
        msg = parse_message(blob)
        self.stats.bytes_received += len(blob)
        if msg.kind == KIND_FORMAT:
            fmt = Format.from_wire(msg.payload)
            try:
                self.registry.register(fmt)
            except FormatError:
                # The peer announced a name this registry already binds to
                # a different structure.  Only a session that explicitly
                # trusts its peer — the client side of a live quality
                # redefinition — may rebind shared registry state (which
                # also flushes codec plans compiled for the old layout).
                # Everywhere else the conflict fails this one message, so
                # a single peer can never rebind server-owned names or
                # thrash shared caches for every other connection.
                if not self.adopt_redefines:
                    raise
                self.registry.redefine(fmt)
            self._remote[msg.format_id] = fmt
            self.stats.announcements_received += 1
            if msg.compact:
                self._peer_compact_capable = True
            return None
        if msg.kind != KIND_DATA:
            raise DecodeError(f"unknown message kind {msg.kind}")
        fmt = self._resolve(msg.format_id)
        if msg.compact:
            # Universal decode: compact data is accepted regardless of this
            # session's own wire policy.  A peer that *sends* compact can
            # obviously decode it, so this also learns the capability.
            self._peer_compact_capable = True
            self.stats.compact_received += 1
            decode = self.compiler.compact_decoder(fmt)
        else:
            decode = self.compiler.decoder(fmt, msg.endian)
        value, consumed = decode(msg.payload, 0)
        if consumed != len(msg.payload):
            raise DecodeError(
                f"format {fmt.name!r}: {len(msg.payload) - consumed} "
                f"trailing bytes in payload")
        self.stats.messages_received += 1
        return fmt, value

    def unpack_stream(self, blob: Buffer) -> Tuple[Format, Dict[str, Any]]:
        """Consume a blob that may contain announcement(s) + one data message
        back to back (the output of :meth:`pack_bytes`)."""
        offset = 0
        result = None
        view = blob if isinstance(blob, memoryview) else memoryview(blob)
        total = len(view)
        while offset < total:
            if total - offset < HEADER_SIZE:
                raise DecodeError("trailing garbage after PBIO message")
            msg_len = self._message_length(view, offset)
            result = self.unpack(view[offset:offset + msg_len])
            offset += msg_len
        if result is None:
            raise DecodeError("stream contained no data message")
        return result

    def _message_length(self, view: memoryview, offset: int) -> int:
        """Length of the message at ``offset``.

        Announcements are self-describing (metadata blob knows its length
        through its own fields), so for stream parsing we walk: FORMAT
        messages are followed by more messages; the final DATA message claims
        the rest of the blob.
        """
        _, _, kind, _ = _HEADER.unpack_from(view, offset)
        if kind == KIND_DATA:
            return len(view) - offset
        # Format metadata blob: parse it to find its end.
        _, fmt_len = Format.from_wire_prefix(view[offset + HEADER_SIZE:])
        return HEADER_SIZE + fmt_len

    def _resolve(self, fid: int) -> Format:
        fmt = self._remote.get(fid)
        if fmt is not None:
            return fmt
        if self.registry.has_id(fid):
            return self.registry.by_id(fid)
        if self.format_fetcher is not None:
            fetched = self.format_fetcher(fid)
            if fetched is not None:
                self._remote[fid] = fetched
                self.registry.register(fetched)
                return fetched
        raise UnknownFormatError(fid)
