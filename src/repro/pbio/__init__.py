"""PBIO — Portable Binary I/O, the binary substrate of SOAP-bin.

This package reimplements the PBIO system the paper builds on (Eisenhauer,
Bustamante, Schwan — "Native Data Representation", TPDS 2002): named binary
*formats* that play the role of XML schemas, a *format server* with one-time
registration and caching, native-byte-order sending with receiver-side
conversion ("receiver makes right"), and dynamically generated per-format
encode/decode code.

Typical use::

    from repro import pbio

    registry = pbio.FormatRegistry()
    fmt = pbio.Format.from_dict("sample", {"seq": "int32", "data": "float64[]"})
    registry.register(fmt)

    session = pbio.PbioSession(registry)
    blobs = session.pack(fmt, {"seq": 1, "data": [1.0, 2.0]})
    # ... transmit blobs; at the receiver:
    for blob in blobs:
        result = session.unpack(blob)
    fmt, value = result
"""

from .compiler import BIG, LITTLE, CodecCompiler, flatten_fixed_format
from .convert import compile_converter, project, zero_value
from .interp import (decode_uvarint, encode_uvarint, interp_decode,
                     interp_decode_compact, interp_encode,
                     interp_encode_compact, unzigzag, zigzag)
from .errors import (ConversionError, DecodeError, EncodeError, FormatError,
                     PbioError, UnknownFormatError)
from .fmt import Field, Format
from .registry import FormatRegistry, default_registry
from .server import FormatClient, FormatServer, InMemoryFormatServer
from .stream import (FRAME_HEADER_SIZE, PbioStreamHandler,
                     RecordStreamReader, RecordStreamWriter, encode_frame,
                     iter_frames, pbio_stream_route)
from .types import (CHAR, FLOAT32, FLOAT64, INT8, INT16, INT32, INT64,
                    STRING, UINT8, UINT16, UINT32, UINT64, Array, FieldType,
                    Primitive, StructRef, parse_type, schema_type)
from .wire import (FLAG_COMPACT, HEADER_SIZE, KIND_DATA, KIND_FORMAT,
                   Message, PbioSession, SessionStats, WIRE_MODES,
                   encode_message, parse_message)

__all__ = [
    "PbioError", "FormatError", "UnknownFormatError", "EncodeError",
    "DecodeError", "ConversionError",
    "Primitive", "Array", "StructRef", "FieldType", "parse_type",
    "schema_type",
    "INT8", "INT16", "INT32", "INT64", "UINT8", "UINT16", "UINT32", "UINT64",
    "FLOAT32", "FLOAT64", "CHAR", "STRING",
    "Field", "Format",
    "FormatRegistry", "default_registry",
    "CodecCompiler", "LITTLE", "BIG", "flatten_fixed_format",
    "interp_encode", "interp_decode",
    "interp_encode_compact", "interp_decode_compact",
    "encode_uvarint", "decode_uvarint", "zigzag", "unzigzag",
    "compile_converter", "project", "zero_value",
    "InMemoryFormatServer", "FormatServer", "FormatClient",
    "PbioSession", "SessionStats", "Message", "encode_message",
    "parse_message", "KIND_DATA", "KIND_FORMAT", "HEADER_SIZE",
    "FLAG_COMPACT", "WIRE_MODES",
    "RecordStreamReader", "RecordStreamWriter", "PbioStreamHandler",
    "pbio_stream_route", "iter_frames", "encode_frame", "FRAME_HEADER_SIZE",
]
