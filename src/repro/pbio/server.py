"""The PBIO format server.

"Every PBIO transaction begins with a registration of the format with a
'format server', which collects and caches PBIO formats.  Whenever a new
type is encountered, the application consults the format server to interpret
the message." (§III-B)

Two implementations share one interface:

* :class:`InMemoryFormatServer` — a process-local store, used when client
  and server run in one process (simulated-transport benchmarks);
* :class:`FormatServer` / :class:`FormatClient` — a threaded TCP service
  with a 4-byte-length-framed request/response protocol, used by the
  socket-transport integration tests.

Protocol (all integers little-endian):

====  =======================  =========================================
op    request payload           response payload
====  =======================  =========================================
0x01  format metadata blob     u32 assigned id
0x02  u32 format id            u8 found flag + metadata blob when found
====  =======================  =========================================
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Dict, Optional, Tuple

from .errors import PbioError
from .fmt import Format

OP_REGISTER = 0x01
OP_LOOKUP = 0x02


class InMemoryFormatServer:
    """Format store for single-process deployments.

    Ids are global across the process, mirroring the role the networked
    format server plays between hosts.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_id: Dict[int, Format] = {}
        self._id_by_fp: Dict[str, int] = {}
        self._next_id = 1
        self.register_count = 0
        self.lookup_count = 0

    def register(self, fmt: Format) -> int:
        """Store ``fmt`` (idempotent by fingerprint) and return its id."""
        with self._lock:
            self.register_count += 1
            fid = self._id_by_fp.get(fmt.fingerprint)
            if fid is None:
                fid = self._next_id
                self._next_id += 1
                self._by_id[fid] = fmt
                self._id_by_fp[fmt.fingerprint] = fid
            return fid

    def fetch(self, fid: int) -> Optional[Format]:
        """Return the format registered under ``fid``, or None."""
        with self._lock:
            self.lookup_count += 1
            return self._by_id.get(fid)

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_id)


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(struct.pack("<I", len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Optional[bytes]:
    header = _recv_exact(sock, 4)
    if header is None:
        return None
    (length,) = struct.unpack("<I", header)
    if length > 64 * 1024 * 1024:
        raise PbioError(f"format server frame too large ({length} bytes)")
    return _recv_exact(sock, length)


class FormatServer:
    """A threaded TCP format server.

    Use as a context manager::

        with FormatServer() as server:
            client = FormatClient(server.address)
            fid = client.register(fmt)
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._store = InMemoryFormatServer()
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)
        self.address: Tuple[str, int] = self._sock.getsockname()
        self._running = True
        self._thread = threading.Thread(target=self._accept_loop,
                                        name="pbio-format-server",
                                        daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # socket closed during shutdown
            worker = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True)
            worker.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while True:
                try:
                    frame = _recv_frame(conn)
                except (OSError, PbioError):
                    return
                if frame is None or not frame:
                    return
                try:
                    response = self._handle(frame)
                except PbioError:
                    return
                try:
                    _send_frame(conn, response)
                except OSError:
                    return

    def _handle(self, frame: bytes) -> bytes:
        op = frame[0]
        if op == OP_REGISTER:
            fmt = Format.from_wire(frame[1:])
            fid = self._store.register(fmt)
            return struct.pack("<I", fid)
        if op == OP_LOOKUP:
            (fid,) = struct.unpack_from("<I", frame, 1)
            fmt = self._store.fetch(fid)
            if fmt is None:
                return b"\x00"
            return b"\x01" + fmt.to_wire()
        raise PbioError(f"unknown format server op {op}")

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._running = False
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "FormatServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._store)


class FormatClient:
    """Client for :class:`FormatServer` with a local result cache.

    The cache is what turns the handshake into a one-time cost: after the
    first lookup of an id, :meth:`fetch` never touches the network again.
    """

    def __init__(self, address: Tuple[str, int]) -> None:
        self.address = address
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._cache: Dict[int, Format] = {}
        self._id_cache: Dict[str, int] = {}
        self.network_round_trips = 0

    def _connection(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(self.address, timeout=5.0)
        return self._sock

    def _call(self, request: bytes) -> bytes:
        with self._lock:
            sock = self._connection()
            _send_frame(sock, request)
            response = _recv_frame(sock)
            self.network_round_trips += 1
        if response is None:
            raise PbioError("format server closed the connection")
        return response

    def register(self, fmt: Format) -> int:
        """Register a format, returning its server-assigned id (cached)."""
        cached = self._id_cache.get(fmt.fingerprint)
        if cached is not None:
            return cached
        response = self._call(bytes([OP_REGISTER]) + fmt.to_wire())
        (fid,) = struct.unpack("<I", response)
        self._id_cache[fmt.fingerprint] = fid
        self._cache[fid] = fmt
        return fid

    def fetch(self, fid: int) -> Optional[Format]:
        """Fetch a format by id (cached after the first round trip)."""
        cached = self._cache.get(fid)
        if cached is not None:
            return cached
        response = self._call(bytes([OP_LOOKUP]) + struct.pack("<I", fid))
        if response[:1] == b"\x00":
            return None
        fmt = Format.from_wire(response[1:])
        self._cache[fid] = fmt
        self._id_cache[fmt.fingerprint] = fid
        return fmt

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                finally:
                    self._sock = None

    def __enter__(self) -> "FormatClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
