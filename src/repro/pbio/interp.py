"""The interpreted PBIO codec — the reference "slow path".

This is the field-walk the paper's measurements argue against: for every
message it re-traverses the format metadata, dispatching per field and per
array element.  It produces byte-for-byte the same wire encoding as the
compiled codecs in :mod:`repro.pbio.compiler`, which makes it the oracle
for differential tests and the fallback when dynamic code generation is
disabled (``CodecCompiler(use_codegen=False)``).

Keep this module boring on purpose: correctness and readability over
speed.  Anything clever belongs in the compiler.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Tuple

from .errors import DecodeError, EncodeError, FormatError
from .fmt import Format
from .types import Array, FieldType, Primitive, StructRef

LITTLE = "<"
BIG = ">"


def _registry_lookup(registry: Any, name: str) -> Format:
    if registry is None:
        raise FormatError(f"nested struct {name!r} needs a registry")
    return registry.by_name(name)


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------

def interp_encode(fmt: Format, value: Dict[str, Any],
                  registry: Any = None, endian: str = LITTLE) -> bytes:
    """Encode ``value`` by walking ``fmt`` field by field."""
    out: list = []
    for field in fmt.fields:
        try:
            field_value = value[field.name]
        except (KeyError, TypeError):
            raise EncodeError(
                f"format {fmt.name!r}: missing field '{field.name}'")
        _encode_value(out, field.name, field_value, field.ftype, registry,
                      endian)
    return b"".join(out)


def _encode_value(out: list, fname: str, value: Any, ftype: FieldType,
                  registry: Any, endian: str) -> None:
    if isinstance(ftype, Primitive):
        out.append(_encode_primitive(fname, value, ftype, endian))
        return
    if isinstance(ftype, Array):
        if ftype.length is not None:
            if len(value) != ftype.length:
                raise EncodeError(
                    f"field {fname!r}: expected {ftype.length} elements, "
                    f"got {len(value)}")
        else:
            out.append(struct.pack("<I", len(value)))
        for item in value:
            _encode_value(out, fname, item, ftype.element, registry, endian)
        return
    if isinstance(ftype, StructRef):
        sub = _registry_lookup(registry, ftype.format_name)
        out.append(interp_encode(sub, value, registry, endian))
        return
    raise FormatError(f"cannot encode type {ftype!r}")


def _encode_primitive(fname: str, value: Any, ftype: Primitive,
                      endian: str) -> bytes:
    try:
        if ftype.kind == "string":
            raw = value.encode("utf-8")
            return struct.pack("<I", len(raw)) + raw
        if ftype.kind == "char":
            return value.encode("latin-1")
        return struct.pack(endian + ftype.struct_char, value)
    except (struct.error, AttributeError, TypeError) as exc:
        raise EncodeError(f"field {fname!r}: {exc}")


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------

def interp_decode(fmt: Format, buf: Any, offset: int = 0,
                  registry: Any = None,
                  endian: str = LITTLE) -> Tuple[Dict[str, Any], int]:
    """Decode one ``fmt`` value starting at ``offset``; returns
    ``(value, new_offset)``."""
    value: Dict[str, Any] = {}
    for field in fmt.fields:
        value[field.name], offset = _decode_value(
            fmt.name, buf, offset, field.ftype, registry, endian)
    return value, offset


def _decode_value(ctx: str, buf: Any, offset: int, ftype: FieldType,
                  registry: Any, endian: str) -> Tuple[Any, int]:
    if isinstance(ftype, Primitive):
        return _decode_primitive(ctx, buf, offset, ftype, endian)
    if isinstance(ftype, Array):
        if ftype.length is not None:
            count = ftype.length
        else:
            count, offset = _unpack(ctx, "<I", buf, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_value(ctx, buf, offset, ftype.element,
                                         registry, endian)
            items.append(item)
        return items, offset
    if isinstance(ftype, StructRef):
        sub = _registry_lookup(registry, ftype.format_name)
        return interp_decode(sub, buf, offset, registry, endian)
    raise FormatError(f"cannot decode type {ftype!r}")


def _decode_primitive(ctx: str, buf: Any, offset: int, ftype: Primitive,
                      endian: str) -> Tuple[Any, int]:
    if ftype.kind == "string":
        n, offset = _unpack(ctx, "<I", buf, offset)
        end = offset + n
        if end > len(buf):
            raise DecodeError(f"format {ctx!r}: truncated string body")
        return bytes(buf[offset:end]).decode("utf-8"), end
    if ftype.kind == "char":
        if offset + 1 > len(buf):
            raise DecodeError(f"format {ctx!r}: truncated char")
        return bytes(buf[offset:offset + 1]).decode("latin-1"), offset + 1
    value, offset = _unpack(ctx, endian + ftype.struct_char, buf, offset)
    return value, offset


def _unpack(ctx: str, spec: str, buf: Any, offset: int) -> Tuple[Any, int]:
    try:
        (value,) = struct.unpack_from(spec, buf, offset)
    except struct.error as exc:
        raise DecodeError(f"format {ctx!r}: truncated message: {exc}")
    return value, offset + struct.calcsize(spec)


# ----------------------------------------------------------------------
# the compact (varint/zigzag) encoding
# ----------------------------------------------------------------------
#
# The negotiated alternative to the native layout (docs/wire-compact.md):
#
# * signed integers   -> zigzag-mapped unsigned varint,
# * unsigned integers -> unsigned varint,
# * float32/float64   -> fixed 4/8 little-endian bytes (IEEE 754),
# * char              -> one latin-1 byte,
# * string            -> varint byte length + UTF-8 bytes,
# * variable arrays   -> varint element count + elements,
# * fixed arrays      -> elements only (the count lives in the format),
# * nested structs    -> fields inline.
#
# The encoding is endianness-independent, so compact codec plans are
# cached per fingerprint alone.  These interpreted walkers are the
# byte-exact oracle for the compiled plans in ``compiler.py``.

#: integer kind -> inclusive wire range (checked on encode *and* decode:
#: the native layout enforces the same ranges through ``struct.pack``)
_INT_RANGES = {
    "int8": (-(1 << 7), (1 << 7) - 1),
    "int16": (-(1 << 15), (1 << 15) - 1),
    "int32": (-(1 << 31), (1 << 31) - 1),
    "int64": (-(1 << 63), (1 << 63) - 1),
    "uint8": (0, (1 << 8) - 1),
    "uint16": (0, (1 << 16) - 1),
    "uint32": (0, (1 << 32) - 1),
    "uint64": (0, (1 << 64) - 1),
}

_FLOAT_STRUCTS = {"float32": struct.Struct("<f"),
                  "float64": struct.Struct("<d")}

#: a 64-bit unsigned varint never needs more than 10 groups of 7 bits
MAX_VARINT_BYTES = 10


def zigzag(n: int) -> int:
    """Map a signed integer onto the unsigned varint space (-1 -> 1)."""
    return (n << 1) ^ (n >> 63)


def unzigzag(u: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (u >> 1) ^ -(u & 1)


def encode_uvarint(n: int) -> bytes:
    """Encode a non-negative integer as an LEB128-style varint."""
    if n < 0:
        raise EncodeError(f"varint cannot encode negative value {n}")
    out = bytearray()
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(buf: Any, offset: int) -> Tuple[int, int]:
    """Decode one varint at ``offset``; returns ``(value, new_offset)``.

    Raises :class:`DecodeError` on truncation and on overlong encodings
    (more than :data:`MAX_VARINT_BYTES` bytes, or bits beyond 64).
    """
    result = 0
    shift = 0
    end = len(buf)
    while True:
        if offset >= end:
            raise DecodeError("truncated varint")
        byte = buf[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if result >> 64:
                raise DecodeError("varint exceeds 64 bits")
            return result, offset
        shift += 7
        if shift >= 7 * MAX_VARINT_BYTES:
            raise DecodeError("varint longer than 10 bytes")


def interp_encode_compact(fmt: Format, value: Dict[str, Any],
                          registry: Any = None) -> bytes:
    """Encode ``value`` in the compact representation (field walk)."""
    out: list = []
    for field in fmt.fields:
        try:
            field_value = value[field.name]
        except (KeyError, TypeError):
            raise EncodeError(
                f"format {fmt.name!r}: missing field '{field.name}'")
        _encode_compact_value(out, field.name, field_value, field.ftype,
                              registry)
    return b"".join(out)


def _encode_compact_value(out: list, fname: str, value: Any,
                          ftype: FieldType, registry: Any) -> None:
    if isinstance(ftype, Primitive):
        out.append(_encode_compact_primitive(fname, value, ftype))
        return
    if isinstance(ftype, Array):
        if ftype.length is not None:
            if len(value) != ftype.length:
                raise EncodeError(
                    f"field {fname!r}: expected {ftype.length} elements, "
                    f"got {len(value)}")
        else:
            out.append(encode_uvarint(len(value)))
        for item in value:
            _encode_compact_value(out, fname, item, ftype.element, registry)
        return
    if isinstance(ftype, StructRef):
        sub = _registry_lookup(registry, ftype.format_name)
        out.append(interp_encode_compact(sub, value, registry))
        return
    raise FormatError(f"cannot encode type {ftype!r}")


def _encode_compact_primitive(fname: str, value: Any,
                              ftype: Primitive) -> bytes:
    kind = ftype.kind
    rng = _INT_RANGES.get(kind)
    if rng is not None:
        try:
            n = value.__index__()
        except (AttributeError, TypeError):
            raise EncodeError(
                f"field {fname!r}: required an integer, got "
                f"{type(value).__name__}")
        if not rng[0] <= n <= rng[1]:
            raise EncodeError(
                f"field {fname!r}: {n} out of range for {kind}")
        if kind[0] == "i":
            n = zigzag(n)
        return encode_uvarint(n)
    try:
        if kind == "string":
            raw = value.encode("utf-8")
            return encode_uvarint(len(raw)) + raw
        if kind == "char":
            return value.encode("latin-1")
        return _FLOAT_STRUCTS[kind].pack(value)
    except (struct.error, AttributeError, TypeError,
            UnicodeEncodeError) as exc:
        raise EncodeError(f"field {fname!r}: {exc}")


def interp_decode_compact(fmt: Format, buf: Any, offset: int = 0,
                          registry: Any = None
                          ) -> Tuple[Dict[str, Any], int]:
    """Decode one compact ``fmt`` value starting at ``offset``."""
    value: Dict[str, Any] = {}
    for field in fmt.fields:
        value[field.name], offset = _decode_compact_value(
            fmt.name, buf, offset, field.ftype, registry)
    return value, offset


def _decode_compact_value(ctx: str, buf: Any, offset: int,
                          ftype: FieldType, registry: Any
                          ) -> Tuple[Any, int]:
    if isinstance(ftype, Primitive):
        return _decode_compact_primitive(ctx, buf, offset, ftype)
    if isinstance(ftype, Array):
        if ftype.length is not None:
            count = ftype.length
        else:
            count, offset = decode_uvarint(buf, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_compact_value(ctx, buf, offset,
                                                 ftype.element, registry)
            items.append(item)
        return items, offset
    if isinstance(ftype, StructRef):
        sub = _registry_lookup(registry, ftype.format_name)
        return interp_decode_compact(sub, buf, offset, registry)
    raise FormatError(f"cannot decode type {ftype!r}")


def _decode_compact_primitive(ctx: str, buf: Any, offset: int,
                              ftype: Primitive) -> Tuple[Any, int]:
    kind = ftype.kind
    rng = _INT_RANGES.get(kind)
    if rng is not None:
        u, offset = decode_uvarint(buf, offset)
        n = unzigzag(u) if kind[0] == "i" else u
        if not rng[0] <= n <= rng[1]:
            raise DecodeError(f"format {ctx!r}: {n} out of range for {kind}")
        return n, offset
    if kind == "string":
        n, offset = decode_uvarint(buf, offset)
        end = offset + n
        if end > len(buf):
            raise DecodeError(f"format {ctx!r}: truncated string body")
        try:
            return bytes(buf[offset:end]).decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise DecodeError(f"format {ctx!r}: bad string bytes: {exc}")
    if kind == "char":
        if offset + 1 > len(buf):
            raise DecodeError(f"format {ctx!r}: truncated char")
        return bytes(buf[offset:offset + 1]).decode("latin-1"), offset + 1
    st = _FLOAT_STRUCTS[kind]
    try:
        (value,) = st.unpack_from(buf, offset)
    except struct.error as exc:
        raise DecodeError(f"format {ctx!r}: truncated {kind}: {exc}")
    return value, offset + st.size
