"""The interpreted PBIO codec — the reference "slow path".

This is the field-walk the paper's measurements argue against: for every
message it re-traverses the format metadata, dispatching per field and per
array element.  It produces byte-for-byte the same wire encoding as the
compiled codecs in :mod:`repro.pbio.compiler`, which makes it the oracle
for differential tests and the fallback when dynamic code generation is
disabled (``CodecCompiler(use_codegen=False)``).

Keep this module boring on purpose: correctness and readability over
speed.  Anything clever belongs in the compiler.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Tuple

from .errors import DecodeError, EncodeError, FormatError
from .fmt import Format
from .types import Array, FieldType, Primitive, StructRef

LITTLE = "<"
BIG = ">"


def _registry_lookup(registry: Any, name: str) -> Format:
    if registry is None:
        raise FormatError(f"nested struct {name!r} needs a registry")
    return registry.by_name(name)


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------

def interp_encode(fmt: Format, value: Dict[str, Any],
                  registry: Any = None, endian: str = LITTLE) -> bytes:
    """Encode ``value`` by walking ``fmt`` field by field."""
    out: list = []
    for field in fmt.fields:
        try:
            field_value = value[field.name]
        except (KeyError, TypeError):
            raise EncodeError(
                f"format {fmt.name!r}: missing field '{field.name}'")
        _encode_value(out, field.name, field_value, field.ftype, registry,
                      endian)
    return b"".join(out)


def _encode_value(out: list, fname: str, value: Any, ftype: FieldType,
                  registry: Any, endian: str) -> None:
    if isinstance(ftype, Primitive):
        out.append(_encode_primitive(fname, value, ftype, endian))
        return
    if isinstance(ftype, Array):
        if ftype.length is not None:
            if len(value) != ftype.length:
                raise EncodeError(
                    f"field {fname!r}: expected {ftype.length} elements, "
                    f"got {len(value)}")
        else:
            out.append(struct.pack("<I", len(value)))
        for item in value:
            _encode_value(out, fname, item, ftype.element, registry, endian)
        return
    if isinstance(ftype, StructRef):
        sub = _registry_lookup(registry, ftype.format_name)
        out.append(interp_encode(sub, value, registry, endian))
        return
    raise FormatError(f"cannot encode type {ftype!r}")


def _encode_primitive(fname: str, value: Any, ftype: Primitive,
                      endian: str) -> bytes:
    try:
        if ftype.kind == "string":
            raw = value.encode("utf-8")
            return struct.pack("<I", len(raw)) + raw
        if ftype.kind == "char":
            return value.encode("latin-1")
        return struct.pack(endian + ftype.struct_char, value)
    except (struct.error, AttributeError, TypeError) as exc:
        raise EncodeError(f"field {fname!r}: {exc}")


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------

def interp_decode(fmt: Format, buf: Any, offset: int = 0,
                  registry: Any = None,
                  endian: str = LITTLE) -> Tuple[Dict[str, Any], int]:
    """Decode one ``fmt`` value starting at ``offset``; returns
    ``(value, new_offset)``."""
    value: Dict[str, Any] = {}
    for field in fmt.fields:
        value[field.name], offset = _decode_value(
            fmt.name, buf, offset, field.ftype, registry, endian)
    return value, offset


def _decode_value(ctx: str, buf: Any, offset: int, ftype: FieldType,
                  registry: Any, endian: str) -> Tuple[Any, int]:
    if isinstance(ftype, Primitive):
        return _decode_primitive(ctx, buf, offset, ftype, endian)
    if isinstance(ftype, Array):
        if ftype.length is not None:
            count = ftype.length
        else:
            count, offset = _unpack(ctx, "<I", buf, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_value(ctx, buf, offset, ftype.element,
                                         registry, endian)
            items.append(item)
        return items, offset
    if isinstance(ftype, StructRef):
        sub = _registry_lookup(registry, ftype.format_name)
        return interp_decode(sub, buf, offset, registry, endian)
    raise FormatError(f"cannot decode type {ftype!r}")


def _decode_primitive(ctx: str, buf: Any, offset: int, ftype: Primitive,
                      endian: str) -> Tuple[Any, int]:
    if ftype.kind == "string":
        n, offset = _unpack(ctx, "<I", buf, offset)
        end = offset + n
        if end > len(buf):
            raise DecodeError(f"format {ctx!r}: truncated string body")
        return bytes(buf[offset:end]).decode("utf-8"), end
    if ftype.kind == "char":
        if offset + 1 > len(buf):
            raise DecodeError(f"format {ctx!r}: truncated char")
        return bytes(buf[offset:offset + 1]).decode("latin-1"), offset + 1
    value, offset = _unpack(ctx, endian + ftype.struct_char, buf, offset)
    return value, offset


def _unpack(ctx: str, spec: str, buf: Any, offset: int) -> Tuple[Any, int]:
    try:
        (value,) = struct.unpack_from(spec, buf, offset)
    except struct.error as exc:
        raise DecodeError(f"format {ctx!r}: truncated message: {exc}")
    return value, offset + struct.calcsize(spec)
