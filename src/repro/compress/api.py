"""Uniform codec interface over the three Lempel-Ziv implementations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from . import lzss, lzw, zlib_codec
from .errors import CompressError


@dataclass(frozen=True)
class Codec:
    """A (compress, decompress) pair with a name, usable as a strategy."""

    name: str
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]

    def ratio(self, data: bytes) -> float:
        """Compression ratio (original / compressed) on ``data``."""
        compressed = self.compress(data)
        if not compressed:
            return float("inf")
        return len(data) / len(compressed)


_CODECS: Dict[str, Codec] = {
    "lzss": Codec("lzss", lzss.compress, lzss.decompress),
    "lzw": Codec("lzw", lzw.compress, lzw.decompress),
    "zlib": Codec("zlib", zlib_codec.compress, zlib_codec.decompress),
}

#: Codec used by the SOAP compressed-XML path unless overridden.
DEFAULT_CODEC_NAME = "zlib"


def get_codec(name: str = DEFAULT_CODEC_NAME) -> Codec:
    """Look up a codec by name (``lzss``, ``lzw`` or ``zlib``).

    >>> get_codec("lzss").name
    'lzss'
    """
    try:
        return _CODECS[name]
    except KeyError:
        raise CompressError(
            f"unknown codec {name!r}; available: {sorted(_CODECS)}")


def codec_names() -> list:
    """All registered codec names, sorted."""
    return sorted(_CODECS)
