"""zlib (DEFLATE) adapter behind the common codec interface.

DEFLATE is LZ77 + Huffman coding, i.e. exactly the "Lempel-Ziv encoding"
family the paper's compressed-XML baseline uses.  The benchmarks default to
this codec because its C implementation gives compression times on modern
hardware that are *relatively* comparable to the paper's 2004 C setup,
whereas the from-scratch pure-Python LZSS would distort time-based
comparisons (it remains fully exercised by the unit/property tests and the
compression ablation bench).
"""

from __future__ import annotations

import zlib

from .errors import CompressError

#: zlib level 6 is the library default and a sane speed/size middle ground.
DEFAULT_LEVEL = 6


def compress(data: bytes, level: int = DEFAULT_LEVEL) -> bytes:
    """Compress with DEFLATE."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise CompressError("zlib input must be bytes-like")
    return zlib.compress(bytes(data), level)


def decompress(blob: bytes) -> bytes:
    """Decompress DEFLATE data, normalizing zlib errors."""
    try:
        return zlib.decompress(bytes(blob))
    except zlib.error as exc:
        raise CompressError(f"corrupt zlib stream: {exc}")
