"""Exception types for the compression substrate."""

from __future__ import annotations


class CompressError(Exception):
    """Raised on corrupt, truncated or type-invalid codec input."""
