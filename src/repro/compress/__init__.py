"""Lempel-Ziv compression substrate (compressed-XML SOAP baseline).

Three codecs behind one interface: a from-scratch LZSS (sliding window), a
from-scratch LZW (dictionary), and a zlib/DEFLATE adapter::

    from repro.compress import get_codec
    codec = get_codec("lzss")
    blob = codec.compress(b"data")
    assert codec.decompress(blob) == b"data"
"""

from . import lzss, lzw, zlib_codec
from .api import DEFAULT_CODEC_NAME, Codec, codec_names, get_codec
from .errors import CompressError

__all__ = ["Codec", "get_codec", "codec_names", "DEFAULT_CODEC_NAME",
           "CompressError", "lzss", "lzw", "zlib_codec"]
