"""A from-scratch LZSS (Lempel-Ziv-Storer-Szymanski) codec.

The paper's compressed-XML baseline uses "Lempel-Ziv encoding" (§IV-B.e).
This module implements the classic LZSS variant of LZ77: a sliding window
with (offset, length) back-references, literals passed through, and a flag
byte grouping eight tokens.

Wire layout::

    magic 'LZS1' | u32 original length | token stream

    token stream := groups of 1 flag byte + 8 tokens
    flag bit i (LSB first) = 1 -> token i is a literal byte
                           = 0 -> token i is a match: u16 packed as
                                  (offset-1) << 4 | (length - MIN_MATCH),
                                  little-endian

Window 4096 bytes, match lengths 3..18 — the textbook parameters.

Matching uses a chained hash table over 3-byte prefixes, so compression is
O(n · chain) rather than O(n · window).
"""

from __future__ import annotations

import struct
from typing import Dict, List

from .errors import CompressError

MAGIC = b"LZS1"
WINDOW = 4096
MIN_MATCH = 3
MAX_MATCH = 18
_MAX_CHAIN = 32  # bound on match-candidate probes per position


def compress(data: bytes) -> bytes:
    """Compress ``data`` with LZSS.

    >>> decompress(compress(b"abcabcabcabc")) == b"abcabcabcabc"
    True
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise CompressError("LZSS input must be bytes-like")
    data = bytes(data)
    n = len(data)
    out = bytearray()
    out += MAGIC
    out += struct.pack("<I", n)

    # position chains keyed by 3-byte prefix
    heads: Dict[bytes, List[int]] = {}

    tokens: List[bytes] = []   # pending group of up to 8 tokens
    flags = 0
    nflags = 0

    def flush_group() -> None:
        nonlocal flags, nflags
        if nflags == 0:
            return
        out.append(flags)
        for t in tokens:
            out.extend(t)
        tokens.clear()
        flags = 0
        nflags = 0

    pos = 0
    while pos < n:
        best_len = 0
        best_off = 0
        if pos + MIN_MATCH <= n:
            key = data[pos:pos + MIN_MATCH]
            candidates = heads.get(key)
            if candidates:
                limit = min(MAX_MATCH, n - pos)
                lo = pos - WINDOW
                # probe most recent candidates first
                for cand in reversed(candidates[-_MAX_CHAIN:]):
                    if cand < lo:
                        break
                    length = MIN_MATCH
                    while (length < limit
                           and data[cand + length] == data[pos + length]):
                        length += 1
                    if length > best_len:
                        best_len = length
                        best_off = pos - cand
                        if length == limit:
                            break

        if best_len >= MIN_MATCH:
            packed = ((best_off - 1) << 4) | (best_len - MIN_MATCH)
            tokens.append(struct.pack("<H", packed))
            # flag bit stays 0
            nflags += 1
            end = pos + best_len
            while pos < end:
                if pos + MIN_MATCH <= n:
                    heads.setdefault(data[pos:pos + MIN_MATCH], []).append(pos)
                pos += 1
        else:
            tokens.append(data[pos:pos + 1])
            flags |= 1 << nflags
            nflags += 1
            if pos + MIN_MATCH <= n:
                heads.setdefault(data[pos:pos + MIN_MATCH], []).append(pos)
            pos += 1

        if nflags == 8:
            flush_group()

    flush_group()
    return bytes(out)


def decompress(blob: bytes) -> bytes:
    """Inverse of :func:`compress`.

    Raises :class:`~repro.compress.errors.CompressError` on truncated or
    corrupt input, including back-references that point before the start of
    the output.
    """
    blob = bytes(blob)
    if len(blob) < 8 or blob[:4] != MAGIC:
        raise CompressError("bad LZSS header")
    (orig_len,) = struct.unpack_from("<I", blob, 4)
    out = bytearray()
    pos = 8
    n = len(blob)
    while len(out) < orig_len:
        if pos >= n:
            raise CompressError("truncated LZSS stream (missing flag byte)")
        flags = blob[pos]
        pos += 1
        for bit in range(8):
            if len(out) >= orig_len:
                break
            if flags & (1 << bit):
                if pos >= n:
                    raise CompressError("truncated LZSS literal")
                out.append(blob[pos])
                pos += 1
            else:
                if pos + 2 > n:
                    raise CompressError("truncated LZSS match token")
                (packed,) = struct.unpack_from("<H", blob, pos)
                pos += 2
                offset = (packed >> 4) + 1
                length = (packed & 0x0F) + MIN_MATCH
                start = len(out) - offset
                if start < 0:
                    raise CompressError("LZSS back-reference out of range")
                for i in range(length):
                    out.append(out[start + i])
    if len(out) != orig_len:
        raise CompressError("LZSS length mismatch")
    return bytes(out)
