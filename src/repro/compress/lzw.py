"""A from-scratch LZW codec with variable-width codes.

Included as a second Lempel-Ziv family member: dictionary-based rather than
window-based, which behaves differently on the highly repetitive tag
structure of XML (it keeps growing phrases, so deeply tagged documents
compress very well).  Used by the compression ablation benchmark.

Wire layout::

    magic 'LZW1' | u32 original length | big-endian packed bitstream

Codes start at 9 bits and grow to :data:`MAX_BITS`; when the dictionary is
full it is reset (a RESET code is emitted) so the codec adapts to shifting
content.
"""

from __future__ import annotations

import struct
from typing import Dict, List

from .errors import CompressError

MAGIC = b"LZW1"
MIN_BITS = 9
MAX_BITS = 14
RESET_CODE = 256
FIRST_CODE = 257


class _BitWriter:
    def __init__(self) -> None:
        self.buf = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, bits: int) -> None:
        self._acc = (self._acc << bits) | value
        self._nbits += bits
        while self._nbits >= 8:
            self._nbits -= 8
            self.buf.append((self._acc >> self._nbits) & 0xFF)

    def flush(self) -> None:
        if self._nbits:
            self.buf.append((self._acc << (8 - self._nbits)) & 0xFF)
            self._acc = 0
            self._nbits = 0


class _BitReader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0
        self._acc = 0
        self._nbits = 0

    def read(self, bits: int) -> int:
        while self._nbits < bits:
            if self.pos >= len(self.data):
                raise CompressError("truncated LZW bitstream")
            self._acc = (self._acc << 8) | self.data[self.pos]
            self.pos += 1
            self._nbits += 8
        self._nbits -= bits
        value = (self._acc >> self._nbits) & ((1 << bits) - 1)
        return value


def compress(data: bytes) -> bytes:
    """Compress ``data`` with variable-width LZW."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise CompressError("LZW input must be bytes-like")
    data = bytes(data)
    out = bytearray(MAGIC)
    out += struct.pack("<I", len(data))
    if not data:
        return bytes(out)

    writer = _BitWriter()
    table: Dict[bytes, int] = {bytes([i]): i for i in range(256)}
    next_code = FIRST_CODE
    bits = MIN_BITS
    phrase = b""
    for byte in data:
        candidate = phrase + bytes([byte])
        if candidate in table:
            phrase = candidate
            continue
        writer.write(table[phrase], bits)
        if next_code < (1 << MAX_BITS):
            table[candidate] = next_code
            next_code += 1
            if next_code > (1 << bits) and bits < MAX_BITS:
                bits += 1
        else:
            writer.write(RESET_CODE, bits)
            table = {bytes([i]): i for i in range(256)}
            next_code = FIRST_CODE
            bits = MIN_BITS
        phrase = bytes([byte])
    writer.write(table[phrase], bits)
    writer.flush()
    out += writer.buf
    return bytes(out)


def decompress(blob: bytes) -> bytes:
    """Inverse of :func:`compress`."""
    blob = bytes(blob)
    if len(blob) < 8 or blob[:4] != MAGIC:
        raise CompressError("bad LZW header")
    (orig_len,) = struct.unpack_from("<I", blob, 4)
    if orig_len == 0:
        return b""
    reader = _BitReader(blob[8:])

    table: List[bytes] = [bytes([i]) for i in range(256)]
    table.append(b"")  # RESET placeholder
    bits = MIN_BITS
    out = bytearray()

    prev = reader.read(bits)
    if prev >= len(table) or prev == RESET_CODE:
        raise CompressError("bad initial LZW code")
    out += table[prev]
    prev_entry = table[prev]

    while len(out) < orig_len:
        # mirror the encoder's width bookkeeping: the encoder widens when
        # next_code exceeds the current width's capacity
        next_code = len(table) + 1  # entry about to be created
        if next_code > (1 << bits) and bits < MAX_BITS:
            bits += 1
        code = reader.read(bits)
        if code == RESET_CODE:
            table = [bytes([i]) for i in range(256)]
            table.append(b"")
            bits = MIN_BITS
            prev = reader.read(bits)
            out += table[prev]
            prev_entry = table[prev]
            continue
        if code < len(table):
            entry = table[code]
        elif code == len(table):
            entry = prev_entry + prev_entry[:1]  # KwKwK case
        else:
            raise CompressError(f"corrupt LZW code {code}")
        out += entry
        if len(table) < (1 << MAX_BITS):
            table.append(prev_entry + entry[:1])
        prev_entry = entry
    if len(out) != orig_len:
        raise CompressError("LZW length mismatch")
    return bytes(out)
