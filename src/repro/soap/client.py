"""Client-side SOAP invocation over any channel."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..compress import get_codec
from ..pbio import Format, FormatRegistry
from ..transport import Channel
from ..xmlcore import Element
from .encoding import decode_fields, encode_fields
from .envelope import build_envelope, envelope_to_bytes, parse_envelope
from .errors import SoapDecodingError
from .service import XML_CONTENT_TYPE


class SoapClient:
    """Invoke SOAP operations with XML (optionally compressed) messages.

    One client handles any number of operations; call sites supply the
    message formats (WSDL-compiled stubs bake those in).
    """

    def __init__(self, channel: Channel,
                 registry: Optional[FormatRegistry] = None,
                 compress: bool = False,
                 compression_codec: str = "zlib") -> None:
        self.channel = channel
        self.registry = registry if registry is not None else FormatRegistry()
        self.compress = compress
        self.compression_codec = compression_codec

    def call(self, operation: str, params: Dict[str, Any],
             input_format: Format, output_format: Format,
             header_entries: Optional[List[Element]] = None) -> Dict[str, Any]:
        """Invoke ``operation`` and return the decoded response fields.

        SOAP faults returned by the server are raised as
        :class:`~repro.soap.errors.SoapFault`.
        """
        payload = self.build_request(operation, params, input_format,
                                     header_entries)
        headers = {"SOAPAction": f'"{operation}"'}
        if self.compress:
            payload = get_codec(self.compression_codec).compress(payload)
            headers["Content-Encoding"] = "deflate"
        reply = self.channel.call(payload, XML_CONTENT_TYPE, headers)
        body = reply.body
        if _reply_compressed(reply.headers):
            body = get_codec(self.compression_codec).decompress(body)
        return self.parse_response(operation, body, output_format)

    # ------------------------------------------------------------------
    def build_request(self, operation: str, params: Dict[str, Any],
                      input_format: Format,
                      header_entries: Optional[List[Element]] = None) -> bytes:
        wrapper = Element(operation)
        encode_fields(wrapper, params, input_format, self.registry)
        return envelope_to_bytes(build_envelope([wrapper], header_entries))

    def parse_response(self, operation: str, body: bytes,
                       output_format: Format) -> Dict[str, Any]:
        envelope = parse_envelope(body)
        envelope.raise_if_fault()
        response_el = envelope.first_body_element()
        expected = f"{operation}Response"
        if response_el.local_name != expected:
            raise SoapDecodingError(
                f"expected <{expected}>, got <{response_el.tag}>")
        return decode_fields(response_el, output_format, self.registry)


def _reply_compressed(headers: Dict[str, str]) -> bool:
    for name, value in headers.items():
        if name.lower() == "content-encoding":
            return "deflate" in value.lower()
    return False
