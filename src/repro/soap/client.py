"""Client-side SOAP invocation over any channel."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..compress import get_codec
from ..pbio import Format, FormatRegistry
from ..transport import Channel
from ..xmlcore import Element, tostring
from ..xmlcore.errors import XmlParseError
from .encoding import decode_fields
from .envelope import (envelope_bytes_from_xml, parse_envelope,
                       split_fast_envelope)
from .errors import SoapDecodingError
from .service import XML_CONTENT_TYPE
from .xlate import _SIMPLE_TAG_RX


class SoapClient:
    """Invoke SOAP operations with XML (optionally compressed) messages.

    One client handles any number of operations; call sites supply the
    message formats (WSDL-compiled stubs bake those in).
    """

    def __init__(self, channel: Channel,
                 registry: Optional[FormatRegistry] = None,
                 compress: bool = False,
                 compression_codec: str = "zlib") -> None:
        self.channel = channel
        self.registry = registry if registry is not None else FormatRegistry()
        self.compress = compress
        self.compression_codec = compression_codec
        #: reliability metadata of the most recent call (attempts, elapsed,
        #: deadline headroom) when the channel runs under a RetryPolicy —
        #: a ReliableChannel or a socket channel with ``retry_policy=``.
        self.last_call = None

    def call(self, operation: str, params: Dict[str, Any],
             input_format: Format, output_format: Format,
             header_entries: Optional[List[Element]] = None) -> Dict[str, Any]:
        """Invoke ``operation`` and return the decoded response fields.

        SOAP faults returned by the server are raised as
        :class:`~repro.soap.errors.SoapFault`.  Transport failures under a
        reliability-enabled channel are typed
        :class:`~repro.reliability.errors.ReliabilityError`\\ s; attempt and
        deadline metadata for either outcome lands in :attr:`last_call`.
        """
        payload = self.build_request(operation, params, input_format,
                                     header_entries)
        headers = {"SOAPAction": f'"{operation}"'}
        if self.compress:
            payload = get_codec(self.compression_codec).compress(payload)
            headers["Content-Encoding"] = "deflate"
        try:
            reply = self.channel.call(payload, XML_CONTENT_TYPE, headers)
        finally:
            self.last_call = getattr(self.channel, "last_call", None)
        body = reply.body
        if _reply_compressed(reply.headers):
            body = get_codec(self.compression_codec).decompress(body)
        return self.parse_response(operation, body, output_format)

    # ------------------------------------------------------------------
    def build_request(self, operation: str, params: Dict[str, Any],
                      input_format: Format,
                      header_entries: Optional[List[Element]] = None) -> bytes:
        body_xml = self.registry.xlate.emitter(input_format)(params, operation)
        header_xml = "".join(tostring(el) for el in header_entries) \
            if header_entries else ""
        return envelope_bytes_from_xml(body_xml, header_xml)

    def parse_response(self, operation: str, body: bytes,
                       output_format: Format) -> Dict[str, Any]:
        fast = self._parse_response_fast(operation, body, output_format)
        if fast is not None:
            return fast
        envelope = parse_envelope(body)
        envelope.raise_if_fault()
        response_el = envelope.first_body_element()
        expected = f"{operation}Response"
        if response_el.local_name != expected:
            raise SoapDecodingError(
                f"expected <{expected}>, got <{response_el.tag}>")
        return decode_fields(response_el, output_format, self.registry)

    def _parse_response_fast(self, operation: str, body: bytes,
                             output_format: Format) -> Optional[Dict[str, Any]]:
        """Decode via the compiled XML plan, or ``None`` for the tree path.

        Only a headerless envelope in this stack's exact framing whose body
        opens with the expected ``<{operation}Response>`` element qualifies;
        Faults (local name ``Fault``), name mismatches and malformed or
        mistyped fragments all return ``None`` so the tree path raises its
        exact faults/errors.
        """
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError:
            return None
        fragment = split_fast_envelope(text)
        if fragment is None:
            return None
        match = _SIMPLE_TAG_RX.match(fragment)
        if match is None:
            return None
        if match.group(1).rsplit(":", 1)[-1] != f"{operation}Response":
            return None
        try:
            return self.registry.xlate.parser(output_format)(fragment)
        except (XmlParseError, SoapDecodingError):
            return None


def _reply_compressed(headers: Dict[str, str]) -> bool:
    for name, value in headers.items():
        if name.lower() == "content-encoding":
            return "deflate" in value.lower()
    return False
