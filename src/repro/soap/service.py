"""Server-side SOAP dispatch.

A :class:`SoapService` maps operation names to handlers and exposes itself
as a transport endpoint (``(body, content_type, headers) -> ChannelReply``),
so the same service object runs over real HTTP sockets or the simulated
link.

RPC conventions (matching Soup's): the request Body's first child element is
named after the operation and wraps one child element per input-message
field; the response wraps the output fields in ``<{operation}Response>``.
Errors travel as SOAP 1.1 Faults with status 500.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..compress import get_codec
from ..pbio import Format, FormatRegistry
from ..transport import ChannelReply
from ..xmlcore.errors import XmlParseError
from .encoding import decode_fields
from .envelope import (envelope_bytes_from_xml, fault_envelope,
                       parse_envelope, split_fast_envelope)
from .errors import SoapDecodingError, SoapEncodingError, SoapFault
from .xlate import _SIMPLE_TAG_RX

XML_CONTENT_TYPE = "text/xml; charset=utf-8"

#: Operation handlers take and return field dicts; they may also accept the
#: request headers when declared with ``wants_headers=True``.
Handler = Callable[..., Dict[str, Any]]


@dataclass
class Operation:
    """One SOAP operation: name, message formats, handler."""

    name: str
    input_format: Format
    output_format: Format
    handler: Handler
    wants_headers: bool = False

    @property
    def response_name(self) -> str:
        return f"{self.name}Response"


class SoapService:
    """A registry of operations exposed as a transport endpoint."""

    def __init__(self, registry: Optional[FormatRegistry] = None,
                 compression: Optional[str] = None) -> None:
        self.registry = registry if registry is not None else FormatRegistry()
        self.operations: Dict[str, Operation] = {}
        #: codec name used when a request arrives compressed; replies are
        #: compressed iff the request was.
        self.compression_codec = compression or "zlib"

    def add_operation(self, name: str, input_format: Format,
                      output_format: Format, handler: Handler,
                      wants_headers: bool = False) -> Operation:
        """Register an operation (also registers its formats)."""
        self.registry.register(input_format)
        self.registry.register(output_format)
        op = Operation(name=name, input_format=input_format,
                       output_format=output_format, handler=handler,
                       wants_headers=wants_headers)
        self.operations[name] = op
        return op

    def operation(self, name: str) -> Operation:
        try:
            return self.operations[name]
        except KeyError:
            raise SoapFault("Client", f"unknown operation {name!r}")

    # ------------------------------------------------------------------
    # transport endpoint
    # ------------------------------------------------------------------
    def endpoint(self, body: bytes, content_type: str,
                 headers: Dict[str, str]) -> ChannelReply:
        """Handle one request (XML, optionally compressed)."""
        compressed = _is_compressed(headers)
        try:
            payload = body
            if compressed:
                payload = get_codec(self.compression_codec).decompress(body)
            response_xml = self.handle_xml(payload, headers)
        except SoapFault as fault:
            return self._fault_reply(fault, compressed)
        except (SoapDecodingError, SoapEncodingError) as exc:
            return self._fault_reply(SoapFault("Client", str(exc)),
                                     compressed)
        except Exception as exc:  # noqa: BLE001 - dispatch boundary
            return self._fault_reply(SoapFault("Server", str(exc)),
                                     compressed)
        reply_headers = {}
        out = response_xml
        if compressed:
            out = get_codec(self.compression_codec).compress(response_xml)
            reply_headers["Content-Encoding"] = "deflate"
        return ChannelReply(body=out, content_type=XML_CONTENT_TYPE,
                            headers=reply_headers)

    def _fault_reply(self, fault: SoapFault, compressed: bool) -> ChannelReply:
        payload = fault_envelope(fault)
        headers = {}
        if compressed:
            payload = get_codec(self.compression_codec).compress(payload)
            headers["Content-Encoding"] = "deflate"
        return ChannelReply(body=payload, content_type=XML_CONTENT_TYPE,
                            headers=headers, status=500)

    # ------------------------------------------------------------------
    def handle_xml(self, payload: bytes,
                   headers: Optional[Dict[str, str]] = None) -> bytes:
        """Decode an XML request, run the handler, encode the XML response.

        Split out from :meth:`endpoint` so the SOAP-bin service can reuse it
        for interoperability-mode requests.
        """
        fast = self._decode_request_fast(payload)
        if fast is not None:
            params, op = fast
        else:
            params, op, _ = self.decode_request(payload)
        result = self.invoke(op, params, headers or {})
        return self.encode_response(op, result)

    def _decode_request_fast(self, payload: bytes):
        """Decode via the compiled XML plans, or ``None`` for the tree path.

        Applies only to headerless envelopes in this stack's exact
        serialized framing with a known operation element.  *Every* error
        condition — malformed fragment, unknown operation, field type
        mismatch — returns ``None`` so the tree path re-raises with its
        exact message and document positions; the fast path never produces
        an error the tree path wouldn't.
        """
        try:
            text = payload.decode("utf-8")
        except UnicodeDecodeError:
            return None
        fragment = split_fast_envelope(text)
        if fragment is None:
            return None
        match = _SIMPLE_TAG_RX.match(fragment)
        if match is None:
            return None
        op = self.operations.get(match.group(1).rsplit(":", 1)[-1])
        if op is None:
            return None
        try:
            params = self.registry.xlate.parser(op.input_format)(fragment)
        except (XmlParseError, SoapDecodingError):
            return None
        return params, op

    def decode_request(self, payload: bytes):
        """Parse + decode a request; returns (params, operation, envelope).

        The tree-building general path: used for envelopes with Header
        entries (the quality layer consumes the returned envelope's
        headers) and as the error-reporting oracle for
        :meth:`_decode_request_fast`.
        """
        envelope = parse_envelope(payload)
        request_el = envelope.first_body_element()
        op = self.operation(request_el.local_name)
        params = decode_fields(request_el, op.input_format, self.registry)
        return params, op, envelope

    def invoke(self, op: Operation, params: Dict[str, Any],
               headers: Dict[str, str]) -> Dict[str, Any]:
        """Run an operation handler with consistent error wrapping."""
        if op.wants_headers:
            return op.handler(params, headers)
        return op.handler(params)

    def encode_response(self, op: Operation,
                        result: Dict[str, Any]) -> bytes:
        body_xml = self.registry.xlate.emitter(op.output_format)(
            result, op.response_name)
        return envelope_bytes_from_xml(body_xml)


def _is_compressed(headers: Dict[str, str]) -> bool:
    for name, value in headers.items():
        if name.lower() == "content-encoding":
            return "deflate" in value.lower()
    return False
