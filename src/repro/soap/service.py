"""Server-side SOAP dispatch.

A :class:`SoapService` maps operation names to handlers and exposes itself
as a transport endpoint (``(body, content_type, headers) -> ChannelReply``),
so the same service object runs over real HTTP sockets or the simulated
link.

RPC conventions (matching Soup's): the request Body's first child element is
named after the operation and wraps one child element per input-message
field; the response wraps the output fields in ``<{operation}Response>``.
Errors travel as SOAP 1.1 Faults with status 500.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..compress import get_codec
from ..pbio import Format, FormatRegistry
from ..transport import ChannelReply
from ..xmlcore import Element
from .encoding import decode_fields, encode_fields
from .envelope import (build_envelope, envelope_to_bytes, fault_envelope,
                       parse_envelope)
from .errors import SoapDecodingError, SoapEncodingError, SoapFault

XML_CONTENT_TYPE = "text/xml; charset=utf-8"

#: Operation handlers take and return field dicts; they may also accept the
#: request headers when declared with ``wants_headers=True``.
Handler = Callable[..., Dict[str, Any]]


@dataclass
class Operation:
    """One SOAP operation: name, message formats, handler."""

    name: str
    input_format: Format
    output_format: Format
    handler: Handler
    wants_headers: bool = False

    @property
    def response_name(self) -> str:
        return f"{self.name}Response"


class SoapService:
    """A registry of operations exposed as a transport endpoint."""

    def __init__(self, registry: Optional[FormatRegistry] = None,
                 compression: Optional[str] = None) -> None:
        self.registry = registry if registry is not None else FormatRegistry()
        self.operations: Dict[str, Operation] = {}
        #: codec name used when a request arrives compressed; replies are
        #: compressed iff the request was.
        self.compression_codec = compression or "zlib"

    def add_operation(self, name: str, input_format: Format,
                      output_format: Format, handler: Handler,
                      wants_headers: bool = False) -> Operation:
        """Register an operation (also registers its formats)."""
        self.registry.register(input_format)
        self.registry.register(output_format)
        op = Operation(name=name, input_format=input_format,
                       output_format=output_format, handler=handler,
                       wants_headers=wants_headers)
        self.operations[name] = op
        return op

    def operation(self, name: str) -> Operation:
        try:
            return self.operations[name]
        except KeyError:
            raise SoapFault("Client", f"unknown operation {name!r}")

    # ------------------------------------------------------------------
    # transport endpoint
    # ------------------------------------------------------------------
    def endpoint(self, body: bytes, content_type: str,
                 headers: Dict[str, str]) -> ChannelReply:
        """Handle one request (XML, optionally compressed)."""
        compressed = _is_compressed(headers)
        try:
            payload = body
            if compressed:
                payload = get_codec(self.compression_codec).decompress(body)
            response_xml = self.handle_xml(payload, headers)
        except SoapFault as fault:
            return self._fault_reply(fault, compressed)
        except (SoapDecodingError, SoapEncodingError) as exc:
            return self._fault_reply(SoapFault("Client", str(exc)),
                                     compressed)
        except Exception as exc:  # noqa: BLE001 - dispatch boundary
            return self._fault_reply(SoapFault("Server", str(exc)),
                                     compressed)
        reply_headers = {}
        out = response_xml
        if compressed:
            out = get_codec(self.compression_codec).compress(response_xml)
            reply_headers["Content-Encoding"] = "deflate"
        return ChannelReply(body=out, content_type=XML_CONTENT_TYPE,
                            headers=reply_headers)

    def _fault_reply(self, fault: SoapFault, compressed: bool) -> ChannelReply:
        payload = fault_envelope(fault)
        headers = {}
        if compressed:
            payload = get_codec(self.compression_codec).compress(payload)
            headers["Content-Encoding"] = "deflate"
        return ChannelReply(body=payload, content_type=XML_CONTENT_TYPE,
                            headers=headers, status=500)

    # ------------------------------------------------------------------
    def handle_xml(self, payload: bytes,
                   headers: Optional[Dict[str, str]] = None) -> bytes:
        """Decode an XML request, run the handler, encode the XML response.

        Split out from :meth:`endpoint` so the SOAP-bin service can reuse it
        for interoperability-mode requests.
        """
        params, op, _ = self.decode_request(payload)
        result = self.invoke(op, params, headers or {})
        return self.encode_response(op, result)

    def decode_request(self, payload: bytes):
        """Parse + decode a request; returns (params, operation, envelope)."""
        envelope = parse_envelope(payload)
        request_el = envelope.first_body_element()
        op = self.operation(request_el.local_name)
        params = decode_fields(request_el, op.input_format, self.registry)
        return params, op, envelope

    def invoke(self, op: Operation, params: Dict[str, Any],
               headers: Dict[str, str]) -> Dict[str, Any]:
        """Run an operation handler with consistent error wrapping."""
        if op.wants_headers:
            return op.handler(params, headers)
        return op.handler(params)

    def encode_response(self, op: Operation,
                        result: Dict[str, Any]) -> bytes:
        wrapper = Element(op.response_name)
        encode_fields(wrapper, result, op.output_format, self.registry)
        return envelope_to_bytes(build_envelope([wrapper]))


def _is_compressed(headers: Dict[str, str]) -> bool:
    for name, value in headers.items():
        if name.lower() == "content-encoding":
            return "deflate" in value.lower()
    return False
