"""Standard XML SOAP 1.1 — the baseline protocol SOAP-bin improves on.

Envelope model, RPC parameter encoding driven by PBIO formats, a service
dispatcher usable over any transport channel, a client, and an optional
compressed-XML mode (the paper's third comparison point)::

    from repro import pbio, soap
    from repro.transport import DirectChannel

    registry = pbio.FormatRegistry()
    req = pbio.Format.from_dict("AddRequest", {"a": "int32", "b": "int32"})
    res = pbio.Format.from_dict("AddResponse", {"sum": "int32"})

    service = soap.SoapService(registry)
    service.add_operation("Add", req, res,
                          lambda p: {"sum": p["a"] + p["b"]})

    client = soap.SoapClient(DirectChannel(service.endpoint), registry)
    assert client.call("Add", {"a": 2, "b": 3}, req, res) == {"sum": 5}
"""

from .client import SoapClient
from .encoding import (decode_fields, decode_fields_pull, decode_value,
                       encode_fields, encode_value)
from .envelope import (ParsedEnvelope, build_envelope, build_fault,
                       envelope_to_bytes, fault_envelope, parse_envelope)
from .errors import (SoapDecodingError, SoapEncodingError, SoapError,
                     SoapFault)
from .service import XML_CONTENT_TYPE, Operation, SoapService

__all__ = [
    "SoapError", "SoapFault", "SoapEncodingError", "SoapDecodingError",
    "build_envelope", "envelope_to_bytes", "parse_envelope",
    "ParsedEnvelope", "build_fault", "fault_envelope",
    "encode_value", "encode_fields", "decode_value", "decode_fields",
    "decode_fields_pull",
    "Operation", "SoapService", "SoapClient", "XML_CONTENT_TYPE",
]
