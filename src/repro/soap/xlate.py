"""Fused, format-driven streaming XML <-> native translation plans.

This is the XML analogue of the compiled codec layer in
:mod:`repro.pbio.compiler`: for each :class:`~repro.pbio.fmt.Format` we
compile an *XML plan* — a pair of closures that translate between native
values and SOAP-encoded XML text with **no intermediate Element tree and no
per-item objects**:

* the **emitter** renders a native value straight into one output string.
  Primitive arrays become a single ``str.join`` over a C-level ``map`` of
  preformatted item runs (``<item>1</item><item>2</item>...``), strings are
  escaped with one :meth:`str.translate` call, and tag strings are
  precomputed once per plan;
* the **parser** scans the document text directly with ``str.find`` /
  ``str.split`` — a homogeneous primitive array is recognized as one run
  and bulk-converted with ``map(int, ...)`` / ``map(float, ...)`` — and
  builds native dicts/lists without constructing a single
  :class:`~repro.xmlcore.tree.Element` or pull event.

The fast parser accepts exactly the grammar the emitter produces (plus
entity references and surrounding whitespace).  Anything else — prefixed
tags, attributes, CDATA, comments between items, malformed markup — raises
the internal :class:`_Fallback` signal and the document is re-parsed on the
streaming pull-parser path, which yields the same values for valid input
and the same :class:`~repro.xmlcore.errors.XmlParseError` /
:class:`~repro.soap.errors.SoapDecodingError` for invalid input.  The tree
path (:func:`repro.soap.encoding.decode_fields`) stays as the differential
-test oracle, the same role :mod:`repro.pbio.interp` plays for the binary
codec.

Plans are cached per format fingerprint in an :class:`XlatePlanner`.  One
planner is shared per registry (see :attr:`FormatRegistry.xlate`) and its
cache is invalidated by :meth:`FormatRegistry.redefine`, exactly like the
codec caches.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep in practice
    _np = None

from ..pbio import Array, FieldType, Format, Primitive, StructRef
from ..xmlcore import XmlPullParser
from ..xmlcore import tokenizer as tk
from ..xmlcore.errors import XmlParseError, XmlWriteError
from ..xmlcore.writer import _NAME_OK, escape_text
from .encoding import (ITEM_TAG, _parse_primitive, _primitive_text,
                       decode_fields_pull)
from .errors import SoapDecodingError, SoapEncodingError

__all__ = ["XlatePlanner", "compile_emitter", "compile_parser"]

_WS = " \t\r\n"

#: Exact start tag of the emitter's grammar: no attributes, no prefix.
_SIMPLE_TAG_RX = re.compile(r"<([A-Za-z_:À-￿]"
                            r"[-A-Za-z0-9._:À-￿]*)>")

EmitFn = Callable[..., str]
ParseFn = Callable[[str], Dict[str, Any]]


class _Fallback(Exception):
    """Internal control flow: the fast scanner left its grammar.

    Never escapes this module — the compiled parser catches it and re-runs
    the document through the streaming pull path.
    """


# ----------------------------------------------------------------------
# emitter compilation: native -> XML text
# ----------------------------------------------------------------------

def _check_tag(tag: str) -> str:
    """Mirror the writer's element-name validation at plan-compile time."""
    if not _NAME_OK.match(tag):
        raise XmlWriteError(f"invalid element name {tag!r}")
    return tag


def _type_emitter(tag: str, ftype: FieldType,
                  planner: "XlatePlanner") -> Callable[[List[str], Any], None]:
    """Compile ``emit(parts, value)`` appending ``<tag>...</tag>``."""
    _check_tag(tag)
    open_, close, empty = f"<{tag}>", f"</{tag}>", f"<{tag}/>"

    if isinstance(ftype, Primitive):
        if ftype.kind in ("string", "char"):
            def emit(parts: List[str], v: Any) -> None:
                parts.append(open_)
                parts.append(escape_text(_primitive_text(v, ftype)))
                parts.append(close)
        else:
            def emit(parts: List[str], v: Any) -> None:
                parts.append(open_)
                parts.append(_primitive_text(v, ftype))
                parts.append(close)
        return emit

    if isinstance(ftype, Array):
        return _array_emitter(tag, ftype, planner, open_, close, empty)

    if isinstance(ftype, StructRef):
        fmt_name = ftype.format_name
        cell: List[List[Callable]] = []

        def emit(parts: List[str], v: Any) -> None:
            if not cell:
                sub_fmt = planner.registry.by_name(fmt_name)
                cell.append(_field_emitters(sub_fmt, planner))
            field_emits = cell[0]
            if not field_emits:
                parts.append(empty)
                return
            parts.append(open_)
            for fe in field_emits:
                fe(parts, v)
            parts.append(close)
        return emit

    raise SoapEncodingError(f"cannot encode type {ftype!r}")


def _array_emitter(tag: str, ftype: Array, planner: "XlatePlanner",
                   open_: str, close: str,
                   empty: str) -> Callable[[List[str], Any], None]:
    el = ftype.element
    length = ftype.length
    item_open, item_close = f"<{ITEM_TAG}>", f"</{ITEM_TAG}>"
    sep = item_close + item_open

    def check(v: Any) -> int:
        n = len(v)
        if length is not None and n != length:
            raise SoapEncodingError(
                f"<{tag}>: expected {length} items, got {n}")
        return n

    if isinstance(el, Primitive) and el.kind not in ("string", "char"):
        # Numeric run: one tolist + two C-level maps + one join.  The text
        # of every item matches the tree path exactly (str(int(v)) for
        # integer kinds, repr(float(v)) for float kinds).
        if el.kind.startswith("float"):
            def run(v: Any) -> str:
                return sep.join(map(repr, map(float, v)))
        else:
            def run(v: Any) -> str:
                return sep.join(map(str, map(int, v)))

        def emit(parts: List[str], v: Any) -> None:
            if check(v) == 0:
                parts.append(empty)
                return
            if _np is not None and isinstance(v, _np.ndarray):
                v = v.tolist()
            try:
                body = run(v)
            except (TypeError, ValueError):
                # Re-derive the exact per-item tree-path error message.
                for item in v:
                    _primitive_text(item, el)
                raise  # pragma: no cover - retry cannot succeed
            parts.append(open_)
            parts.append(item_open)
            parts.append(body)
            parts.append(item_close)
            parts.append(close)
        return emit

    if isinstance(el, Primitive):
        def emit(parts: List[str], v: Any) -> None:
            if check(v) == 0:
                parts.append(empty)
                return
            texts = [escape_text(_primitive_text(item, el)) for item in v]
            parts.append(open_)
            parts.append(item_open)
            parts.append(sep.join(texts))
            parts.append(item_close)
            parts.append(close)
        return emit

    sub = _type_emitter(ITEM_TAG, el, planner)

    def emit(parts: List[str], v: Any) -> None:
        if check(v) == 0:
            parts.append(empty)
            return
        parts.append(open_)
        for item in v:
            sub(parts, item)
        parts.append(close)
    return emit


def _field_emitters(fmt: Format,
                    planner: "XlatePlanner") -> List[Callable]:
    emits: List[Callable] = []
    for field in fmt.fields:
        te = _type_emitter(field.name, field.ftype, planner)

        def fe(parts: List[str], value: Dict[str, Any], _te: Callable = te,
               _name: str = field.name, _fmt: str = fmt.name) -> None:
            try:
                fv = value[_name]
            except KeyError:
                raise SoapEncodingError(
                    f"message {_fmt!r}: missing field {_name!r}")
            _te(parts, fv)
        emits.append(fe)
    return emits


def compile_emitter(fmt: Format, planner: "XlatePlanner") -> EmitFn:
    """Compile the to-XML plan for ``fmt``.

    The returned callable matches
    :meth:`repro.core.conversion.ConversionHandler.to_xml`:
    ``emit(value, wrapper_tag=None) -> str``, byte-identical to the tree
    path (``tostring(encode_fields(Element(tag), ...))``).
    """
    field_emits = _field_emitters(fmt, planner)
    default_open = f"<{_check_tag(fmt.name)}>"
    default_close = f"</{fmt.name}>"
    default_empty = f"<{fmt.name}/>"

    def to_xml(value: Dict[str, Any],
               wrapper_tag: Optional[str] = None) -> str:
        if wrapper_tag is None or wrapper_tag == fmt.name:
            open_, close, empty = default_open, default_close, default_empty
        else:
            _check_tag(wrapper_tag)
            open_ = f"<{wrapper_tag}>"
            close = f"</{wrapper_tag}>"
            empty = f"<{wrapper_tag}/>"
        if not field_emits:
            return empty
        parts = [open_]
        for fe in field_emits:
            fe(parts, value)
        parts.append(close)
        return "".join(parts)

    return to_xml


# ----------------------------------------------------------------------
# parser compilation: XML text -> native
# ----------------------------------------------------------------------

def _skip_ws(text: str, pos: int) -> int:
    n = len(text)
    while pos < n and text[pos] in _WS:
        pos += 1
    return pos


def _resolve_entities(raw: str) -> str:
    """Resolve entity references; malformed ones trigger the slow path
    (which reports them with exact line/column positions)."""
    out: List[str] = []
    pos = 0
    while True:
        amp = raw.find("&", pos)
        if amp < 0:
            out.append(raw[pos:])
            return "".join(out)
        out.append(raw[pos:amp])
        semi = raw.find(";", amp + 1)
        if semi < 0 or semi - amp > 12:
            raise _Fallback
        try:
            out.append(tk.resolve_entity(raw[amp + 1:semi]))
        except XmlParseError:
            raise _Fallback
        pos = semi + 1


def _type_parser(tag: str, ftype: FieldType, planner: "XlatePlanner"
                 ) -> Callable[[str, int], Tuple[Any, int]]:
    """Compile ``parse(text, pos) -> (value, pos)`` consuming the whole
    ``<tag>...</tag>`` element (leading whitespace included)."""
    if isinstance(ftype, Primitive):
        return _prim_parser(tag, ftype)
    if isinstance(ftype, Array):
        return _array_parser(tag, ftype, planner)
    if isinstance(ftype, StructRef):
        return _struct_parser(tag, ftype, planner)
    raise SoapDecodingError(f"cannot decode type {ftype!r}")


def _prim_parser(tag: str, ftype: Primitive
                 ) -> Callable[[str, int], Tuple[Any, int]]:
    open_, close, empty = f"<{tag}>", f"</{tag}>", f"<{tag}/>"
    lo = len(open_)

    def parse(text: str, pos: int) -> Tuple[Any, int]:
        pos = _skip_ws(text, pos)
        if not text.startswith(open_, pos):
            if text.startswith(empty, pos):
                return _parse_primitive("", ftype, tag), pos + len(empty)
            raise _Fallback
        start = pos + lo
        end = text.find("<", start)
        if end < 0 or not text.startswith(close, end):
            raise _Fallback
        raw = text[start:end]
        if "&" in raw:
            raw = _resolve_entities(raw)
        return _parse_primitive(raw, ftype, tag), end + len(close)
    return parse


def _array_parser(tag: str, ftype: Array, planner: "XlatePlanner"
                  ) -> Callable[[str, int], Tuple[Any, int]]:
    el = ftype.element
    length = ftype.length
    open_, close, empty = f"<{tag}>", f"</{tag}>", f"<{tag}/>"
    item_open, item_close = f"<{ITEM_TAG}>", f"</{ITEM_TAG}>"
    sep = item_close + item_open

    def check(items: List[Any]) -> List[Any]:
        if length is not None and len(items) != length:
            raise SoapDecodingError(
                f"<{tag}>: expected {length} items, got {len(items)}")
        return items

    bulk_conv: Any = None
    if isinstance(el, Primitive):
        if el.kind == "string":
            bulk_conv = str
        elif el.kind.startswith("float"):
            bulk_conv = float
        elif el.kind != "char":
            bulk_conv = int

    if bulk_conv is not None:
        def parse(text: str, pos: int) -> Tuple[Any, int]:
            pos = _skip_ws(text, pos)
            if text.startswith(empty, pos):
                return check([]), pos + len(empty)
            if not text.startswith(open_, pos):
                raise _Fallback
            body_start = pos + len(open_)
            endpos = text.find(close, body_start)
            if endpos < 0:
                raise _Fallback
            region = text[body_start:endpos]
            if not region:
                return check([]), endpos + len(close)
            if not (region.startswith(item_open)
                    and region.endswith(item_close)):
                raise _Fallback
            pieces = region[len(item_open):-len(item_close)].split(sep)
            # Exactly one '<' per item tag: anything extra (CDATA, nested
            # markup, comments, stray text with tags) leaves the grammar.
            if region.count("<") != 2 * len(pieces):
                raise _Fallback
            if "&" in region:
                pieces = [_resolve_entities(p) if "&" in p else p
                          for p in pieces]
            if bulk_conv is str:
                return check(pieces), endpos + len(close)
            try:
                items = list(map(bulk_conv, pieces))
            except (ValueError, OverflowError):
                # Re-derive the exact tree-path error for the bad item.
                for p in pieces:
                    _parse_primitive(p, el, ITEM_TAG)
                raise  # pragma: no cover - retry cannot succeed
            return check(items), endpos + len(close)
        return parse

    item_parse = _type_parser(ITEM_TAG, el, planner)

    def parse(text: str, pos: int) -> Tuple[Any, int]:
        pos = _skip_ws(text, pos)
        if text.startswith(empty, pos):
            return check([]), pos + len(empty)
        if not text.startswith(open_, pos):
            raise _Fallback
        pos += len(open_)
        items: List[Any] = []
        while True:
            pos = _skip_ws(text, pos)
            if text.startswith(close, pos):
                return check(items), pos + len(close)
            item, pos = item_parse(text, pos)
            items.append(item)
    return parse


def _struct_parser(tag: str, ftype: StructRef, planner: "XlatePlanner"
                   ) -> Callable[[str, int], Tuple[Any, int]]:
    open_, close, empty = f"<{tag}>", f"</{tag}>", f"<{tag}/>"
    fmt_name = ftype.format_name
    cell: List[List[Tuple[str, Callable]]] = []

    def parse(text: str, pos: int) -> Tuple[Any, int]:
        if not cell:
            sub_fmt = planner.registry.by_name(fmt_name)
            cell.append(_field_parsers(sub_fmt, planner))
        fps = cell[0]
        pos = _skip_ws(text, pos)
        if text.startswith(empty, pos):
            if not fps:
                return {}, pos + len(empty)
            raise _Fallback
        if not text.startswith(open_, pos):
            raise _Fallback
        pos += len(open_)
        value: Dict[str, Any] = {}
        for fname, fp in fps:
            value[fname], pos = fp(text, pos)
        pos = _skip_ws(text, pos)
        if not text.startswith(close, pos):
            raise _Fallback
        return value, pos + len(close)
    return parse


def _field_parsers(fmt: Format, planner: "XlatePlanner"
                   ) -> List[Tuple[str, Callable]]:
    return [(field.name, _type_parser(field.name, field.ftype, planner))
            for field in fmt.fields]


def compile_parser(fmt: Format, planner: "XlatePlanner") -> ParseFn:
    """Compile the from-XML plan for ``fmt``.

    The returned callable matches
    :meth:`repro.core.conversion.ConversionHandler.from_xml` (streaming
    mode): the wrapper element's name is not checked, fields must appear
    in format order.  Documents outside the fast grammar are transparently
    re-parsed on the pull path, so values and errors are identical to the
    pre-plan streaming behaviour.
    """
    fps = _field_parsers(fmt, planner)
    registry = planner.registry

    def fast(text: str) -> Dict[str, Any]:
        pos = 1 if text.startswith("﻿") else 0
        pos = _skip_ws(text, pos)
        # The XML declaration and PIs are invisible to the pull path.
        while text.startswith("<?", pos):
            end = text.find("?>", pos + 2)
            if end < 0:
                raise _Fallback
            pos = _skip_ws(text, end + 2)
        m = _SIMPLE_TAG_RX.match(text, pos)
        if m is None:
            raise _Fallback
        pos = m.end()
        value: Dict[str, Any] = {}
        for fname, fp in fps:
            value[fname], pos = fp(text, pos)
        pos = _skip_ws(text, pos)
        if not text.startswith(f"</{m.group(1)}>", pos):
            raise _Fallback
        return value

    def from_xml(text: str) -> Dict[str, Any]:
        try:
            return fast(text)
        except _Fallback:
            pp = XmlPullParser(text)
            start = pp.require_start()
            value = decode_fields_pull(pp, fmt, registry)
            pp.require_end(start.name)
            return value

    return from_xml


# ----------------------------------------------------------------------
# the plan cache
# ----------------------------------------------------------------------

class XlatePlanner:
    """Compiles and caches XML plans per format fingerprint.

    One planner is shared per registry (:attr:`FormatRegistry.xlate`), the
    same ownership model as the codec compiler: plans are compiled once
    per process and dropped when :meth:`FormatRegistry.redefine` rebinds a
    format name.  Plans already handed out keep translating the layout
    they were compiled for.
    """

    def __init__(self, registry: Any) -> None:
        self.registry = registry
        self._emitters: Dict[str, EmitFn] = {}
        self._parsers: Dict[str, ParseFn] = {}
        attach = getattr(registry, "_attach_compiler", None)
        if attach is not None:
            attach(self)

    def emitter(self, fmt: Format) -> EmitFn:
        """The compiled to-XML plan for ``fmt`` (compiling if needed)."""
        fn = self._emitters.get(fmt.fingerprint)
        if fn is None:
            fn = compile_emitter(fmt, self)
            self._emitters[fmt.fingerprint] = fn
        return fn

    def parser(self, fmt: Format) -> ParseFn:
        """The compiled from-XML plan for ``fmt`` (compiling if needed)."""
        fn = self._parsers.get(fmt.fingerprint)
        if fn is None:
            fn = compile_parser(fmt, self)
            self._parsers[fmt.fingerprint] = fn
        return fn

    def invalidate(self) -> None:
        """Drop every cached plan (a registry format was redefined)."""
        self._emitters.clear()
        self._parsers.clear()
