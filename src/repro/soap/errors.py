"""SOAP-level exception types, including the wire-visible Fault."""

from __future__ import annotations

from typing import Optional


class SoapError(Exception):
    """Base class for SOAP stack errors."""


class SoapFault(SoapError):
    """A SOAP 1.1 Fault — raised locally and encoded onto the wire.

    ``faultcode`` uses the standard qualified values (``Client``,
    ``Server``, ``VersionMismatch``, ``MustUnderstand``).
    """

    def __init__(self, faultcode: str, faultstring: str,
                 detail: Optional[str] = None) -> None:
        self.faultcode = faultcode
        self.faultstring = faultstring
        self.detail = detail
        super().__init__(f"{faultcode}: {faultstring}")


class SoapEncodingError(SoapError):
    """A Python value does not match the schema it is encoded against."""


class SoapDecodingError(SoapError):
    """An XML payload does not match the expected message structure."""
