"""SOAP 1.1 envelope construction and parsing.

Envelopes are plain :class:`~repro.xmlcore.tree.Element` trees; this module
knows the SOAP namespace conventions — Envelope/Header/Body structure,
Fault encoding — and nothing about parameter marshalling (that lives in
:mod:`repro.soap.encoding`).
"""

from __future__ import annotations

from typing import List, Optional

from ..xmlcore import Element, SOAP_ENV_NS, parse, tostring
from .errors import SoapDecodingError, SoapFault

#: Prefix used for the SOAP envelope namespace in produced documents.
ENV_PREFIX = "SOAP-ENV"

#: The exact serialized framing this stack emits, used by the streaming
#: fast path to frame/deframe envelopes without building a tree.  Byte
#: parity with ``envelope_to_bytes(build_envelope(...))`` is enforced by
#: the differential tests.
XML_DECL = '<?xml version="1.0" encoding="utf-8"?>'
ENVELOPE_OPEN = f'<{ENV_PREFIX}:Envelope xmlns:{ENV_PREFIX}="{SOAP_ENV_NS}">'
ENVELOPE_CLOSE = f'</{ENV_PREFIX}:Envelope>'
HEADER_OPEN = f'<{ENV_PREFIX}:Header>'
HEADER_CLOSE = f'</{ENV_PREFIX}:Header>'
BODY_OPEN = f'<{ENV_PREFIX}:Body>'
BODY_CLOSE = f'</{ENV_PREFIX}:Body>'

#: Exact head/tail of a headerless fast-path envelope document.
FAST_PREFIX = XML_DECL + ENVELOPE_OPEN + BODY_OPEN
FAST_SUFFIX = BODY_CLOSE + ENVELOPE_CLOSE


def envelope_bytes_from_xml(body_xml: str, header_xml: str = "") -> bytes:
    """Frame pre-rendered body (and header) fragments as envelope bytes.

    The string fast path of :func:`build_envelope` +
    :func:`envelope_to_bytes`: fragments produced by the compiled XML
    plans (:mod:`repro.soap.xlate`) are wrapped in the exact serialized
    framing the tree path produces, without constructing any
    :class:`~repro.xmlcore.tree.Element`.
    """
    header = f"{HEADER_OPEN}{header_xml}{HEADER_CLOSE}" if header_xml else ""
    body = f"{BODY_OPEN}{body_xml}{BODY_CLOSE}" if body_xml \
        else f"<{ENV_PREFIX}:Body/>"
    return (f"{XML_DECL}<{ENV_PREFIX}:Envelope xmlns:{ENV_PREFIX}="
            f'"{SOAP_ENV_NS}">{header}{body}{ENVELOPE_CLOSE}'
            ).encode("utf-8")


def split_fast_envelope(text: str) -> Optional[str]:
    """Return the Body's inner XML if ``text`` is a headerless envelope in
    this stack's exact serialized framing, else ``None``.

    ``None`` means "use the tree path" — foreign prefixes, Header entries,
    extra whitespace and anything else outside the fast grammar all land
    there, so the fast deframe never changes observable behaviour.
    """
    if text.startswith(FAST_PREFIX) and text.endswith(FAST_SUFFIX):
        return text[len(FAST_PREFIX):-len(FAST_SUFFIX)]
    return None


def build_envelope(body_children: List[Element],
                   header_children: Optional[List[Element]] = None) -> Element:
    """Assemble an Envelope around the given Body (and Header) entries."""
    envelope = Element(f"{ENV_PREFIX}:Envelope",
                       {f"xmlns:{ENV_PREFIX}": SOAP_ENV_NS})
    if header_children:
        header = envelope.subelement(f"{ENV_PREFIX}:Header")
        for child in header_children:
            header.append(child)
    body = envelope.subelement(f"{ENV_PREFIX}:Body")
    for child in body_children:
        body.append(child)
    return envelope


def envelope_to_bytes(envelope: Element) -> bytes:
    """Serialize an envelope for the wire (with XML declaration)."""
    return tostring(envelope, xml_declaration=True).encode("utf-8")


class ParsedEnvelope:
    """The result of :func:`parse_envelope`: header entries + body entries."""

    def __init__(self, root: Element) -> None:
        self.root = root
        if root.local_name != "Envelope":
            raise SoapDecodingError(
                f"document root is <{root.tag}>, not a SOAP Envelope")
        self.header: Optional[Element] = root.find("Header")
        body = root.find("Body")
        if body is None:
            raise SoapDecodingError("SOAP Envelope has no Body")
        self.body: Element = body

    @property
    def body_entries(self) -> List[Element]:
        return self.body.elements()

    @property
    def header_entries(self) -> List[Element]:
        if self.header is None:
            return []
        return self.header.elements()

    def first_body_element(self) -> Element:
        entries = self.body_entries
        if not entries:
            raise SoapDecodingError("SOAP Body is empty")
        return entries[0]

    def fault(self) -> Optional[SoapFault]:
        """Return the Fault carried by the Body, if any."""
        fault_el = self.body.find("Fault")
        if fault_el is None:
            return None
        code = fault_el.findtext("faultcode", "Server")
        string = fault_el.findtext("faultstring", "unknown fault")
        detail_el = fault_el.find("detail")
        detail = detail_el.text if detail_el is not None else None
        return SoapFault(code.rsplit(":", 1)[-1], string, detail)

    def raise_if_fault(self) -> None:
        fault = self.fault()
        if fault is not None:
            raise fault


def parse_envelope(payload: bytes) -> ParsedEnvelope:
    """Parse wire bytes into a :class:`ParsedEnvelope`."""
    try:
        text = payload.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SoapDecodingError(f"SOAP payload is not UTF-8: {exc}")
    return ParsedEnvelope(parse(text))


def build_fault(fault: SoapFault) -> Element:
    """Encode a :class:`SoapFault` as a Body entry."""
    fault_el = Element(f"{ENV_PREFIX}:Fault")
    fault_el.subelement("faultcode", text=f"{ENV_PREFIX}:{fault.faultcode}")
    fault_el.subelement("faultstring", text=fault.faultstring)
    if fault.detail:
        fault_el.subelement("detail", text=fault.detail)
    return fault_el


def fault_envelope(fault: SoapFault) -> bytes:
    """A complete serialized fault response."""
    return envelope_to_bytes(build_envelope([build_fault(fault)]))
