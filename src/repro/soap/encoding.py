"""XML <-> native parameter marshalling driven by PBIO formats.

These are the *conversion handlers* of Fig. 1: generated from the same
format descriptions the binary path uses, they translate between Python
values and SOAP RPC-style XML.  The encoding follows the conventions the
paper measures against:

* every array element gets its own enclosing tag (``<item>``) — the
  "redundant tags" responsible for XML's 4-5x size blowup on arrays,
* struct fields become nested elements — the exponential document growth
  on deeply nested structs,
* numbers are rendered in ASCII — the digit-conversion bottleneck of
  Chiu et al. that §II cites.

Decoding exists in two flavours: tree-based (:func:`decode_value`) and
streaming via the pull parser (:func:`decode_fields_pull`), the fast path
for large arrays.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..pbio import Array, FieldType, Format, FormatRegistry, Primitive, StructRef
from ..xmlcore import Element, XmlPullParser
from ..xmlcore import tokenizer as tk
from .errors import SoapDecodingError, SoapEncodingError

#: Element name used for anonymous array items.
ITEM_TAG = "item"


# ----------------------------------------------------------------------
# encoding: native -> XML
# ----------------------------------------------------------------------

def encode_value(tag: str, value: Any, ftype: FieldType,
                 registry: Optional[FormatRegistry] = None) -> Element:
    """Encode one value as ``<tag>...</tag>`` following ``ftype``."""
    el = Element(tag)
    _fill(el, value, ftype, registry)
    return el


def encode_fields(parent: Element, value: Dict[str, Any], fmt: Format,
                  registry: Optional[FormatRegistry] = None) -> Element:
    """Append one child element per format field to ``parent``."""
    for field in fmt.fields:
        try:
            field_value = value[field.name]
        except KeyError:
            raise SoapEncodingError(
                f"message {fmt.name!r}: missing field {field.name!r}")
        parent.append(encode_value(field.name, field_value, field.ftype,
                                   registry))
    return parent


def _fill(el: Element, value: Any, ftype: FieldType,
          registry: Optional[FormatRegistry]) -> None:
    if isinstance(ftype, Primitive):
        el.children.append(_primitive_text(value, ftype))
        return
    if isinstance(ftype, Array):
        if ftype.length is not None and len(value) != ftype.length:
            raise SoapEncodingError(
                f"<{el.tag}>: expected {ftype.length} items, "
                f"got {len(value)}")
        for item in value:
            el.append(encode_value(ITEM_TAG, item, ftype.element, registry))
        return
    if isinstance(ftype, StructRef):
        if registry is None:
            raise SoapEncodingError(
                f"<{el.tag}>: struct {ftype.format_name!r} needs a registry")
        sub_fmt = registry.by_name(ftype.format_name)
        encode_fields(el, value, sub_fmt, registry)
        return
    raise SoapEncodingError(f"cannot encode type {ftype!r}")


def _primitive_text(value: Any, ftype: Primitive) -> str:
    kind = ftype.kind
    try:
        if kind == "string":
            return str(value)
        if kind == "char":
            text = str(value)
            if len(text) != 1:
                raise SoapEncodingError(
                    f"char value must be one character, got {text!r}")
            return text
        if kind.startswith("float"):
            return repr(float(value))
        return str(int(value))
    except (TypeError, ValueError) as exc:
        raise SoapEncodingError(f"bad {kind} value {value!r}: {exc}")


# ----------------------------------------------------------------------
# decoding: XML tree -> native
# ----------------------------------------------------------------------

def decode_value(el: Element, ftype: FieldType,
                 registry: Optional[FormatRegistry] = None) -> Any:
    """Decode an element's content according to ``ftype``."""
    if isinstance(ftype, Primitive):
        return _parse_primitive(el.text, ftype, el.tag)
    if isinstance(ftype, Array):
        items = [decode_value(child, ftype.element, registry)
                 for child in el.elements()]
        if ftype.length is not None and len(items) != ftype.length:
            raise SoapDecodingError(
                f"<{el.tag}>: expected {ftype.length} items, "
                f"got {len(items)}")
        return items
    if isinstance(ftype, StructRef):
        if registry is None:
            raise SoapDecodingError(
                f"<{el.tag}>: struct {ftype.format_name!r} needs a registry")
        return decode_fields(el, registry.by_name(ftype.format_name),
                             registry)
    raise SoapDecodingError(f"cannot decode type {ftype!r}")


def decode_fields(parent: Element, fmt: Format,
                  registry: Optional[FormatRegistry] = None) -> Dict[str, Any]:
    """Decode ``parent``'s children as the fields of ``fmt``."""
    value: Dict[str, Any] = {}
    for field in fmt.fields:
        child = parent.find(field.name)
        if child is None:
            raise SoapDecodingError(
                f"message {fmt.name!r}: missing element <{field.name}>")
        value[field.name] = decode_value(child, field.ftype, registry)
    return value


def _parse_primitive(text: str, ftype: Primitive, tag: str) -> Any:
    kind = ftype.kind
    try:
        if kind == "string":
            return text
        if kind == "char":
            if len(text) != 1:
                raise SoapDecodingError(
                    f"<{tag}>: char needs exactly one character, "
                    f"got {text!r}")
            return text
        if kind.startswith("float"):
            return float(text)
        return int(text.strip())
    except ValueError as exc:
        raise SoapDecodingError(f"<{tag}>: bad {kind} value {text!r}: {exc}")


# ----------------------------------------------------------------------
# decoding: streaming pull parser -> native (fast path)
# ----------------------------------------------------------------------

def decode_fields_pull(pp: XmlPullParser, fmt: Format,
                       registry: Optional[FormatRegistry] = None) -> Dict[str, Any]:
    """Decode the fields of ``fmt`` from a pull parser positioned just
    inside the wrapping element.

    Fields must appear in format order (which our encoder guarantees);
    this lets large arrays decode without materializing a tree.
    """
    value: Dict[str, Any] = {}
    for field in fmt.fields:
        start = pp.require_start(field.name)
        value[field.name] = _decode_type_pull(pp, field.ftype, registry,
                                              start.name)
        pp.require_end(start.name)
    return value


def _decode_type_pull(pp: XmlPullParser, ftype: FieldType,
                      registry: Optional[FormatRegistry],
                      tag: str) -> Any:
    if isinstance(ftype, Primitive):
        return _parse_primitive(pp.read_text(), ftype, tag)
    if isinstance(ftype, Array):
        items: List[Any] = []
        while True:
            pp.skip_text()
            nxt = pp.peek()
            if nxt is None or nxt.kind != tk.START:
                break
            start = pp.require_start()
            items.append(_decode_type_pull(pp, ftype.element, registry,
                                           start.name))
            pp.require_end(start.name)
        if ftype.length is not None and len(items) != ftype.length:
            raise SoapDecodingError(
                f"<{tag}>: expected {ftype.length} items, got {len(items)}")
        return items
    if isinstance(ftype, StructRef):
        if registry is None:
            raise SoapDecodingError(
                f"<{tag}>: struct {ftype.format_name!r} needs a registry")
        return decode_fields_pull(pp, registry.by_name(ftype.format_name),
                                  registry)
    raise SoapDecodingError(f"cannot decode type {ftype!r}")
