"""ECho-style event channels.

ECho is the group's publish/subscribe, event-based communication system for
large-data applications (the remote-visualization portal in §IV-C.4 uses an
'ECho' bondserver as a backend).  The properties that matter for the
reproduction:

* typed events — every event carries a PBIO format, so subscribers receive
  structured binary data, not blobs;
* *derived channels* — a subscriber can install **filter code at runtime**;
  the filter runs where the data is (at the source side) and the subscriber
  receives only the filtered stream.  Filters here are Python source
  strings compiled with :func:`compile`, mirroring ECho's dynamic binary
  code generation (the paper's §V: "we have already developed the
  technologies necessary to install binary handlers at runtime, using
  dynamic binary code generation techniques").

Delivery is synchronous and in-process (the portal and its backend share a
process in our deployment); cross-process delivery goes through the portal's
SOAP-bin interface.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Dict, List, Optional

from ..pbio import Format
from .errors import ChannelClosed
from .filters import EventFilter

#: A subscriber callback: receives (format, value).
Sink = Callable[[Format, Dict[str, Any]], None]

_subscription_ids = itertools.count(1)


class Subscription:
    """Handle returned by :meth:`EventChannel.subscribe`."""

    def __init__(self, channel: "EventChannel", sink: Sink,
                 event_filter: Optional[EventFilter] = None) -> None:
        self.id = next(_subscription_ids)
        self.channel = channel
        self.sink = sink
        self.filter = event_filter
        self.events_delivered = 0
        self.events_filtered_out = 0

    def cancel(self) -> None:
        self.channel.unsubscribe(self)

    def _deliver(self, fmt: Format, value: Dict[str, Any]) -> None:
        if self.filter is not None:
            transformed = self.filter(fmt, value)
            if transformed is None:
                self.events_filtered_out += 1
                return
            fmt, value = transformed
        self.events_delivered += 1
        self.sink(fmt, value)


class EventChannel:
    """A named, typed event channel.

    Sources submit ``(format, value)`` events; every live subscription
    receives them (through its filter, if any).
    """

    def __init__(self, name: str, event_format: Optional[Format] = None) -> None:
        self.name = name
        self.event_format = event_format
        self._lock = threading.Lock()
        self._subscriptions: List[Subscription] = []
        self._closed = False
        self.events_submitted = 0

    # ------------------------------------------------------------------
    def subscribe(self, sink: Sink,
                  event_filter: Optional[EventFilter] = None) -> Subscription:
        """Attach a sink; events flow until the subscription is cancelled.

        ``event_filter`` makes this a *derived channel* subscription: the
        filter transforms (or drops) events before the sink sees them.
        """
        with self._lock:
            if self._closed:
                raise ChannelClosed(f"channel {self.name!r} is closed")
            subscription = Subscription(self, sink, event_filter)
            self._subscriptions.append(subscription)
            return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        with self._lock:
            if subscription in self._subscriptions:
                self._subscriptions.remove(subscription)

    def submit(self, fmt: Format, value: Dict[str, Any]) -> int:
        """Publish one event; returns the number of sinks that received it."""
        with self._lock:
            if self._closed:
                raise ChannelClosed(f"channel {self.name!r} is closed")
            if (self.event_format is not None
                    and fmt.fingerprint != self.event_format.fingerprint):
                raise ChannelClosed(
                    f"channel {self.name!r} carries "
                    f"{self.event_format.name!r} events, not {fmt.name!r}")
            subscriptions = list(self._subscriptions)
            self.events_submitted += 1
        delivered = 0
        for subscription in subscriptions:
            before = subscription.events_delivered
            subscription._deliver(fmt, value)
            delivered += subscription.events_delivered - before
        return delivered

    # ------------------------------------------------------------------
    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._subscriptions.clear()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        return (f"<EventChannel {self.name!r} subs={self.subscriber_count} "
                f"submitted={self.events_submitted}>")


class ChannelDirectory:
    """Process-wide registry of channels (ECho's channel naming)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._channels: Dict[str, EventChannel] = {}

    def open(self, name: str,
             event_format: Optional[Format] = None) -> EventChannel:
        """Open (creating if needed) the channel called ``name``."""
        with self._lock:
            channel = self._channels.get(name)
            if channel is None or channel.closed:
                channel = EventChannel(name, event_format)
                self._channels[name] = channel
            return channel

    def names(self) -> List[str]:
        with self._lock:
            return sorted(name for name, ch in self._channels.items()
                          if not ch.closed)

    def close_all(self) -> None:
        with self._lock:
            for channel in self._channels.values():
                channel.close()
            self._channels.clear()
