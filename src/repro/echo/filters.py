"""Runtime-installed event filters for derived channels.

"The client can dynamically change the filter code and the output format
desired." (§IV-C.4)  A filter is Python source for a function body that
receives the event ``value`` (a dict) and either:

* returns a dict — the transformed event,
* returns ``None`` — the event is dropped.

Filter source arrives over the wire (the remote-viz client ships it in its
request), so compilation is sandboxed the cheap-but-honest way: no builtins
beyond an allowlist of pure functions, no import machinery, no attribute
access to dunder names.  This is *not* a security boundary against a
malicious peer — neither was ECho's DCG — but it stops accidents and keeps
filters declarative.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..pbio import Format
from .errors import FilterError

#: Functions filter code may call.
_SAFE_BUILTINS = {
    "abs": abs, "min": min, "max": max, "sum": sum, "len": len,
    "round": round, "int": int, "float": float, "str": str, "bool": bool,
    "sorted": sorted, "reversed": reversed, "enumerate": enumerate,
    "range": range, "zip": zip, "list": list, "dict": dict, "tuple": tuple,
    "set": set, "any": any, "all": all,
}

EventFilter = Callable[[Format, Dict[str, Any]],
                       Optional[Tuple[Format, Dict[str, Any]]]]


def compile_filter(source: str, output_format: Optional[Format] = None,
                   name: str = "filter") -> EventFilter:
    """Compile filter source into an :data:`EventFilter`.

    The source is the *body* of a function ``def filter(value): ...``; it
    must ``return`` the transformed dict (or ``None`` to drop the event).

    >>> f = compile_filter("return {'n': value['n'] * 2}")
    >>> from repro.pbio import Format
    >>> fmt = Format.from_dict("ev", {"n": "int32"})
    >>> f(fmt, {"n": 21})[1]
    {'n': 42}
    """
    _reject_dangerous(source)
    indented = "\n".join("    " + line for line in source.splitlines())
    wrapper = f"def _filter_fn(value):\n{indented or '    return value'}\n"
    namespace: Dict[str, Any] = {"__builtins__": dict(_SAFE_BUILTINS)}
    try:
        exec(compile(wrapper, f"<echo-filter:{name}>", "exec"), namespace)
    except SyntaxError as exc:
        raise FilterError(f"filter does not compile: {exc}")
    fn = namespace["_filter_fn"]

    def event_filter(fmt: Format, value: Dict[str, Any]):
        try:
            result = fn(dict(value))
        except Exception as exc:  # noqa: BLE001 - user code boundary
            raise FilterError(f"filter raised {type(exc).__name__}: {exc}")
        if result is None:
            return None
        if not isinstance(result, dict):
            raise FilterError(
                f"filter must return a dict or None, got "
                f"{type(result).__name__}")
        return (output_format or fmt), result

    event_filter.__filter_source__ = source
    return event_filter


def _reject_dangerous(source: str) -> None:
    lowered = source
    for needle in ("import", "__", "exec(", "eval(", "open(", "compile("):
        if needle in lowered:
            raise FilterError(
                f"filter source may not contain {needle!r}")


def identity_filter(fmt: Format, value: Dict[str, Any]):
    """The no-op filter (useful as a default)."""
    return fmt, value


def select_fields_filter(*field_names: str) -> EventFilter:
    """A pre-built filter keeping only the named fields."""

    def event_filter(fmt: Format, value: Dict[str, Any]):
        return fmt, {name: value[name] for name in field_names
                     if name in value}

    return event_filter
