"""ECho: publish/subscribe event channels with runtime-installed filters.

The event substrate behind the remote-visualization application (§IV-C.4):
typed channels, synchronous fan-out, and derived channels whose filter code
is compiled at runtime from source shipped by clients.
"""

from .channel import (ChannelDirectory, EventChannel, Sink, Subscription)
from .errors import ChannelClosed, EchoError, FilterError
from .filters import (EventFilter, compile_filter, identity_filter,
                      select_fields_filter)

__all__ = [
    "EchoError", "ChannelClosed", "FilterError",
    "EventChannel", "ChannelDirectory", "Subscription", "Sink",
    "EventFilter", "compile_filter", "identity_filter",
    "select_fields_filter",
]
