"""Exception types for the ECho event substrate."""

from __future__ import annotations


class EchoError(Exception):
    """Base class for event-system errors."""


class ChannelClosed(EchoError):
    """An event was submitted to (or a subscription made on) a closed
    channel."""


class FilterError(EchoError):
    """A derived-channel filter failed to compile or to run."""
