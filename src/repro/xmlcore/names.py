"""Qualified-name and namespace utilities.

SOAP 1.1 and WSDL are namespace-heavy; this module provides the small set of
operations the rest of the stack needs:

* splitting ``prefix:local`` names,
* resolving prefixes against the in-scope ``xmlns`` declarations of a tree,
* the well-known namespace URIs used by SOAP/WSDL/XSD.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .errors import XmlNamespaceError
from .tree import Element

#: Well-known namespace URIs.
SOAP_ENV_NS = "http://schemas.xmlsoap.org/soap/envelope/"
SOAP_ENC_NS = "http://schemas.xmlsoap.org/soap/encoding/"
WSDL_NS = "http://schemas.xmlsoap.org/wsdl/"
WSDL_SOAP_NS = "http://schemas.xmlsoap.org/wsdl/soap/"
XSD_NS = "http://www.w3.org/2001/XMLSchema"
XSI_NS = "http://www.w3.org/2001/XMLSchema-instance"
XMLNS_NS = "http://www.w3.org/2000/xmlns/"
SVG_NS = "http://www.w3.org/2000/svg"

#: Namespace used for SOAP-binQ extension headers (quality attributes that
#: ride along with requests, §III-B of the paper).
BINQ_NS = "urn:repro:soap-binq"


def split_qname(name: str) -> Tuple[Optional[str], str]:
    """Split ``prefix:local`` into ``(prefix, local)``.

    >>> split_qname("soap:Envelope")
    ('soap', 'Envelope')
    >>> split_qname("Envelope")
    (None, 'Envelope')
    """
    if ":" in name:
        prefix, local = name.split(":", 1)
        return prefix, local
    return None, name


def local_name(name: str) -> str:
    """The local part of a possibly prefixed name."""
    return name.rsplit(":", 1)[-1]


def declared_namespaces(el: Element) -> Dict[Optional[str], str]:
    """The ``xmlns`` declarations made directly on ``el``.

    The default namespace is keyed by ``None``.
    """
    out: Dict[Optional[str], str] = {}
    for key, value in el.attrib.items():
        if key == "xmlns":
            out[None] = value
        elif key.startswith("xmlns:"):
            out[key[6:]] = value
    return out


class NamespaceScope:
    """A stack of in-scope namespace bindings.

    Used when walking a tree top-down: push each element's declarations on
    entry, pop on exit.
    """

    def __init__(self, initial: Optional[Dict[Optional[str], str]] = None) -> None:
        self._stack = [dict(initial) if initial else {"xml": XMLNS_NS}]

    def push(self, el: Element) -> None:
        top = dict(self._stack[-1])
        top.update(declared_namespaces(el))
        self._stack.append(top)

    def pop(self) -> None:
        if len(self._stack) == 1:
            raise XmlNamespaceError("namespace scope underflow")
        self._stack.pop()

    def resolve(self, name: str, use_default: bool = True) -> Tuple[Optional[str], str]:
        """Resolve a qualified name to ``(namespace_uri, local)``.

        Unprefixed names resolve to the default namespace for element names
        (``use_default=True``) and to no namespace for attribute names.
        """
        prefix, local = split_qname(name)
        bindings = self._stack[-1]
        if prefix is None:
            uri = bindings.get(None) if use_default else None
            return uri, local
        if prefix not in bindings:
            raise XmlNamespaceError(f"undeclared namespace prefix {prefix!r}")
        return bindings[prefix], local

    def prefix_for(self, uri: str) -> Optional[str]:
        """A prefix currently bound to ``uri`` (or None)."""
        for prefix, bound in self._stack[-1].items():
            if bound == uri and prefix is not None:
                return prefix
        return None


def resolve_all(root: Element) -> Dict[int, Tuple[Optional[str], str]]:
    """Map ``id(element)`` to its resolved ``(namespace, local)`` name.

    A one-shot resolution pass over a whole tree; WSDL parsing uses this to
    interpret prefixed type references.
    """
    result: Dict[int, Tuple[Optional[str], str]] = {}
    scope = NamespaceScope()

    def walk(el: Element) -> None:
        scope.push(el)
        result[id(el)] = scope.resolve(el.tag)
        for child in el.elements():
            walk(child)
        scope.pop()

    walk(root)
    return result


def find_by_namespace(root: Element, uri: str, local: str) -> Iterator[Element]:
    """Yield descendants (and root) whose resolved name is ``{uri}local``."""
    names = resolve_all(root)
    for el in root.iter():
        if names.get(id(el)) == (uri, local):
            yield el
