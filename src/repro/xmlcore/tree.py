"""A lightweight element tree built on the tokenizer.

The SOAP and WSDL layers want a small DOM: elements with a tag, an attribute
dict, text content and child elements.  This module provides exactly that —
no parent pointers, no tail-text split (text is normalized into explicit
child order), no schema awareness.

The design mirrors ``xml.etree.ElementTree`` closely enough that users find
it familiar, but it is implemented entirely on top of
:mod:`repro.xmlcore.tokenizer` so that the whole XML path of the
reproduction is self-contained and measurable.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

from . import tokenizer as tk
from .errors import XmlParseError

Child = Union["Element", str]


class Element:
    """An XML element: tag, attributes, and ordered children.

    Children are either :class:`Element` instances or plain strings
    (character data).  ``text`` gives the concatenation of all string
    children, which is what SOAP parameter decoding needs.
    """

    __slots__ = ("tag", "attrib", "children")

    def __init__(self, tag: str, attrib: Optional[Dict[str, str]] = None,
                 text: Optional[str] = None) -> None:
        self.tag = tag
        self.attrib: Dict[str, str] = dict(attrib) if attrib else {}
        self.children: List[Child] = []
        if text is not None:
            self.children.append(text)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def append(self, child: Child) -> Child:
        """Append a child element or text node and return it."""
        self.children.append(child)
        return child

    def subelement(self, tag: str, attrib: Optional[Dict[str, str]] = None,
                   text: Optional[str] = None) -> "Element":
        """Create, append and return a child element."""
        el = Element(tag, attrib, text)
        self.children.append(el)
        return el

    def set(self, key: str, value: str) -> None:
        self.attrib[key] = value

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return self.attrib.get(key, default)

    @property
    def text(self) -> str:
        """All character data directly under this element, concatenated."""
        return "".join(c for c in self.children if isinstance(c, str))

    @text.setter
    def text(self, value: str) -> None:
        self.children = [c for c in self.children if isinstance(c, Element)]
        if value:
            self.children.insert(0, value)

    def elements(self) -> List["Element"]:
        """The element (non-text) children, in document order."""
        return [c for c in self.children if isinstance(c, Element)]

    def find(self, tag: str) -> Optional["Element"]:
        """First direct child with the given tag (local name match allowed).

        A tag of ``"ns:name"`` matches exactly; a tag of ``"name"`` also
        matches any prefixed child whose local part is ``name``.  This
        mirrors how SOAP stacks tolerate varying namespace prefixes.
        """
        for child in self.children:
            if isinstance(child, Element) and _tag_matches(child.tag, tag):
                return child
        return None

    def findall(self, tag: str) -> List["Element"]:
        """All direct children matching ``tag`` (see :meth:`find`)."""
        return [c for c in self.children
                if isinstance(c, Element) and _tag_matches(c.tag, tag)]

    def findtext(self, tag: str, default: str = "") -> str:
        found = self.find(tag)
        return found.text if found is not None else default

    def iter(self) -> Iterator["Element"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    @property
    def local_name(self) -> str:
        """Tag with any namespace prefix stripped."""
        return self.tag.rsplit(":", 1)[-1]

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.elements())

    def __getitem__(self, index: int) -> "Element":
        return self.elements()[index]

    def __iter__(self) -> Iterator["Element"]:
        return iter(self.elements())

    def __repr__(self) -> str:
        return f"<Element {self.tag!r} attrs={len(self.attrib)} children={len(self.children)}>"

    def __eq__(self, other: object) -> bool:
        """Structural equality ignoring inter-element whitespace."""
        if not isinstance(other, Element):
            return NotImplemented
        return (self.tag == other.tag and self.attrib == other.attrib
                and _significant(self.children) == _significant(other.children))

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)


def _tag_matches(actual: str, wanted: str) -> bool:
    if actual == wanted:
        return True
    if ":" not in wanted and ":" in actual:
        return actual.rsplit(":", 1)[1] == wanted
    return False


def _significant(children: List[Child]) -> List[Child]:
    """Children with whitespace-only text nodes removed (for ==)."""
    out: List[Child] = []
    for c in children:
        if isinstance(c, str):
            if c.strip():
                out.append(c)
        else:
            out.append(c)
    return out


def parse(text: str, keep_whitespace: bool = False) -> Element:
    """Parse an XML document string into its root :class:`Element`.

    Inter-element whitespace-only text is dropped unless ``keep_whitespace``
    is true; text inside leaf elements is always preserved verbatim.

    Raises :class:`XmlParseError` on any well-formedness violation,
    including unbalanced tags, multiple roots and trailing garbage.
    """
    root: Optional[Element] = None
    stack: List[Element] = []
    for tok in tk.Tokenizer(text).tokens():
        if tok.kind == tk.START:
            el = Element(tok.name, tok.attrs)
            if stack:
                stack[-1].children.append(el)
            elif root is None:
                root = el
            else:
                raise XmlParseError("multiple root elements",
                                    line=tok.line, column=tok.column)
            if not tok.self_closing:
                stack.append(el)
            elif not keep_whitespace:
                _strip_structural_whitespace(el)
        elif tok.kind == tk.END:
            if not stack:
                raise XmlParseError(f"unexpected </{tok.name}>",
                                    line=tok.line, column=tok.column)
            open_el = stack.pop()
            if open_el.tag != tok.name:
                raise XmlParseError(
                    f"mismatched tag: <{open_el.tag}> closed by </{tok.name}>",
                    line=tok.line, column=tok.column)
            if not keep_whitespace:
                _strip_structural_whitespace(open_el)
        elif tok.kind in (tk.TEXT, tk.CDATA):
            if stack:
                stack[-1].children.append(tok.data)
            elif tok.data.strip():
                raise XmlParseError("character data outside root element",
                                    line=tok.line, column=tok.column)
        # comments, PIs and DOCTYPE are skipped by the tree builder
    if stack:
        raise XmlParseError(f"unclosed element <{stack[-1].tag}>")
    if root is None:
        raise XmlParseError("no root element")
    return root


def _strip_structural_whitespace(el: Element) -> None:
    """Remove indentation-only text from an element with element children.

    Called when an element is closed: if it contains element children and
    *no* non-whitespace text, any whitespace-only strings are indentation and
    are dropped.  Pure-text elements (even whitespace-only ones) keep their
    text verbatim.
    """
    has_elements = any(isinstance(c, Element) for c in el.children)
    if not has_elements:
        return
    has_real_text = any(isinstance(c, str) and c.strip() for c in el.children)
    if has_real_text:
        return
    el.children = [c for c in el.children if isinstance(c, Element)]


def fromstring(text: str) -> Element:
    """Alias for :func:`parse` matching the ElementTree naming."""
    return parse(text)
