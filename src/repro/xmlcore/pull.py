"""A streaming pull parser in the style of the XML Pull Parser (XPP).

The paper's related-work section points at XPP, the stream-based fast XML
parser used by SoapRMI, as the state of the art for fast SOAP parsing.  We
provide the same programming model: the application *pulls* events one at a
time, so a SOAP stack can decode parameters as it walks the document without
building a full tree — the fast path for large arrays.

Events carry the same token kinds as :mod:`repro.xmlcore.tokenizer`, plus
depth tracking and tag-balance checking, which the raw tokenizer does not
do.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from . import tokenizer as tk
from .errors import XmlParseError


#: Shared attribute dict for events that cannot carry attributes (END and
#: TEXT).  Saves one dict allocation per event on the hot decode path;
#: consumers treat event attrs as read-only.
_NO_ATTRS: Dict[str, str] = {}


class PullEvent:
    """A single parse event.

    Attributes mirror :class:`~repro.xmlcore.tokenizer.Token`, with an added
    ``depth``: the element nesting depth *after* the event is applied
    (START increments, END decrements).
    """

    __slots__ = ("kind", "name", "data", "attrs", "depth")

    def __init__(self, kind: str, name: str = "", data: str = "",
                 attrs: Optional[Dict[str, str]] = None, depth: int = 0) -> None:
        self.kind = kind
        self.name = name
        self.data = data
        self.attrs = attrs if attrs is not None else _NO_ATTRS
        self.depth = depth

    def __repr__(self) -> str:
        ident = self.name or (self.data[:20] + "…" if len(self.data) > 20
                              else self.data)
        return f"<PullEvent {self.kind} {ident!r} depth={self.depth}>"


class XmlPullParser:
    """Pull events from an XML document with tag-balance enforcement.

    Typical SOAP decode loop::

        pp = XmlPullParser(body_text)
        pp.require_start("Envelope")
        pp.require_start("Body")
        while pp.peek().kind == tokenizer.START:
            name = pp.next().name
            value = pp.read_text()
            pp.require_end(name)
    """

    def __init__(self, text: str) -> None:
        self._events = self._generate(text)
        self._lookahead: Optional[PullEvent] = None
        self.depth = 0

    def _generate(self, text: str) -> Iterator[PullEvent]:
        # Kind constants are interned module strings; binding them locally
        # keeps the per-token dispatch cheap (== short-circuits on identity).
        START, END, TEXT, CDATA = tk.START, tk.END, tk.TEXT, tk.CDATA
        stack: List[str] = []
        for tok in tk.Tokenizer(text).tokens():
            if tok.kind == START:
                stack.append(tok.name)
                yield PullEvent(START, name=tok.name, attrs=tok.attrs,
                                depth=len(stack))
                if tok.self_closing:
                    stack.pop()
                    yield PullEvent(END, name=tok.name, depth=len(stack))
            elif tok.kind == END:
                if not stack:
                    raise XmlParseError(f"unexpected </{tok.name}>",
                                        line=tok.line, column=tok.column)
                opened = stack.pop()
                if opened != tok.name:
                    raise XmlParseError(
                        f"mismatched tag: <{opened}> closed by </{tok.name}>",
                        line=tok.line, column=tok.column)
                yield PullEvent(END, name=tok.name, depth=len(stack))
            elif tok.kind == TEXT or tok.kind == CDATA:
                if stack:
                    yield PullEvent(TEXT, data=tok.data, depth=len(stack))
                elif tok.data.strip():
                    raise XmlParseError("character data outside root element",
                                        line=tok.line, column=tok.column)
            # comments / PIs / doctype are invisible to pull consumers
        if stack:
            raise XmlParseError(f"unclosed element <{stack[-1]}>")

    # ------------------------------------------------------------------
    # pull API
    # ------------------------------------------------------------------
    def next(self) -> PullEvent:
        """Return the next event; raises :class:`XmlParseError` at EOF."""
        if self._lookahead is not None:
            ev, self._lookahead = self._lookahead, None
        else:
            try:
                ev = next(self._events)
            except StopIteration:
                raise XmlParseError("unexpected end of document")
        self.depth = ev.depth
        return ev

    def peek(self) -> Optional[PullEvent]:
        """Return the next event without consuming it (None at EOF)."""
        if self._lookahead is None:
            try:
                self._lookahead = next(self._events)
            except StopIteration:
                return None
        return self._lookahead

    def at_eof(self) -> bool:
        return self.peek() is None

    # ------------------------------------------------------------------
    # convenience combinators used by the SOAP decoder
    # ------------------------------------------------------------------
    def skip_text(self) -> None:
        """Consume any whitespace-only text events."""
        while True:
            ev = self.peek()
            if ev is None or ev.kind != tk.TEXT or ev.data.strip():
                return
            self.next()

    def require_start(self, name: Optional[str] = None) -> PullEvent:
        """Consume a START event, optionally checking its (local) name."""
        self.skip_text()
        ev = self.next()
        if ev.kind != tk.START:
            raise XmlParseError(f"expected a start tag, got {ev.kind}")
        if name is not None and _local(ev.name) != _local(name):
            raise XmlParseError(f"expected <{name}>, got <{ev.name}>")
        return ev

    def require_end(self, name: Optional[str] = None) -> PullEvent:
        """Consume an END event, optionally checking its (local) name."""
        self.skip_text()
        ev = self.next()
        if ev.kind != tk.END:
            raise XmlParseError(f"expected an end tag, got {ev.kind}")
        if name is not None and _local(ev.name) != _local(name):
            raise XmlParseError(f"expected </{name}>, got </{ev.name}>")
        return ev

    def read_text(self) -> str:
        """Concatenate text events up to the next structural event."""
        parts: List[str] = []
        while True:
            ev = self.peek()
            if ev is None or ev.kind != tk.TEXT:
                return "".join(parts)
            parts.append(self.next().data)

    def read_element_text(self, name: Optional[str] = None) -> str:
        """Consume ``<name>text</name>`` and return the text."""
        start = self.require_start(name)
        text = self.read_text()
        self.require_end(start.name)
        return text

    def skip_element(self) -> None:
        """Consume the current element (START already peeked) entirely."""
        start = self.require_start()
        depth = 1
        while depth:
            ev = self.next()
            if ev.kind == tk.START:
                depth += 1
            elif ev.kind == tk.END:
                depth -= 1
        del start


def _local(name: str) -> str:
    return name.rsplit(":", 1)[-1]
