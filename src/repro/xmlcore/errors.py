"""Exception types for the :mod:`repro.xmlcore` package.

The XML layer is used on the hot path of every SOAP message, so its error
types carry enough position information (line / column / byte offset) for a
caller to report *where* a malformed document went wrong without re-parsing.
"""

from __future__ import annotations


class XmlError(Exception):
    """Base class for all XML errors raised by :mod:`repro.xmlcore`."""


class XmlParseError(XmlError):
    """Raised when a document is not well formed.

    Attributes
    ----------
    message:
        Human readable description of the problem.
    line, column:
        1-based line and column of the offending character.
    offset:
        0-based character offset into the source text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0,
                 offset: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        self.offset = offset
        super().__init__(f"{message} (line {line}, column {column})")


class XmlWriteError(XmlError):
    """Raised when a tree cannot be serialized (bad tag name, etc.)."""


class XmlNamespaceError(XmlError):
    """Raised when a qualified name uses an undeclared namespace prefix."""
