"""Serialization of :class:`~repro.xmlcore.tree.Element` trees to text.

The writer is deliberately simple and fast: a single recursive walk that
appends to a list and joins once.  Two styles are offered:

* compact (default) — no added whitespace, byte-for-byte deterministic,
  used on the wire;
* indented — human-readable, used by examples and debugging output.

Escaping follows the XML 1.0 rules: ``& < >`` always, quotes only inside
attribute values.
"""

from __future__ import annotations

import re
from typing import List, Union

from .errors import XmlWriteError
from .tree import Element

_NAME_OK = re.compile(r"^[A-Za-z_:][-A-Za-z0-9._:]*$")

# Escaping runs as a single C-level str.translate call: one pass over the
# string, no regex machinery, no per-match Python callbacks.
_TEXT_TABLE = str.maketrans({"&": "&amp;", "<": "&lt;", ">": "&gt;"})
_ATTR_TABLE = str.maketrans({"&": "&amp;", "<": "&lt;", ">": "&gt;",
                             '"': "&quot;"})


def escape_text(value: str) -> str:
    """Escape character data for element content.

    >>> escape_text("a < b & c")
    'a &lt; b &amp; c'
    """
    return value.translate(_TEXT_TABLE)


def escape_attr(value: str) -> str:
    """Escape an attribute value (double-quote delimited)."""
    return value.translate(_ATTR_TABLE)


def tostring(element: Element, indent: Union[int, None] = None,
             xml_declaration: bool = False) -> str:
    """Serialize ``element`` (and descendants) to an XML string.

    Parameters
    ----------
    element:
        Root of the tree to serialize.
    indent:
        ``None`` for compact output; an integer for pretty-printing with
        that many spaces per nesting level.  Elements with text content are
        kept on one line so round-tripping preserves their text exactly.
    xml_declaration:
        Prepend ``<?xml version="1.0" encoding="utf-8"?>``.
    """
    parts: List[str] = []
    if xml_declaration:
        parts.append('<?xml version="1.0" encoding="utf-8"?>')
        if indent is not None:
            parts.append("\n")
    _write(element, parts, indent, 0)
    return "".join(parts)


def _write(el: Element, parts: List[str], indent: Union[int, None],
           depth: int) -> None:
    if not _NAME_OK.match(el.tag):
        raise XmlWriteError(f"invalid element name {el.tag!r}")
    pad = "" if indent is None else " " * (indent * depth)
    parts.append(pad)
    parts.append("<")
    parts.append(el.tag)
    for key, value in el.attrib.items():
        if not _NAME_OK.match(key):
            raise XmlWriteError(f"invalid attribute name {key!r}")
        parts.append(f' {key}="{escape_attr(value)}"')
    if not el.children:
        parts.append("/>")
        if indent is not None:
            parts.append("\n")
        return
    parts.append(">")

    has_element_children = any(isinstance(c, Element) for c in el.children)
    pretty_children = indent is not None and has_element_children and not any(
        isinstance(c, str) and c.strip() for c in el.children)

    if pretty_children:
        parts.append("\n")
        for child in el.children:
            if isinstance(child, Element):
                _write(child, parts, indent, depth + 1)
            # whitespace-only strings are dropped in pretty mode
            elif child.strip():
                parts.append(" " * (indent * (depth + 1)))
                parts.append(escape_text(child))
                parts.append("\n")
        parts.append(pad)
    else:
        for child in el.children:
            if isinstance(child, Element):
                _write(child, parts, None, 0)
            else:
                parts.append(escape_text(child))
    parts.append(f"</{el.tag}>")
    if indent is not None:
        parts.append("\n")


def canonical(element: Element) -> str:
    """A canonical compact form with sorted attributes.

    Useful for comparing documents produced by different code paths (the
    compatibility-mode tests round-trip XML through PBIO and back and need
    an order-insensitive comparison for attributes).
    """
    clone = _sorted_clone(element)
    return tostring(clone)


def _sorted_clone(el: Element) -> Element:
    out = Element(el.tag, dict(sorted(el.attrib.items())))
    for child in el.children:
        if isinstance(child, Element):
            out.children.append(_sorted_clone(child))
        elif child.strip():
            out.children.append(child)
    return out
