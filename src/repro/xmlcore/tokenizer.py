"""A hand-written, single-pass XML tokenizer.

This is the reproduction's stand-in for the Expat toolkit the paper uses for
parsing XML (footnote 1 of the paper).  It scans a document exactly once and
yields a flat stream of tokens; the tree builder (:mod:`repro.xmlcore.tree`)
and the pull parser (:mod:`repro.xmlcore.pull`) are both thin consumers of
this stream.

The tokenizer supports the subset of XML 1.0 that SOAP 1.1 and WSDL actually
exercise:

* start / end / empty element tags with attributes,
* character data with entity references (named and numeric),
* CDATA sections,
* comments and processing instructions (reported, usually skipped),
* an XML declaration and DOCTYPE (skipped; internal subsets rejected).

It intentionally does *not* implement external entities or DTD validation —
neither do Expat-based SOAP stacks in their default configuration, and
omitting them removes an entire class of XXE security problems.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .errors import XmlParseError

#: Token kind constants.  Kept as plain strings for cheap comparisons and
#: readable debugging output.
START = "start"          #: start tag, possibly self-closing
END = "end"              #: end tag
TEXT = "text"            #: character data (entities already resolved)
COMMENT = "comment"      #: ``<!-- ... -->``
PI = "pi"                #: processing instruction ``<? ... ?>``
CDATA = "cdata"          #: CDATA section content
DOCTYPE = "doctype"      #: document type declaration (content unparsed)

_NAMED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

# XML 1.0 Name production, restricted to the commonly used ASCII +
# letter/digit set plus the full unicode letter ranges via \w.
_NAME_START = re.compile(r"[A-Za-z_:À-￿]")
_NAME_CHAR = re.compile(r"[-A-Za-z0-9._:À-￿]")
# Whole-name matcher: one C-level scan instead of per-character stepping.
_NAME_RX = re.compile(r"[A-Za-z_:À-￿][-A-Za-z0-9._:À-￿]*")

_WHITESPACE = " \t\r\n"
_WS_RX = re.compile(r"[ \t\r\n]*")


@dataclass
class Token:
    """One lexical token.

    ``name`` is set for START/END/PI tokens, ``data`` for TEXT/COMMENT/CDATA
    and PI payloads, ``attrs`` only for START tokens.  ``self_closing`` marks
    ``<tag/>`` style tags, for which no matching END token is emitted.
    """

    kind: str
    name: str = ""
    data: str = ""
    attrs: Dict[str, str] = field(default_factory=dict)
    self_closing: bool = False
    line: int = 0
    column: int = 0


def resolve_entity(name: str) -> str:
    """Resolve an entity reference body (without ``&`` and ``;``).

    Supports the five XML named entities plus decimal (``#65``) and
    hexadecimal (``#x41``) character references.

    >>> resolve_entity("amp")
    '&'
    >>> resolve_entity("#x41")
    'A'
    """
    if name in _NAMED_ENTITIES:
        return _NAMED_ENTITIES[name]
    if name.startswith("#x") or name.startswith("#X"):
        try:
            return chr(int(name[2:], 16))
        except ValueError:
            raise XmlParseError(f"bad hex character reference &{name};")
    if name.startswith("#"):
        try:
            return chr(int(name[1:], 10))
        except ValueError:
            raise XmlParseError(f"bad character reference &{name};")
    raise XmlParseError(f"unknown entity &{name};")


class Tokenizer:
    """Single pass scanner over an XML source string.

    Iterate over the instance to receive :class:`Token` objects.  The
    tokenizer performs *well-formedness checks that are local to a token*
    (attribute syntax, entity syntax, tag syntax); cross-token checks such as
    tag balancing belong to the consumers.
    """

    def __init__(self, text: str) -> None:
        if text.startswith("﻿"):
            text = text[1:]
        self._text = text
        self._pos = 0
        self._len = len(text)
        # Incremental line/column tracking: positions are requested in
        # monotonically increasing offset order (one per token), so we keep
        # a high-water mark and only count newlines in the gap since the
        # last request — O(n) total instead of O(n^2).
        self._mark_offset = 0
        self._mark_line = 1
        self._mark_last_nl = -1

    # ------------------------------------------------------------------
    # position helpers
    # ------------------------------------------------------------------
    def _position(self, offset: Optional[int] = None) -> Tuple[int, int]:
        """Return (line, column), both 1-based, for ``offset``."""
        if offset is None:
            offset = self._pos
        if offset < self._mark_offset:
            # Rare (error reporting for an earlier offset): full rescan.
            line = self._text.count("\n", 0, offset) + 1
            last_nl = self._text.rfind("\n", 0, offset)
            return line, offset - last_nl
        gap_newlines = self._text.count("\n", self._mark_offset, offset)
        if gap_newlines:
            self._mark_line += gap_newlines
            self._mark_last_nl = self._text.rfind("\n", self._mark_offset,
                                                  offset)
        self._mark_offset = offset
        return self._mark_line, offset - self._mark_last_nl

    def _error(self, message: str, offset: Optional[int] = None) -> XmlParseError:
        if offset is None:
            offset = self._pos
        line, column = self._position(offset)
        return XmlParseError(message, line=line, column=column, offset=offset)

    # ------------------------------------------------------------------
    # scanning primitives
    # ------------------------------------------------------------------
    def _peek(self) -> str:
        if self._pos >= self._len:
            return ""
        return self._text[self._pos]

    def _startswith(self, s: str) -> bool:
        return self._text.startswith(s, self._pos)

    def _skip_ws(self) -> None:
        # One C-level scan (find-chunked) instead of per-character stepping.
        self._pos = _WS_RX.match(self._text, self._pos).end()

    def _scan_name(self) -> str:
        match = _NAME_RX.match(self._text, self._pos)
        if match is None:
            raise self._error("expected a name")
        self._pos = match.end()
        # Tag and attribute names repeat constantly in SOAP documents
        # (every array item shares one tag); interning makes every
        # downstream name comparison a pointer check and collapses the
        # per-token allocations to one string per distinct name.
        return sys.intern(match.group())

    def _expect(self, s: str) -> None:
        if not self._startswith(s):
            raise self._error(f"expected {s!r}")
        self._pos += len(s)

    def _scan_until(self, marker: str, what: str) -> str:
        end = self._text.find(marker, self._pos)
        if end < 0:
            raise self._error(f"unterminated {what}")
        data = self._text[self._pos:end]
        self._pos = end + len(marker)
        return data

    # ------------------------------------------------------------------
    # token production
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Token]:
        return self.tokens()

    def tokens(self) -> Iterator[Token]:
        """Yield the token stream for the whole document."""
        while self._pos < self._len:
            if self._peek() == "<":
                tok = self._scan_markup()
                if tok is not None:
                    yield tok
            else:
                yield self._scan_text()

    def _scan_text(self) -> Token:
        start = self._pos
        line, column = self._position(start)
        nxt = self._text.find("<", start)
        if nxt < 0:
            nxt = self._len
        raw = self._text[start:nxt]
        self._pos = nxt
        return Token(TEXT, data=self._decode_text(raw, start), line=line,
                     column=column)

    def _decode_text(self, raw: str, base_offset: int) -> str:
        """Resolve entity references inside character data."""
        if "&" not in raw:
            return raw
        out: List[str] = []
        pos = 0
        while True:
            amp = raw.find("&", pos)
            if amp < 0:
                out.append(raw[pos:])
                break
            out.append(raw[pos:amp])
            semi = raw.find(";", amp + 1)
            if semi < 0 or semi - amp > 12:
                raise self._error("unterminated entity reference",
                                  offset=base_offset + amp)
            try:
                out.append(resolve_entity(raw[amp + 1:semi]))
            except XmlParseError as exc:
                raise self._error(exc.message, offset=base_offset + amp)
            pos = semi + 1
        return "".join(out)

    def _scan_markup(self) -> Optional[Token]:
        line, column = self._position()
        if self._startswith("<!--"):
            self._pos += 4
            data = self._scan_until("-->", "comment")
            if "--" in data:
                raise self._error("'--' not allowed inside a comment")
            return Token(COMMENT, data=data, line=line, column=column)
        if self._startswith("<![CDATA["):
            self._pos += 9
            data = self._scan_until("]]>", "CDATA section")
            return Token(CDATA, data=data, line=line, column=column)
        if self._startswith("<!DOCTYPE"):
            self._pos += 9
            data = self._scan_doctype()
            return Token(DOCTYPE, data=data, line=line, column=column)
        if self._startswith("<?"):
            self._pos += 2
            name = self._scan_name()
            data = self._scan_until("?>", "processing instruction")
            return Token(PI, name=name, data=data.strip(), line=line,
                         column=column)
        if self._startswith("</"):
            self._pos += 2
            name = self._scan_name()
            self._skip_ws()
            self._expect(">")
            return Token(END, name=name, line=line, column=column)
        return self._scan_start_tag(line, column)

    def _scan_doctype(self) -> str:
        """Skip a DOCTYPE declaration, rejecting internal subsets.

        Internal subsets can define entities, which we deliberately do not
        support (XXE hardening); SOAP messages never carry them.
        """
        start = self._pos
        depth = 0
        while self._pos < self._len:
            ch = self._text[self._pos]
            if ch == "[":
                raise self._error("DOCTYPE internal subsets are not supported")
            if ch == ">":
                data = self._text[start:self._pos]
                self._pos += 1
                return data.strip()
            self._pos += 1
            if ch == "<":
                depth += 1
        raise self._error("unterminated DOCTYPE")

    def _scan_start_tag(self, line: int, column: int) -> Token:
        self._expect("<")
        name = self._scan_name()
        attrs: Dict[str, str] = {}
        while True:
            had_ws = self._peek() in _WHITESPACE
            self._skip_ws()
            ch = self._peek()
            if ch == "":
                raise self._error(f"unterminated start tag <{name}>")
            if ch == ">":
                self._pos += 1
                return Token(START, name=name, attrs=attrs, line=line,
                             column=column)
            if self._startswith("/>"):
                self._pos += 2
                return Token(START, name=name, attrs=attrs,
                             self_closing=True, line=line, column=column)
            if not had_ws:
                raise self._error("whitespace required before attribute")
            attr_offset = self._pos
            attr = self._scan_name()
            self._skip_ws()
            self._expect("=")
            self._skip_ws()
            value = self._scan_attr_value()
            if attr in attrs:
                raise self._error(f"duplicate attribute {attr!r}",
                                  offset=attr_offset)
            attrs[attr] = value

    def _scan_attr_value(self) -> str:
        quote = self._peek()
        if quote not in ("'", '"'):
            raise self._error("attribute value must be quoted")
        self._pos += 1
        start = self._pos
        end = self._text.find(quote, start)
        if end < 0:
            raise self._error("unterminated attribute value", offset=start)
        raw = self._text[start:end]
        if "<" in raw:
            raise self._error("'<' not allowed in attribute value",
                              offset=start + raw.index("<"))
        self._pos = end + 1
        # Attribute-value normalization: newlines/tabs become spaces.
        raw = raw.replace("\t", " ").replace("\n", " ").replace("\r", " ")
        return self._decode_text(raw, start)


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` eagerly and return the token list.

    Convenience wrapper used heavily in tests; production consumers iterate
    a :class:`Tokenizer` lazily instead.
    """
    return list(Tokenizer(text).tokens())
