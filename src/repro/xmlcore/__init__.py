"""Self-contained XML layer for the SOAP-binQ reproduction.

This package stands in for Expat/libxml2 in the original system: a
hand-written tokenizer, a lightweight element tree, a streaming pull parser
(in the style of XPP), a serializer, and namespace utilities.

Public surface::

    from repro.xmlcore import Element, parse, tostring, XmlPullParser
"""

from .errors import XmlError, XmlNamespaceError, XmlParseError, XmlWriteError
from .names import (BINQ_NS, SOAP_ENC_NS, SOAP_ENV_NS, SVG_NS, WSDL_NS,
                    WSDL_SOAP_NS, XSD_NS, XSI_NS, NamespaceScope, local_name,
                    split_qname)
from .pull import PullEvent, XmlPullParser
from .tokenizer import (CDATA, COMMENT, DOCTYPE, END, PI, START, TEXT, Token,
                        Tokenizer, tokenize)
from .tree import Element, fromstring, parse
from .writer import canonical, escape_attr, escape_text, tostring

__all__ = [
    "XmlError", "XmlParseError", "XmlWriteError", "XmlNamespaceError",
    "Element", "parse", "fromstring", "tostring", "canonical",
    "escape_text", "escape_attr",
    "Token", "Tokenizer", "tokenize",
    "START", "END", "TEXT", "COMMENT", "PI", "CDATA", "DOCTYPE",
    "PullEvent", "XmlPullParser",
    "NamespaceScope", "split_qname", "local_name",
    "SOAP_ENV_NS", "SOAP_ENC_NS", "WSDL_NS", "WSDL_SOAP_NS", "XSD_NS",
    "XSI_NS", "BINQ_NS", "SVG_NS",
]
