"""Conversion handlers: XML <-> native <-> binary, per format.

Fig. 1 shows conversion handlers sitting between the application layer and
the transport.  A :class:`ConversionHandler` bundles the four conversions
for one message format, built from the same format description the wire
uses — this is what the WSDL compiler instantiates into generated stubs,
and what the interoperability/compatibility modes call just-in-time.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..pbio import CodecCompiler, Format, FormatRegistry, LITTLE
from ..soap.encoding import decode_fields, encode_fields
from ..xmlcore import Element, parse, tostring


class ConversionHandler:
    """XML/native/binary conversions for one message format."""

    def __init__(self, fmt: Format, registry: FormatRegistry,
                 compiler: Optional[CodecCompiler] = None,
                 endian: str = LITTLE) -> None:
        self.format = fmt
        self.registry = registry
        # Handlers sharing a registry share its compiled-codec cache: the
        # format is compiled once per process, not once per handler.
        self.compiler = compiler or registry.compiler
        self.endian = endian
        registry.register(fmt)

    # -- XML <-> native --------------------------------------------------
    def to_xml(self, value: Dict[str, Any],
               wrapper_tag: Optional[str] = None) -> str:
        """Render a native value as an XML fragment.

        The wrapper element defaults to the format name, which matches the
        operation-element convention of the SOAP RPC layer.  Uses the
        compiled XML plan (:mod:`repro.soap.xlate`) shared through the
        registry; output is byte-identical to :meth:`to_xml_tree`.
        """
        return self.registry.xlate.emitter(self.format)(value, wrapper_tag)

    def to_xml_tree(self, value: Dict[str, Any],
                    wrapper_tag: Optional[str] = None) -> str:
        """Tree-building reference implementation of :meth:`to_xml`.

        Kept as the differential-test oracle for the compiled plans.
        """
        wrapper = Element(wrapper_tag or self.format.name)
        encode_fields(wrapper, value, self.format, self.registry)
        return tostring(wrapper)

    def from_xml(self, xml_text: str, streaming: bool = True) -> Dict[str, Any]:
        """Parse an XML fragment into a native value.

        ``streaming=True`` scans with the compiled XML plan, falling back
        internally to the pull parser for documents outside the plan's fast
        grammar; ``False`` builds a tree first (simpler failure messages).
        """
        if streaming:
            return self.registry.xlate.parser(self.format)(xml_text)
        root = parse(xml_text)
        return decode_fields(root, self.format, self.registry)

    # -- native <-> binary -----------------------------------------------
    def to_binary(self, value: Dict[str, Any]) -> bytes:
        """Encode a native value as a PBIO payload (no wire header)."""
        return self.compiler.encoder(self.format, self.endian)(value)

    def to_binary_parts(self, value: Dict[str, Any]) -> list:
        """The un-joined buffer list, for writev-style framing layers."""
        return self.compiler.encoder_parts(self.format, self.endian)(value)

    def from_binary(self, payload: Any) -> Dict[str, Any]:
        """Decode a PBIO payload (``bytes`` or ``memoryview``) back to a
        native value."""
        value, _ = self.compiler.decoder(self.format, self.endian)(payload, 0)
        return value

    # -- end-to-end shortcuts (compatibility mode) -----------------------
    def xml_to_binary(self, xml_text: str) -> bytes:
        """The sending half of compatibility mode."""
        return self.to_binary(self.from_xml(xml_text))

    def binary_to_xml(self, payload: bytes,
                      wrapper_tag: Optional[str] = None) -> str:
        """The receiving half of compatibility mode."""
        return self.to_xml(self.from_binary(payload), wrapper_tag)
