"""RTT estimation with exponential averaging and anti-oscillation history.

The paper (§IV-C.h) measures RTT per request with the RFC 793 estimator:

    R = alpha * R + (1 - alpha) * M,   alpha = 0.875

where M is the new sample, optionally corrected by the time the server
spent preparing the response ("This can be rectified by the server setting
the timestamp back by the time taken to prepare its response data").

It also notes that naive threshold switching oscillates — a big message
inflates RTT, forcing a small message, which deflates RTT, and so on — and
that "a simple history-based mechanism of RTT estimation is used to prevent
this".  :class:`HysteresisSelector` is that mechanism: a selection only
changes after the candidate has won ``history`` consecutive samples.
"""

from __future__ import annotations

from typing import Generic, Optional, TypeVar

T = TypeVar("T")

#: The paper's smoothing constant: "Most estimators use a value of 0.875."
DEFAULT_ALPHA = 0.875


class RttEstimator:
    """Exponentially averaged round-trip-time estimate."""

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        self.alpha = alpha
        self._estimate: Optional[float] = None
        self.samples = 0

    @property
    def estimate(self) -> Optional[float]:
        """Current estimate in seconds, or None before the first sample."""
        return self._estimate

    def update(self, measured: float, server_time: float = 0.0) -> float:
        """Fold in one measured RTT (optionally minus server prep time)."""
        sample = max(0.0, measured - server_time)
        if self._estimate is None:
            self._estimate = sample
        else:
            self._estimate = (self.alpha * self._estimate
                              + (1.0 - self.alpha) * sample)
        self.samples += 1
        return self._estimate

    def reset(self) -> None:
        self._estimate = None
        self.samples = 0


class HysteresisSelector(Generic[T]):
    """Debounce selection changes: switch only after ``history`` consecutive
    observations agree on a different choice.

    ``history=1`` degenerates to immediate switching (the oscillating
    behaviour the paper warns about — the ablation benchmark compares both).
    """

    def __init__(self, history: int = 3) -> None:
        if history < 1:
            raise ValueError("history must be >= 1")
        self.history = history
        self._current: Optional[T] = None
        self._candidate: Optional[T] = None
        self._votes = 0
        self.switches = 0

    @property
    def current(self) -> Optional[T]:
        return self._current

    def observe(self, choice: T) -> T:
        """Feed the instantaneous choice; returns the debounced one."""
        if self._current is None:
            self._current = choice
            return choice
        if choice == self._current:
            self._candidate = None
            self._votes = 0
            return self._current
        if choice == self._candidate:
            self._votes += 1
        else:
            self._candidate = choice
            self._votes = 1
        if self._votes >= self.history:
            self._current = choice
            self._candidate = None
            self._votes = 0
            self.switches += 1
        return self._current

    def reset(self) -> None:
        self._current = None
        self._candidate = None
        self._votes = 0
        self.switches = 0
