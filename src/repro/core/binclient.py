"""The SOAP-bin client: binary invocations in all three modes, with
client-side RTT monitoring and optional request-side quality management.

One client object supports the paper's three operating modes:

* :meth:`call` — **high performance**: native in, native out; parameters
  cross the wire as PBIO and XML never exists.
* :meth:`call_from_xml` — **interoperability**: the caller's data is an XML
  fragment (say, out of a database); it is converted to native just-in-time,
  sent as binary, and the *native* response is returned.
* :meth:`call_xml` — **compatibility**: XML in, XML out; binary is used
  only on the wire, with conversions at both ends.

Every call measures RTT with the paper's timestamp scheme — the client
sends its clock reading, the server echoes it and reports its preparation
time, and the client folds ``elapsed - server_time`` into the exponential
average — and reports the current estimate to the server on the *next*
request (§IV-C.h).
"""

from __future__ import annotations

import uuid
from typing import Any, Dict, Optional, Tuple

import time

from ..netsim.clock import Clock, WallClock
from ..pbio import Format, FormatRegistry, LITTLE, PbioSession
from ..transport import Channel
from .conversion import ConversionHandler
from .errors import BinProtocolError
from .manager import QualityManager
from .modes import (HEADER_CLIENT_ID, HEADER_OPERATION, HEADER_RTT,
                    HEADER_SERVER_TIME, HEADER_TIMESTAMP, PBIO_CONTENT_TYPE)
from .monitor import ExchangeObservation, MonitorHub
from .quality_handlers import trivial_handler
from .rtt import RttEstimator


class SoapBinClient:
    """Client for :class:`~repro.core.binservice.SoapBinService`."""

    def __init__(self, channel: Channel, registry: FormatRegistry,
                 clock: Optional[Clock] = None,
                 quality: Optional[QualityManager] = None,
                 endian: str = LITTLE,
                 client_id: Optional[str] = None,
                 monitor_hub: Optional[MonitorHub] = None) -> None:
        self.channel = channel
        self.registry = registry
        self.clock = clock or WallClock()
        self.quality = quality
        self.compiler = registry.compiler
        self.session = PbioSession(registry, self.compiler, endian=endian)
        self.client_id = client_id or uuid.uuid4().hex
        #: used when no quality manager is installed, so RTT reporting to
        #: the server works in plain SOAP-bin deployments too
        self.estimator = RttEstimator()
        self.last_rtt: Optional[float] = None
        #: optional dproc-style monitoring: every exchange is reported here
        self.monitor_hub = monitor_hub
        #: reliability metadata of the most recent exchange (attempts,
        #: elapsed, deadline headroom) when the channel runs under a
        #: RetryPolicy; None otherwise
        self.last_call = None

    # ------------------------------------------------------------------
    # the three modes
    # ------------------------------------------------------------------
    def call(self, operation: str, params: Dict[str, Any],
             input_format: Format,
             output_format: Format) -> Dict[str, Any]:
        """High-performance mode: native request, native response."""
        wire_format, wire_value = self._apply_request_quality(params,
                                                              input_format)
        reply_format, reply_value = self._exchange(operation, wire_format,
                                                   wire_value)
        return self._restore_response(reply_value, reply_format,
                                      output_format)

    def call_from_xml(self, operation: str, request_xml: str,
                      input_format: Format,
                      output_format: Format) -> Dict[str, Any]:
        """Interoperability mode: XML request data, converted one-sided,
        just-in-time; native response."""
        handler = ConversionHandler(input_format, self.registry,
                                    self.compiler)
        params = handler.from_xml(request_xml)
        return self.call(operation, params, input_format, output_format)

    def call_xml(self, operation: str, request_xml: str,
                 input_format: Format, output_format: Format) -> str:
        """Compatibility mode: XML at both ends, binary on the wire."""
        native = self.call_from_xml(operation, request_xml, input_format,
                                    output_format)
        out_handler = ConversionHandler(output_format, self.registry,
                                        self.compiler)
        return out_handler.to_xml(native, f"{operation}Response")

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _exchange(self, operation: str, wire_format: Format,
                  wire_value: Dict[str, Any]) -> Tuple[Format, Dict[str, Any]]:
        marshal_started = time.perf_counter()
        body = self.session.pack_bytes(wire_format, wire_value)
        marshal_s = time.perf_counter() - marshal_started
        headers = {
            HEADER_CLIENT_ID: self.client_id,
            HEADER_OPERATION: operation,
            HEADER_TIMESTAMP: f"{self.clock.now():.9f}",
        }
        estimate = self._current_estimate()
        if estimate is not None:
            headers[HEADER_RTT] = f"{estimate:.9f}"
        start = self.clock.now()
        try:
            reply = self.channel.call(body, PBIO_CONTENT_TYPE, headers)
        finally:
            self.last_call = getattr(self.channel, "last_call", None)
        elapsed = self.clock.now() - start
        if not reply.ok:
            raise BinProtocolError(
                f"operation {operation!r} failed with status {reply.status}:"
                f" {reply.body[:200].decode('utf-8', 'replace')}")
        server_time = self._observe_rtt(elapsed, reply.headers)
        unmarshal_started = time.perf_counter()
        result = self.session.unpack_stream(reply.body)
        unmarshal_s = time.perf_counter() - unmarshal_started
        if self.monitor_hub is not None:
            self.monitor_hub.observe(ExchangeObservation(
                elapsed_s=elapsed, request_bytes=len(body),
                response_bytes=len(reply.body), server_time_s=server_time,
                marshal_s=marshal_s, unmarshal_s=unmarshal_s))
        return result

    def _apply_request_quality(self, params: Dict[str, Any],
                               input_format: Format):
        if self.quality is None:
            return input_format, params
        return self.quality.outgoing(params, input_format)

    def _restore_response(self, reply_value: Dict[str, Any],
                          reply_format: Format,
                          output_format: Format) -> Dict[str, Any]:
        if reply_format.fingerprint == output_format.fingerprint:
            return reply_value
        if self.quality is not None:
            return self.quality.restore(reply_value, reply_format,
                                        output_format)
        from .attributes import AttributeStore
        return trivial_handler(reply_value, reply_format, output_format,
                               self.registry, AttributeStore())

    def _observe_rtt(self, elapsed: float,
                     headers: Dict[str, str]) -> float:
        """Fold the measured RTT into the estimators; returns server time."""
        server_time = 0.0
        raw = _header(headers, HEADER_SERVER_TIME)
        if raw is not None:
            try:
                server_time = float(raw)
            except ValueError:
                server_time = 0.0
        self.last_rtt = max(0.0, elapsed - server_time)
        if self.quality is not None:
            self.quality.observe_rtt(elapsed, server_time)
        else:
            self.estimator.update(elapsed, server_time)
        return server_time

    def _current_estimate(self) -> Optional[float]:
        if self.quality is not None:
            return self.quality.estimator.estimate
        return self.estimator.estimate

    def update_attribute(self, name: str, value: float) -> None:
        """Forward to the quality manager's attribute store (§III-B.d)."""
        if self.quality is None:
            raise BinProtocolError(
                "update_attribute requires a quality manager")
        self.quality.update_attribute(name, value)


def _header(headers: Dict[str, str], name: str) -> Optional[str]:
    lower = name.lower()
    for key, value in headers.items():
        if key.lower() == lower:
            return value
    return None
