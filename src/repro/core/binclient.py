"""The SOAP-bin client: binary invocations in all three modes, with
client-side RTT monitoring and optional request-side quality management.

One client object supports the paper's three operating modes:

* :meth:`call` — **high performance**: native in, native out; parameters
  cross the wire as PBIO and XML never exists.
* :meth:`call_from_xml` — **interoperability**: the caller's data is an XML
  fragment (say, out of a database); it is converted to native just-in-time,
  sent as binary, and the *native* response is returned.
* :meth:`call_xml` — **compatibility**: XML in, XML out; binary is used
  only on the wire, with conversions at both ends.

Every call measures RTT with the paper's timestamp scheme — the client
sends its clock reading, the server echoes it and reports its preparation
time, and the client folds ``elapsed - server_time`` into the exponential
average — and reports the current estimate to the server on the *next*
request (§IV-C.h).
"""

from __future__ import annotations

import uuid
from typing import Any, Dict, List, Optional, Tuple

import time

from ..netsim.clock import Clock, WallClock
from ..pbio import Format, FormatRegistry, LITTLE, PbioSession
from ..transport import Channel
from .conversion import ConversionHandler
from .errors import BinProtocolError
from .manager import QualityManager
from .modes import (HEADER_CLIENT_ID, HEADER_OPERATION, HEADER_RTT,
                    HEADER_SERVER_TIME, HEADER_TIMESTAMP, PBIO_CONTENT_TYPE)
from .monitor import ExchangeObservation, MonitorHub
from .quality_handlers import trivial_handler
from .rtt import RttEstimator


class SoapBinClient:
    """Client for :class:`~repro.core.binservice.SoapBinService`."""

    def __init__(self, channel: Channel, registry: FormatRegistry,
                 clock: Optional[Clock] = None,
                 quality: Optional[QualityManager] = None,
                 endian: str = LITTLE,
                 client_id: Optional[str] = None,
                 monitor_hub: Optional[MonitorHub] = None,
                 wire: str = "auto") -> None:
        self.channel = channel
        self.registry = registry
        self.clock = clock or WallClock()
        self.quality = quality
        self.compiler = registry.compiler
        # The server owns the service's formats: when it live-redefines one
        # (same name, new layout) and re-announces, this session adopts the
        # announcement as authoritative.  Server-side sessions keep the
        # default (reject conflicting announcements per-connection).
        self.session = PbioSession(registry, self.compiler, endian=endian,
                                   adopt_redefines=True, wire=wire)
        self.client_id = client_id or uuid.uuid4().hex
        #: used when no quality manager is installed, so RTT reporting to
        #: the server works in plain SOAP-bin deployments too
        self.estimator = RttEstimator()
        self.last_rtt: Optional[float] = None
        #: optional dproc-style monitoring: every exchange is reported here
        self.monitor_hub = monitor_hub
        #: reliability metadata of the most recent exchange (attempts,
        #: elapsed, deadline headroom) when the channel runs under a
        #: RetryPolicy; None otherwise
        self.last_call = None
        #: per-sub-call metadata of the most recent :meth:`call_many` batch
        self.last_calls: List[Any] = []

    # ------------------------------------------------------------------
    # the three modes
    # ------------------------------------------------------------------
    def call(self, operation: str, params: Dict[str, Any],
             input_format: Format,
             output_format: Format) -> Dict[str, Any]:
        """High-performance mode: native request, native response."""
        wire_format, wire_value = self._apply_request_quality(params,
                                                              input_format)
        reply_format, reply_value = self._exchange(operation, wire_format,
                                                   wire_value)
        return self._restore_response(reply_value, reply_format,
                                      output_format)

    def call_from_xml(self, operation: str, request_xml: str,
                      input_format: Format,
                      output_format: Format) -> Dict[str, Any]:
        """Interoperability mode: XML request data, converted one-sided,
        just-in-time; native response."""
        handler = ConversionHandler(input_format, self.registry,
                                    self.compiler)
        params = handler.from_xml(request_xml)
        return self.call(operation, params, input_format, output_format)

    def call_xml(self, operation: str, request_xml: str,
                 input_format: Format, output_format: Format) -> str:
        """Compatibility mode: XML at both ends, binary on the wire."""
        native = self.call_from_xml(operation, request_xml, input_format,
                                    output_format)
        out_handler = ConversionHandler(output_format, self.registry,
                                        self.compiler)
        return out_handler.to_xml(native, f"{operation}Response")

    # ------------------------------------------------------------------
    # concurrent batch mode
    # ------------------------------------------------------------------
    def call_many(self, operation: str, params_list: List[Dict[str, Any]],
                  input_format: Format, output_format: Format,
                  return_exceptions: bool = False) -> List[Any]:
        """High-performance mode for a whole batch: many calls in flight.

        When the channel has a ``call_many`` batch surface (a
        :class:`~repro.transport.sockets.PipelinedHttpChannel`, or a
        :class:`~repro.reliability.channel.ReliableChannel`), the batch is
        dispatched through it; otherwise the calls run sequentially.
        Results come back in input order.  Per-sub-call reliability
        metadata lands in :attr:`last_calls` (a list of ``CallMeta`` or
        ``None``, parallel to the results).

        PBIO session ordering is preserved by **priming**: any sub-call
        whose packed body carries a format announcement (the first message
        of a new wire format on this session) is exchanged serially first,
        so the server has seen every announcement — and the client has
        seen the server's reply-format announcement — before requests
        start racing each other on the wire.

        Partial failures: by default the first failed sub-call's error is
        raised after the whole batch settles; with
        ``return_exceptions=True`` the result list carries the exception
        object in each failed slot instead.

        RTT accounting folds **one** sample per batch into the estimator —
        the wall-clock time divided by the number of pipelined sub-calls —
        since that is the marginal cost of a call in this mode; per-call
        timestamps would count the same wait ``n`` times.
        """
        total = len(params_list)
        if total == 0:
            self.last_calls = []
            return []
        call_many_fn = getattr(self.channel, "call_many", None)
        if call_many_fn is None:
            return self._call_many_sequential(
                operation, params_list, input_format, output_format,
                return_exceptions)

        marshal_started = time.perf_counter()
        bodies: List[bytes] = []
        primers: List[int] = []
        for params in params_list:
            wire_format, wire_value = self._apply_request_quality(
                params, input_format)
            before = self.session.stats.announcements_sent
            bodies.append(self.session.pack_bytes(wire_format, wire_value))
            if self.session.stats.announcements_sent != before:
                primers.append(len(bodies) - 1)
        marshal_s = time.perf_counter() - marshal_started

        results: List[Any] = [None] * total
        metas: List[Any] = [None] * total
        errors: List[Tuple[int, Exception]] = []

        # Announcement-carrying bodies go out serially first (and their
        # replies are unpacked immediately): both sessions are in sync
        # before anything is pipelined.
        for index in primers:
            try:
                reply_format, reply_value = self._exchange_body(
                    operation, bodies[index])
            except Exception as exc:  # noqa: BLE001 - surfaced per slot
                errors.append((index, exc))
                metas[index] = self.last_call
                continue
            metas[index] = self.last_call
            results[index] = self._restore_response(
                reply_value, reply_format, output_format)

        batch = [i for i in range(total) if i not in set(primers)]
        if batch:
            estimate = self._current_estimate()
            headers_list = []
            for _ in batch:
                headers = {
                    HEADER_CLIENT_ID: self.client_id,
                    HEADER_OPERATION: operation,
                    HEADER_TIMESTAMP: f"{self.clock.now():.9f}",
                }
                if estimate is not None:
                    headers[HEADER_RTT] = f"{estimate:.9f}"
                headers_list.append(headers)
            start = self.clock.now()
            batch_results = call_many_fn(
                [bodies[i] for i in batch], PBIO_CONTENT_TYPE, headers_list)
            elapsed = self.clock.now() - start
            per_call_s = elapsed / len(batch)
            sample_headers: Dict[str, str] = {}
            unmarshal_started = time.perf_counter()
            # Replies are unpacked sequentially in index order: with an
            # ordered transport that is exactly the order the server's
            # session emitted them, so reply-format announcements are
            # learned before the messages that rely on them.
            for index, outcome in zip(batch, batch_results):
                metas[index] = outcome.meta
                if not outcome.ok:
                    errors.append((index, outcome.error))
                    continue
                reply = outcome.reply
                if not reply.ok:
                    errors.append((index, BinProtocolError(
                        f"operation {operation!r} failed with status "
                        f"{reply.status}: "
                        f"{reply.body[:200].decode('utf-8', 'replace')}")))
                    continue
                try:
                    reply_format, reply_value = self.session.unpack_stream(
                        reply.body)
                    results[index] = self._restore_response(
                        reply_value, reply_format, output_format)
                except Exception as exc:  # noqa: BLE001 - per-slot result
                    errors.append((index, exc))
                    continue
                sample_headers = reply.headers
            unmarshal_s = time.perf_counter() - unmarshal_started
            server_time = self._observe_rtt(per_call_s, sample_headers)
            if self.monitor_hub is not None:
                self.monitor_hub.observe(ExchangeObservation(
                    elapsed_s=elapsed,
                    request_bytes=sum(len(bodies[i]) for i in batch),
                    response_bytes=sum(
                        len(r.reply.body) for r in batch_results if r.ok),
                    server_time_s=server_time,
                    marshal_s=marshal_s, unmarshal_s=unmarshal_s))
        self.last_calls = metas
        if errors:
            errors.sort(key=lambda pair: pair[0])
            if not return_exceptions:
                raise errors[0][1]
            for index, exc in errors:
                results[index] = exc
        return results

    def _call_many_sequential(self, operation: str,
                              params_list: List[Dict[str, Any]],
                              input_format: Format, output_format: Format,
                              return_exceptions: bool) -> List[Any]:
        results: List[Any] = []
        metas: List[Any] = []
        first_error: Optional[Exception] = None
        for params in params_list:
            try:
                results.append(self.call(operation, params, input_format,
                                         output_format))
            except Exception as exc:  # noqa: BLE001 - surfaced per slot
                if first_error is None:
                    first_error = exc
                results.append(exc)
            metas.append(self.last_call)
        self.last_calls = metas
        if first_error is not None and not return_exceptions:
            raise first_error
        return results

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _exchange(self, operation: str, wire_format: Format,
                  wire_value: Dict[str, Any]) -> Tuple[Format, Dict[str, Any]]:
        marshal_started = time.perf_counter()
        body = self.session.pack_bytes(wire_format, wire_value)
        marshal_s = time.perf_counter() - marshal_started
        return self._exchange_body(operation, body, marshal_s)

    def _exchange_body(self, operation: str, body: bytes,
                       marshal_s: float = 0.0
                       ) -> Tuple[Format, Dict[str, Any]]:
        headers = {
            HEADER_CLIENT_ID: self.client_id,
            HEADER_OPERATION: operation,
            HEADER_TIMESTAMP: f"{self.clock.now():.9f}",
        }
        estimate = self._current_estimate()
        if estimate is not None:
            headers[HEADER_RTT] = f"{estimate:.9f}"
        start = self.clock.now()
        try:
            reply = self.channel.call(body, PBIO_CONTENT_TYPE, headers)
        finally:
            self.last_call = getattr(self.channel, "last_call", None)
        elapsed = self.clock.now() - start
        if not reply.ok:
            raise BinProtocolError(
                f"operation {operation!r} failed with status {reply.status}:"
                f" {reply.body[:200].decode('utf-8', 'replace')}")
        server_time = self._observe_rtt(elapsed, reply.headers)
        unmarshal_started = time.perf_counter()
        result = self.session.unpack_stream(reply.body)
        unmarshal_s = time.perf_counter() - unmarshal_started
        if self.monitor_hub is not None:
            self.monitor_hub.observe(ExchangeObservation(
                elapsed_s=elapsed, request_bytes=len(body),
                response_bytes=len(reply.body), server_time_s=server_time,
                marshal_s=marshal_s, unmarshal_s=unmarshal_s))
        return result

    def _apply_request_quality(self, params: Dict[str, Any],
                               input_format: Format):
        if self.quality is None:
            return input_format, params
        return self.quality.outgoing(params, input_format)

    def _restore_response(self, reply_value: Dict[str, Any],
                          reply_format: Format,
                          output_format: Format) -> Dict[str, Any]:
        if reply_format.fingerprint == output_format.fingerprint:
            return reply_value
        if self.quality is not None:
            return self.quality.restore(reply_value, reply_format,
                                        output_format)
        from .attributes import AttributeStore
        return trivial_handler(reply_value, reply_format, output_format,
                               self.registry, AttributeStore())

    def _observe_rtt(self, elapsed: float,
                     headers: Dict[str, str]) -> float:
        """Fold the measured RTT into the estimators; returns server time."""
        server_time = 0.0
        raw = _header(headers, HEADER_SERVER_TIME)
        if raw is not None:
            try:
                server_time = float(raw)
            except ValueError:
                server_time = 0.0
        self.last_rtt = max(0.0, elapsed - server_time)
        if self.quality is not None:
            self.quality.observe_rtt(elapsed, server_time)
        else:
            self.estimator.update(elapsed, server_time)
        return server_time

    def _current_estimate(self) -> Optional[float]:
        if self.quality is not None:
            return self.quality.estimator.estimate
        return self.estimator.estimate

    def update_attribute(self, name: str, value: float) -> None:
        """Forward to the quality manager's attribute store (§III-B.d)."""
        if self.quality is None:
            raise BinProtocolError(
                "update_attribute requires a quality manager")
        self.quality.update_attribute(name, value)


def _header(headers: Dict[str, str], name: str) -> Optional[str]:
    lower = name.lower()
    for key, value in headers.items():
        if key.lower() == lower:
            return value
    return None
