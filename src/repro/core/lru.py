"""A reusable bounded LRU+TTL cache (the session-table machinery, extracted).

:class:`SoapBinService` grew the original copy of this bookkeeping for its
per-client PBIO session table: least-recently-used ordering, an optional
idle TTL (a hit refreshes the clock; expiry is swept on the insert path so
steady-state hits stay O(1)), and a hard capacity bound.  The response
cache tier (:mod:`repro.core.qcache`) needs exactly the same machinery
plus a byte budget, so it lives here once:

* ``capacity`` — at most this many entries; beyond it the coldest entry
  is evicted (``evictions``);
* ``ttl_s`` — entries idle longer than this are dropped on the next
  insert (``expirations``); a :meth:`get` hit refreshes idleness;
* ``max_bytes`` — optional weight budget: every entry carries a weight
  (payload bytes, say) and the coldest entries are evicted until the
  total fits.  A single entry heavier than the whole budget is never
  admitted;
* :meth:`invalidate` — explicit removal, one key or everything
  (``invalidations``) — the same ``invalidate()`` contract the codec and
  XML-plan caches honor on :meth:`~repro.pbio.FormatRegistry.redefine`.

All methods are thread-safe; ``time_fn`` is injectable so TTL behaviour
is testable under a :class:`~repro.netsim.clock.VirtualClock`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

__all__ = ["LruTtlCache"]


class _Entry:
    __slots__ = ("value", "last_used", "weight")

    def __init__(self, value: Any, last_used: float, weight: int) -> None:
        self.value = value
        self.last_used = last_used
        self.weight = weight


class LruTtlCache:
    """Thread-safe LRU cache with optional idle TTL and weight budget."""

    def __init__(self, capacity: Optional[int] = None,
                 ttl_s: Optional[float] = None,
                 max_bytes: Optional[int] = None,
                 time_fn: Optional[Callable[[], float]] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self.max_bytes = max_bytes
        self._time_fn = time_fn or time.monotonic
        self._entries: "OrderedDict[Any, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0      # capacity/byte-budget pressure
        self.expirations = 0    # idle-TTL sweeps
        self.invalidations = 0  # explicit invalidate() calls

    # ------------------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        """Return the cached value (refreshing its idleness) or ``default``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return default
            entry.last_used = self._time_fn()
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.value

    def peek(self, key: Any, default: Any = None) -> Any:
        """Like :meth:`get` but without touching LRU order or counters."""
        with self._lock:
            entry = self._entries.get(key)
            return default if entry is None else entry.value

    def values(self) -> list:
        """Snapshot of the live values, without touching LRU order or
        counters — for stats aggregation over cached sessions."""
        with self._lock:
            return [entry.value for entry in self._entries.values()]

    def put(self, key: Any, value: Any, weight: int = 0) -> bool:
        """Insert or replace; returns False if ``weight`` alone exceeds the
        byte budget (the entry is not admitted, and a stale entry under
        the same key is dropped rather than left behind)."""
        with self._lock:
            now = self._time_fn()
            if self.max_bytes is not None and weight > self.max_bytes:
                self._drop(key)
                return False
            self._expire_idle(now)
            old = self._entries.get(key)
            if old is not None:
                self.total_bytes -= old.weight
            self._entries[key] = _Entry(value, now, weight)
            self._entries.move_to_end(key)
            self.total_bytes += weight
            self._evict_over_budget()
            return True

    def get_or_create(self, key: Any, factory: Callable[[], Any]) -> Any:
        """The session-table idiom: touch-and-return on a hit; on a miss,
        sweep idle entries, create, insert, then enforce the capacity."""
        with self._lock:
            now = self._time_fn()
            entry = self._entries.get(key)
            if entry is not None:
                entry.last_used = now
                self._entries.move_to_end(key)
                self.hits += 1
                return entry.value
            self.misses += 1
            self._expire_idle(now)
            value = factory()
            self._entries[key] = _Entry(value, now, 0)
            self._evict_over_budget()
            return value

    # ------------------------------------------------------------------
    def invalidate(self, key: Any = None) -> int:
        """Remove one entry (or, with no key, every entry).  Returns the
        number removed; counted under ``invalidations``."""
        with self._lock:
            if key is None:
                dropped = len(self._entries)
                self._entries.clear()
                self.total_bytes = 0
            else:
                dropped = 1 if self._drop(key) else 0
            self.invalidations += dropped
            return dropped

    def expire_idle(self, now: Optional[float] = None) -> int:
        """Sweep entries idle past the TTL; returns the number dropped."""
        with self._lock:
            before = self.expirations
            self._expire_idle(self._time_fn() if now is None else now)
            return self.expirations - before

    # -- internals (lock held) -----------------------------------------
    def _drop(self, key: Any) -> bool:
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self.total_bytes -= entry.weight
        return True

    def _expire_idle(self, now: float) -> None:
        if self.ttl_s is None:
            return
        horizon = now - self.ttl_s
        while self._entries:
            _key, entry = next(iter(self._entries.items()))
            if entry.last_used > horizon:
                return
            self._entries.popitem(last=False)
            self.total_bytes -= entry.weight
            self.expirations += 1

    def _evict_over_budget(self) -> None:
        while (self.capacity is not None
               and len(self._entries) > self.capacity):
            _key, entry = self._entries.popitem(last=False)
            self.total_bytes -= entry.weight
            self.evictions += 1
        if self.max_bytes is None:
            return
        while self.total_bytes > self.max_bytes and len(self._entries) > 1:
            _key, entry = self._entries.popitem(last=False)
            self.total_bytes -= entry.weight
            self.evictions += 1

    # ------------------------------------------------------------------
    @property
    def evicted_total(self) -> int:
        """Capacity evictions plus TTL expirations (the historical
        ``sessions_evicted`` counter of the session table)."""
        return self.evictions + self.expirations

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.total_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "invalidations": self.invalidations,
            }
