"""Quality attributes and the ``update_attribute()`` API.

Quality files relate *quality attributes* to message types (§III-B.c).  RTT
is the attribute the paper's experiments monitor, but "a monitored attribute
can use any value that is suitable for triggering changes in data quality"
— user-specified resolution, CPU load, marshalling cost, memory pressure.

An :class:`AttributeStore` holds the current value of every attribute and
lets applications change them at runtime via :meth:`update_attribute` — the
paper's API call of the same name (§III-B.d).  Listeners make the store the
integration point between monitoring (the RTT estimator writes here) and
policy (the quality manager reads here).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

#: Attribute names used by the built-in policies.
RTT = "rtt"
RESOLUTION = "resolution"
CPU_LOAD = "cpu_load"
MARSHALLING_COST = "marshalling_cost"
MEMORY = "memory"
#: Number of live fleet workers contributing to the server-load signal
#: (published by :class:`~repro.serving.coupling.LoadQualityCoupling`
#: when it observes a fleet view; 1 for a standalone server).
FLEET_WORKERS = "fleet_workers"

Listener = Callable[[str, float], None]


class AttributeStore:
    """Thread-safe map of quality-attribute name to current value."""

    def __init__(self, initial: Optional[Dict[str, float]] = None) -> None:
        self._lock = threading.Lock()
        self._values: Dict[str, float] = dict(initial or {})
        self._listeners: List[Listener] = []

    def update_attribute(self, name: str, value: float) -> None:
        """Set an attribute's current value (the paper's API call).

        "it does permit applications to dynamically update the values of
        quality attributes.  This is done via the API call
        update_attribute()." (§III-B.d)
        """
        value = float(value)
        with self._lock:
            self._values[name] = value
            listeners = list(self._listeners)
        for listener in listeners:
            listener(name, value)

    def get(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._values.get(name, default)

    def has(self, name: str) -> bool:
        with self._lock:
            return name in self._values

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._values)

    def subscribe(self, listener: Listener) -> None:
        """Register a callback invoked on every update."""
        with self._lock:
            self._listeners.append(listener)

    def unsubscribe(self, listener: Listener) -> None:
        with self._lock:
            self._listeners.remove(listener)
