"""Content-addressed response cache for quality-managed endpoints.

ROADMAP open item 3: at fleet scale, thousands of clients pinned at the
same quality interval each pay the full degrade+encode cost for
byte-identical output.  :class:`QualityCache` memoizes the quality
pipeline under a content-addressed key combining

* the application format's SHA-1 :attr:`~repro.pbio.Format.fingerprint`,
* the chosen message type's fingerprint (the quantized quality interval —
  a :meth:`~repro.pbio.FormatRegistry.redefine` changes it, so stale
  entries become unreachable even before the explicit flush),
* a canonical digest of the response value (so the key vouches for the
  actual payload content, never just the request), and
* a representation variant (``pbio`` vs per-operation XML: the same value
  has different bytes in each).

The key *is* the strong ``ETag`` (quoted SHA-1 hex): a client presenting
it back via ``If-None-Match`` can be answered ``304 Not Modified``
without consulting the cache at all — content addressing makes the
validator self-certifying.

Invalidation contract (see ``docs/caching.md``):

* :meth:`FormatRegistry.redefine` flushes the cache — the cache registers
  itself via ``_attach_compiler`` exactly like the codec and XML-plan
  caches;
* ``update_attribute()`` on any attribute other than the policy's
  monitored one (and the continuously-fed RTT telemetry) flushes, since
  handlers may read arbitrary attributes; the monitored attribute needs
  no flush because its effect is the chosen message type, which is part
  of the key;
* entries are only ever written from *successful* handler runs — a
  sandboxed handler that raises, stalls or is quarantined falls back
  without caching, so quarantine can never leave a poisoned entry.

Two layers of reuse hang off one entry: the transformed value (skips the
quality handler) and, when attached, the encoded PBIO data message (skips
the codec too — steady-state data bytes depend only on the registry-wide
format id and the payload, not on which session sends them).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Dict, Optional

from ..pbio import Format, FormatRegistry
from .lru import LruTtlCache

try:  # numpy is optional for the core; the digest just walks slower without
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

__all__ = ["QualityCache", "canonical_digest", "estimated_weight"]

#: Lists at least this long try the vectorized (dtype+shape+bytes) path.
_ARRAY_FAST_PATH_LEN = 64

_F64 = struct.Struct("<d")


def _update_digest(h, value: Any) -> None:
    """Fold ``value`` into hasher ``h`` with type tags so structurally
    different values can never collide by concatenation."""
    if isinstance(value, dict):
        h.update(b"D%d;" % len(value))
        for key in sorted(value):
            h.update(str(key).encode("utf-8", "surrogatepass"))
            h.update(b"=")
            _update_digest(h, value[key])
        return
    if _np is not None:
        if isinstance(value, _np.ndarray):
            arr = _np.ascontiguousarray(value)
            h.update(b"A" + arr.dtype.str.encode("ascii")
                     + str(arr.shape).encode("ascii") + b";")
            h.update(arr.tobytes())
            return
        if isinstance(value, _np.generic):
            _update_digest(h, value.item())
            return
    if isinstance(value, (list, tuple)):
        if _np is not None and len(value) >= _ARRAY_FAST_PATH_LEN:
            try:
                arr = _np.asarray(value)
            except Exception:  # noqa: BLE001 - ragged input: walk instead
                arr = None
            if arr is not None and arr.dtype != object:
                h.update(b"A" + arr.dtype.str.encode("ascii")
                         + str(arr.shape).encode("ascii") + b";")
                h.update(arr.tobytes())
                return
        h.update(b"L%d;" % len(value))
        for item in value:
            _update_digest(h, item)
        return
    if isinstance(value, bool):  # before int: bool subclasses int
        h.update(b"b1" if value else b"b0")
    elif isinstance(value, float):
        h.update(b"F")
        h.update(_F64.pack(value))
    elif isinstance(value, int):
        h.update(b"I%d;" % value)
    elif isinstance(value, str):
        h.update(b"S")
        h.update(value.encode("utf-8", "surrogatepass"))
    elif isinstance(value, (bytes, bytearray, memoryview)):
        h.update(b"B")
        h.update(value)
    elif value is None:
        h.update(b"N")
    else:
        h.update(b"O")
        h.update(repr(value).encode("utf-8", "surrogatepass"))


def canonical_digest(value: Any) -> str:
    """SHA-1 hex digest of a message value, canonical across dict order."""
    h = hashlib.sha1()
    _update_digest(h, value)
    return h.hexdigest()


#: flat per-container cost approximating CPython object headers — cached
#: values are array-dominated, so precision here is unimportant; what
#: matters is that large buffers are charged their real size.
_CONTAINER_OVERHEAD = 64
_SCALAR_WEIGHT = 32


def estimated_weight(value: Any) -> int:
    """Approximate resident bytes of a cached message value.

    NumPy arrays and byte strings (which dominate every evaluation
    workload) are charged their exact buffer size; containers and scalars
    get flat per-object estimates.  This is what :meth:`QualityCache.store`
    charges against ``max_payload_bytes``, so the budget bounds the whole
    entry — cached ``wire_value`` dicts included — not just the encoded
    payloads later attached."""
    if _np is not None:
        if isinstance(value, _np.ndarray):
            return int(value.nbytes) + _CONTAINER_OVERHEAD
        if isinstance(value, _np.generic):
            return _SCALAR_WEIGHT
    if isinstance(value, dict):
        return (_CONTAINER_OVERHEAD
                + sum(len(str(k)) + _SCALAR_WEIGHT + estimated_weight(v)
                      for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return (_CONTAINER_OVERHEAD + 8 * len(value)
                + sum(estimated_weight(item) for item in value))
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value) + _SCALAR_WEIGHT
    if isinstance(value, str):
        return len(value) + _SCALAR_WEIGHT
    return _SCALAR_WEIGHT


class _CacheEntry:
    """One memoized quality transformation (and optionally its encoding)."""

    __slots__ = ("wire_format", "wire_value", "payload", "value_weight")

    def __init__(self, wire_format: Format, wire_value: Dict[str, Any],
                 payload: Optional[bytes] = None,
                 value_weight: int = 0) -> None:
        self.wire_format = wire_format
        self.wire_value = wire_value
        self.payload = payload
        self.value_weight = value_weight


class QualityCache:
    """Bounded content-addressed cache of quality-pipeline outputs.

    ``max_payload_bytes`` is the per-worker RSS budget: every entry is
    charged its :func:`estimated_weight` (array/byte buffers at their
    real size) plus the attached encoded payload, and the coldest
    entries are evicted until the total fits; ``capacity`` bounds the
    entry count; ``ttl_s`` ages out entries for values no client asks
    for any more.
    """

    def __init__(self, registry: FormatRegistry, capacity: int = 1024,
                 ttl_s: Optional[float] = None,
                 max_payload_bytes: int = 64 << 20,
                 time_fn=None) -> None:
        self.registry = registry
        self.max_payload_bytes = max_payload_bytes
        self._cache = LruTtlCache(capacity=capacity, ttl_s=ttl_s,
                                  max_bytes=max_payload_bytes,
                                  time_fn=time_fn)
        #: whole-cache flushes (redefine / attribute updates)
        self.flushes = 0
        # redefine() calls invalidate() on everything attached here — the
        # registry holds us weakly; the owning QualityManager keeps us
        # alive.
        registry._attach_compiler(self)

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    def key(self, app_format: Format, wire_format: Format,
            value: Any, variant: str = "pbio") -> str:
        """The content-addressed cache key, quoted as a strong ETag."""
        h = hashlib.sha1()
        h.update(app_format.fingerprint.encode("ascii"))
        h.update(b":")
        h.update(wire_format.fingerprint.encode("ascii"))
        h.update(b":%d:" % self.registry.codec_epoch)
        h.update(variant.encode("utf-8", "surrogatepass"))
        h.update(b":")
        _update_digest(h, value)
        return f'"{h.hexdigest()}"'

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[_CacheEntry]:
        """Counted, LRU-touching lookup."""
        return self._cache.get(key)

    def payload(self, key: str) -> Optional[bytes]:
        """The attached encoded payload, if any — uncounted peek (the
        value lookup on the same request already scored the hit)."""
        entry = self._cache.peek(key)
        return entry.payload if entry is not None else None

    def store(self, key: str, wire_format: Format,
              wire_value: Dict[str, Any]) -> None:
        """Memoize a handler output, charged at its estimated resident
        size so ``max_payload_bytes`` bounds the cache's RSS even before
        any encoded payload is attached.  A value alone heavier than the
        whole budget is never admitted."""
        weight = estimated_weight(wire_value)
        self._cache.put(key, _CacheEntry(wire_format, wire_value,
                                         value_weight=weight),
                        weight=weight)

    def attach_payload(self, key: str, payload: bytes) -> None:
        """Attach the encoded data-message bytes to an existing entry so
        later hits skip the codec entirely.  Payloads that would push the
        entry (value weight + encoding) past the byte budget — and
        payloads for entries already evicted — are dropped silently."""
        entry = self._cache.peek(key)
        if entry is None:
            return
        weight = entry.value_weight + len(payload)
        if weight > self.max_payload_bytes:
            return
        entry = _CacheEntry(entry.wire_format, entry.wire_value,
                            bytes(payload), entry.value_weight)
        self._cache.put(key, entry, weight=weight)

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop everything — the ``redefine()`` compiler-cache contract."""
        self._cache.invalidate()
        self.flushes += 1

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        out = self._cache.stats()
        out["flushes"] = self.flushes
        return out
