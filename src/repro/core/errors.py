"""Exception types for the SOAP-bin / SOAP-binQ core."""

from __future__ import annotations


class BinqError(Exception):
    """Base class for SOAP-bin/binQ errors."""


class QualityFileError(BinqError):
    """A quality file is syntactically or semantically invalid."""

    def __init__(self, message: str, line: int = 0) -> None:
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class QualityHandlerError(BinqError):
    """A quality handler is missing or failed while transforming a message."""


class BinProtocolError(BinqError):
    """A binary SOAP exchange violated the protocol."""
