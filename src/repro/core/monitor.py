"""dproc-style resource monitoring feeding quality attributes.

§IV-C.1 notes a limitation of pure RTT adaptation: "higher response times
need not be caused by network congestion alone.  They may also be due to
the data-dependent nature of application behavior ... As shown in our work
on dynamic system monitoring [dproc], dynamic feedback from network
protocols and/or about other system resources can more precisely identify
the causes of performance degradation."

This module provides that feedback channel: small monitors that observe
each exchange and publish derived attributes into the
:class:`~repro.core.attributes.AttributeStore`, where quality policies can
react to them (a policy may monitor ``bandwidth`` or ``server_time``
instead of ``rtt``).

* :class:`ExchangeObservation` — what one request/response looked like;
* :class:`NetworkTimeMonitor` — RTT minus server prep: pure network delay;
* :class:`ServerTimeMonitor` — server preparation time (data-dependent
  application delay, the confound the paper warns about);
* :class:`BandwidthMonitor` — achieved goodput from bytes/elapsed;
* :class:`MarshallingCostMonitor` — client-side CPU cost per exchange
  (the "CPU load, by measuring marshalling or unmarshalling costs"
  attribute of §III-B.c);
* :class:`MonitorHub` — fans one observation out to many monitors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol

from .attributes import AttributeStore
from .rtt import RttEstimator


@dataclass
class ExchangeObservation:
    """Facts about one completed request/response exchange."""

    elapsed_s: float
    request_bytes: int
    response_bytes: int
    server_time_s: float = 0.0
    marshal_s: float = 0.0
    unmarshal_s: float = 0.0

    @property
    def network_s(self) -> float:
        """Time attributable to the network alone."""
        return max(0.0, self.elapsed_s - self.server_time_s)

    @property
    def total_bytes(self) -> int:
        return self.request_bytes + self.response_bytes


class Monitor(Protocol):
    """A monitor folds observations into one or more attributes."""

    def observe(self, observation: ExchangeObservation,
                attributes: AttributeStore) -> None:
        ...


class NetworkTimeMonitor:
    """Publishes ``network_time``: smoothed RTT with server time removed.

    This is the "rectified" RTT of §IV-C.h — adaptation driven by it does
    not mistake a slow data-dependent computation for congestion.
    """

    attribute = "network_time"

    def __init__(self, alpha: float = 0.875) -> None:
        self._estimator = RttEstimator(alpha=alpha)

    def observe(self, observation: ExchangeObservation,
                attributes: AttributeStore) -> None:
        estimate = self._estimator.update(observation.network_s)
        attributes.update_attribute(self.attribute, estimate)


class ServerTimeMonitor:
    """Publishes ``server_time``: smoothed response-preparation time.

    A policy (or operator) comparing ``server_time`` against
    ``network_time`` can tell *why* responses got slow — the
    disambiguation the paper says naive RTT policies lack.
    """

    attribute = "server_time"

    def __init__(self, alpha: float = 0.875) -> None:
        self._estimator = RttEstimator(alpha=alpha)

    def observe(self, observation: ExchangeObservation,
                attributes: AttributeStore) -> None:
        estimate = self._estimator.update(observation.server_time_s)
        attributes.update_attribute(self.attribute, estimate)


class BandwidthMonitor:
    """Publishes ``bandwidth``: smoothed achieved goodput in bits/second."""

    attribute = "bandwidth"

    def __init__(self, alpha: float = 0.875) -> None:
        self._estimator = RttEstimator(alpha=alpha)

    def observe(self, observation: ExchangeObservation,
                attributes: AttributeStore) -> None:
        if observation.network_s <= 0:
            return
        goodput = observation.total_bytes * 8.0 / observation.network_s
        attributes.update_attribute(self.attribute,
                                    self._estimator.update(goodput))


class MarshallingCostMonitor:
    """Publishes ``marshalling_cost``: smoothed client CPU seconds/exchange."""

    attribute = "marshalling_cost"

    def __init__(self, alpha: float = 0.875) -> None:
        self._estimator = RttEstimator(alpha=alpha)

    def observe(self, observation: ExchangeObservation,
                attributes: AttributeStore) -> None:
        cost = observation.marshal_s + observation.unmarshal_s
        attributes.update_attribute(self.attribute,
                                    self._estimator.update(cost))


class MonitorHub:
    """Fans each observation out to a set of monitors.

    The hub owns (or shares) the attribute store; attach it to a
    :class:`~repro.core.binclient.SoapBinClient` via ``monitor_hub=`` and
    every call feeds it automatically.
    """

    def __init__(self, attributes: Optional[AttributeStore] = None,
                 monitors: Optional[List[Monitor]] = None) -> None:
        self.attributes = attributes if attributes is not None \
            else AttributeStore()
        self.monitors: List[Monitor] = list(monitors) if monitors else []
        self.observations = 0
        self.last: Optional[ExchangeObservation] = None

    @classmethod
    def standard(cls, attributes: Optional[AttributeStore] = None) -> "MonitorHub":
        """A hub with all four built-in monitors attached."""
        return cls(attributes, [NetworkTimeMonitor(), ServerTimeMonitor(),
                                BandwidthMonitor(),
                                MarshallingCostMonitor()])

    def add(self, monitor: Monitor) -> None:
        self.monitors.append(monitor)

    def observe(self, observation: ExchangeObservation) -> None:
        self.observations += 1
        self.last = observation
        for monitor in self.monitors:
            monitor.observe(observation, self.attributes)

    def diagnose(self) -> str:
        """Attribute the current slowness: 'network', 'server' or 'ok'.

        The comparison the paper motivates: if server prep dominates the
        smoothed delay, shrinking messages will not help.
        """
        network = self.attributes.get("network_time", 0.0)
        server = self.attributes.get("server_time", 0.0)
        if network <= 0 and server <= 0:
            return "ok"
        return "server" if server > network else "network"
