"""dproc-style resource monitoring feeding quality attributes.

§IV-C.1 notes a limitation of pure RTT adaptation: "higher response times
need not be caused by network congestion alone.  They may also be due to
the data-dependent nature of application behavior ... As shown in our work
on dynamic system monitoring [dproc], dynamic feedback from network
protocols and/or about other system resources can more precisely identify
the causes of performance degradation."

This module provides that feedback channel: small monitors that observe
each exchange and publish derived attributes into the
:class:`~repro.core.attributes.AttributeStore`, where quality policies can
react to them (a policy may monitor ``bandwidth`` or ``server_time``
instead of ``rtt``).

* :class:`ExchangeObservation` — what one request/response looked like;
* :class:`NetworkTimeMonitor` — RTT minus server prep: pure network delay;
* :class:`ServerTimeMonitor` — server preparation time (data-dependent
  application delay, the confound the paper warns about);
* :class:`BandwidthMonitor` — achieved goodput from bytes/elapsed;
* :class:`MarshallingCostMonitor` — client-side CPU cost per exchange
  (the "CPU load, by measuring marshalling or unmarshalling costs"
  attribute of §III-B.c);
* :class:`MonitorHub` — fans one observation out to many monitors;
* :class:`BreakerRttCoupling` — failure-driven degradation: circuit-breaker
  events from :mod:`repro.reliability` are fed into the quality manager's
  RTT estimator as *worst-interval* RTT, so an endpoint that is *broken*
  degrades through exactly the same quality handlers as one that is merely
  *slow* — the paper's adaptation loop extended from congestion to outages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, TYPE_CHECKING

from .attributes import AttributeStore
from .rtt import RttEstimator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .manager import QualityManager
    from .quality_file import QualityPolicy


@dataclass
class ExchangeObservation:
    """Facts about one completed request/response exchange."""

    elapsed_s: float
    request_bytes: int
    response_bytes: int
    server_time_s: float = 0.0
    marshal_s: float = 0.0
    unmarshal_s: float = 0.0

    @property
    def network_s(self) -> float:
        """Time attributable to the network alone."""
        return max(0.0, self.elapsed_s - self.server_time_s)

    @property
    def total_bytes(self) -> int:
        return self.request_bytes + self.response_bytes


class Monitor(Protocol):
    """A monitor folds observations into one or more attributes."""

    def observe(self, observation: ExchangeObservation,
                attributes: AttributeStore) -> None:
        ...


class NetworkTimeMonitor:
    """Publishes ``network_time``: smoothed RTT with server time removed.

    This is the "rectified" RTT of §IV-C.h — adaptation driven by it does
    not mistake a slow data-dependent computation for congestion.
    """

    attribute = "network_time"

    def __init__(self, alpha: float = 0.875) -> None:
        self._estimator = RttEstimator(alpha=alpha)

    def observe(self, observation: ExchangeObservation,
                attributes: AttributeStore) -> None:
        estimate = self._estimator.update(observation.network_s)
        attributes.update_attribute(self.attribute, estimate)


class ServerTimeMonitor:
    """Publishes ``server_time``: smoothed response-preparation time.

    A policy (or operator) comparing ``server_time`` against
    ``network_time`` can tell *why* responses got slow — the
    disambiguation the paper says naive RTT policies lack.
    """

    attribute = "server_time"

    def __init__(self, alpha: float = 0.875) -> None:
        self._estimator = RttEstimator(alpha=alpha)

    def observe(self, observation: ExchangeObservation,
                attributes: AttributeStore) -> None:
        estimate = self._estimator.update(observation.server_time_s)
        attributes.update_attribute(self.attribute, estimate)


class BandwidthMonitor:
    """Publishes ``bandwidth``: smoothed achieved goodput in bits/second."""

    attribute = "bandwidth"

    def __init__(self, alpha: float = 0.875) -> None:
        self._estimator = RttEstimator(alpha=alpha)

    def observe(self, observation: ExchangeObservation,
                attributes: AttributeStore) -> None:
        if observation.network_s <= 0:
            return
        goodput = observation.total_bytes * 8.0 / observation.network_s
        attributes.update_attribute(self.attribute,
                                    self._estimator.update(goodput))


class MarshallingCostMonitor:
    """Publishes ``marshalling_cost``: smoothed client CPU seconds/exchange."""

    attribute = "marshalling_cost"

    def __init__(self, alpha: float = 0.875) -> None:
        self._estimator = RttEstimator(alpha=alpha)

    def observe(self, observation: ExchangeObservation,
                attributes: AttributeStore) -> None:
        cost = observation.marshal_s + observation.unmarshal_s
        attributes.update_attribute(self.attribute,
                                    self._estimator.update(cost))


class MonitorHub:
    """Fans each observation out to a set of monitors.

    The hub owns (or shares) the attribute store; attach it to a
    :class:`~repro.core.binclient.SoapBinClient` via ``monitor_hub=`` and
    every call feeds it automatically.
    """

    def __init__(self, attributes: Optional[AttributeStore] = None,
                 monitors: Optional[List[Monitor]] = None) -> None:
        self.attributes = attributes if attributes is not None \
            else AttributeStore()
        self.monitors: List[Monitor] = list(monitors) if monitors else []
        self.observations = 0
        self.last: Optional[ExchangeObservation] = None

    @classmethod
    def standard(cls, attributes: Optional[AttributeStore] = None) -> "MonitorHub":
        """A hub with all four built-in monitors attached."""
        return cls(attributes, [NetworkTimeMonitor(), ServerTimeMonitor(),
                                BandwidthMonitor(),
                                MarshallingCostMonitor()])

    def add(self, monitor: Monitor) -> None:
        self.monitors.append(monitor)

    def observe(self, observation: ExchangeObservation) -> None:
        self.observations += 1
        self.last = observation
        for monitor in self.monitors:
            monitor.observe(observation, self.attributes)

    def diagnose(self) -> str:
        """Attribute the current slowness: 'network', 'server' or 'ok'.

        The comparison the paper motivates: if server prep dominates the
        smoothed delay, shrinking messages will not help.
        """
        network = self.attributes.get("network_time", 0.0)
        server = self.attributes.get("server_time", 0.0)
        if network <= 0 and server <= 0:
            return "ok"
        return "server" if server > network else "network"


def worst_interval_rtt(policy: "QualityPolicy",
                       spread_factor: float = 2.0) -> float:
    """An RTT value squarely inside a policy's worst (last) interval.

    This is what "the link is broken" translates to in the quality file's
    own vocabulary: a finite worst interval yields its midpoint; an
    unbounded one (``lo inf``) yields ``lo * spread_factor`` so the value
    sits clearly past the last threshold.  A policy whose only interval is
    ``[0, inf)`` has no degraded tier to select, so any positive value
    works; 1 second is returned as a conventional "very bad" RTT.
    """
    from math import isinf

    if not policy.rules:
        return 1.0
    worst = policy.rules[-1]
    if not isinf(worst.hi):
        return (worst.lo + worst.hi) / 2.0
    if worst.lo > 0:
        return worst.lo * spread_factor
    return 1.0


class BreakerRttCoupling:
    """Feed circuit-breaker events into the quality manager's RTT loop.

    Register :meth:`state_changed` as a
    :class:`~repro.reliability.breaker.CircuitBreaker` listener and hand the
    coupling to :class:`~repro.reliability.channel.ReliableChannel` (or
    :func:`~repro.reliability.policy.call_with_policy`).  Every failed
    attempt, every locally-rejected call and the open transition itself
    push ``penalty_rtt`` — the policy's worst-interval RTT by default —
    through :meth:`QualityManager.observe_rtt`, so the exponential
    estimator climbs during an outage and the existing quality handlers
    shed payload.  Recovery needs no special casing: once calls succeed
    again, real (small) RTT samples decay the estimate back down and
    quality steps back up through the same hysteresis the paper specifies.
    """

    def __init__(self, quality: "QualityManager",
                 penalty_rtt: Optional[float] = None) -> None:
        self.quality = quality
        self.penalty_rtt = (penalty_rtt if penalty_rtt is not None
                            else worst_interval_rtt(quality.policy))
        self.samples_fed = 0
        self.transitions: List[tuple] = []

    # -- breaker listener ------------------------------------------------
    def state_changed(self, old: str, new: str, at_time: float) -> None:
        self.transitions.append((old, new, at_time))
        if new == "open":
            self._feed()

    # -- reliability-layer events ---------------------------------------
    def call_failed(self) -> None:
        """One attempt failed (the endpoint is misbehaving right now)."""
        self._feed()

    def call_rejected(self) -> None:
        """The open breaker shed a call without touching the wire."""
        self._feed()

    def _feed(self) -> None:
        self.quality.observe_rtt(self.penalty_rtt)
        self.samples_fed += 1
