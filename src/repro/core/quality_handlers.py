"""Quality handlers: code modules that transform message values.

"The resulting quality handlers are code modules that take as inputs both
the binary representations of SOAP parameters and quality attributes that
determine handlers' behaviors." (§I)

A handler maps a value of one message format into another (usually smaller)
format.  When the quality file names no handler for a message type, the
*trivial* handler generated from the formats is used — field projection
with zero padding (:mod:`repro.pbio.convert`), exactly what §III-B.b
describes for legacy integration.

Handlers are registered by name in a :class:`HandlerRegistry`; applications
register domain handlers (image resizing, timestep batching) and quality
files reference them with ``handler <message_type> <name>`` lines.

**Purity contract** (enforced by convention, required for response
caching): a handler must compute its output only from the value, the
format pair and quality attributes *other than* the policy's monitored
attribute and the ``rtt`` telemetry attribute.  The response cache
(``docs/caching.md``) flushes on every other attribute update but exempts
those two, so a handler reading them directly would be served stale from
the cache.  React to the monitored attribute through the quality file's
interval → message-type mapping instead.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..pbio import Array, Format, FormatRegistry, compile_converter
from .attributes import AttributeStore
from .errors import QualityHandlerError

#: handler(value, src_format, dst_format, format_registry, attributes) -> value
QualityHandler = Callable[
    [Dict[str, Any], Format, Format, FormatRegistry, AttributeStore],
    Dict[str, Any]]


def trivial_handler(value: Dict[str, Any], src: Format, dst: Format,
                    registry: FormatRegistry,
                    attrs: AttributeStore) -> Dict[str, Any]:
    """Field projection + zero padding (the generated default handler)."""
    return compile_converter(src, dst, registry)(value)


def downsample_arrays_handler(value: Dict[str, Any], src: Format, dst: Format,
                              registry: FormatRegistry,
                              attrs: AttributeStore) -> Dict[str, Any]:
    """Shrink fixed-length arrays by striding instead of truncating.

    The paper's example: "data with a specified number of array values could
    be replaced by a smaller sized array, if the loss in precision is not as
    critical as the time ... serializing, transmitting and deserializing a
    larger array" (§III-B.b).  Striding spreads the precision loss across
    the whole array instead of chopping off its tail.
    """
    out: Dict[str, Any] = {}
    for dst_field in dst.fields:
        name = dst_field.name
        if not src.has_field(name):
            from ..pbio.convert import zero_value
            out[name] = zero_value(dst_field.ftype, registry)
            continue
        src_type = src.field(name).ftype
        dst_type = dst_field.ftype
        item = value[name]
        if (isinstance(src_type, Array) and isinstance(dst_type, Array)
                and dst_type.length is not None
                and len(item) > dst_type.length > 0):
            stride = len(item) / dst_type.length
            out[name] = [item[int(i * stride)] for i in range(dst_type.length)]
        else:
            out[name] = item
    return trivial_handler(out, src, dst, registry, attrs)


class HandlerRegistry:
    """Named quality handlers, with the built-ins pre-registered."""

    def __init__(self) -> None:
        self._handlers: Dict[str, QualityHandler] = {}
        self.register("project", trivial_handler)
        self.register("downsample", downsample_arrays_handler)

    def register(self, name: str, handler: QualityHandler) -> None:
        if not name:
            raise QualityHandlerError("handler name must be non-empty")
        self._handlers[name] = handler

    def handler(self, name: str):
        """Decorator form of :meth:`register`."""
        def wrap(fn: QualityHandler) -> QualityHandler:
            self.register(name, fn)
            return fn
        return wrap

    def get(self, name: Optional[str]) -> QualityHandler:
        """Resolve a handler name; None gives the trivial handler."""
        if name is None:
            return trivial_handler
        try:
            return self._handlers[name]
        except KeyError:
            raise QualityHandlerError(
                f"no quality handler named {name!r} "
                f"(registered: {sorted(self._handlers)})")

    def names(self):
        return sorted(self._handlers)

    def __contains__(self, name: str) -> bool:
        return name in self._handlers
