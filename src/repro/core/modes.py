"""Operating modes and content types for SOAP-bin exchanges.

§I defines three modes, distinguished by where XML appears:

* **high performance** — parameters never appear as XML; both endpoints
  produce and consume native (binary) data.  Used for "internal"
  communications between cooperating servers.
* **interoperability** — one endpoint's data lives as XML (a database, a
  legacy producer) and is converted to/from binary just-in-time, one-sided;
  the wire and the other endpoint stay binary.
* **compatibility** — both endpoints need XML (peer-to-peer clients using
  standard tools); data is down-converted to binary for the wire and
  re-generated as XML on arrival.

The mode is a property of how an endpoint *uses* the client/service API
(which conversion calls it makes), not a wire-protocol switch; the enum
exists so benchmarks and stubs can label configurations explicitly.
"""

from __future__ import annotations

from enum import Enum


class Mode(Enum):
    """Where XML conversions happen in an exchange."""

    HIGH_PERFORMANCE = "high-performance"
    INTEROPERABILITY = "interoperability"
    COMPATIBILITY = "compatibility"

    @property
    def xml_conversions(self) -> int:
        """How many endpoints perform XML<->native conversion."""
        if self is Mode.HIGH_PERFORMANCE:
            return 0
        if self is Mode.INTEROPERABILITY:
            return 1
        return 2


#: Content type for PBIO-encoded SOAP parameter payloads.
PBIO_CONTENT_TYPE = "application/x-pbio"

#: Request header carrying a stable per-client id (PBIO session affinity).
HEADER_CLIENT_ID = "X-PBIO-Client"
#: Request header: client's send timestamp (echoed back for RTT).
HEADER_TIMESTAMP = "X-BinQ-Timestamp"
#: Request header: the client's current RTT estimate, informing the server's
#: quality policy ("the server is informed of the new value during the next
#: request", §IV-C.h).
HEADER_RTT = "X-BinQ-RTT"
#: Response header: seconds the server spent preparing the response, so the
#: client can subtract it from the measured RTT.
HEADER_SERVER_TIME = "X-BinQ-ServerTime"
#: Response header echoing the request timestamp.
HEADER_TIMESTAMP_ECHO = "X-BinQ-Timestamp-Echo"
#: Request header naming the operation (robustness alongside format names).
HEADER_OPERATION = "X-SOAP-Operation"
