"""The quality manager: policy + monitoring + handlers, per endpoint.

"The information given in the quality file is used by both the client and
the server just before sending the message.  Based on the estimated RTT
value, the corresponding interval in the policy is selected and the
appropriate message type is chosen for transmission." (§IV-C.h)

A :class:`QualityManager` owns:

* the parsed :class:`~repro.core.quality_file.QualityPolicy`,
* an :class:`~repro.core.attributes.AttributeStore` (with
  ``update_attribute()``),
* the :class:`~repro.core.rtt.RttEstimator` feeding the monitored
  attribute when it is RTT,
* a :class:`~repro.core.rtt.HysteresisSelector` implementing the paper's
  history-based anti-oscillation,
* the :class:`~repro.core.quality_handlers.HandlerRegistry` that maps
  policy handler names to code.

Both client and server stubs hold one and call :meth:`outgoing` just before
sending; the receiving side calls :meth:`restore` to project the (possibly
smaller) wire message back up to the message type the application expects,
padding missing fields with zeroes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

from ..http11.messages import etag_matches
from ..pbio import Format, FormatRegistry
from .attributes import RTT, AttributeStore
from .errors import QualityFileError
from .qcache import QualityCache
from .quality_file import QualityPolicy, parse_quality_file
from .quality_handlers import HandlerRegistry, trivial_handler
from .rtt import HysteresisSelector, RttEstimator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serving.sandbox import HandlerSandbox


class QualityManager:
    """Runtime quality management for one endpoint.

    ``sandbox`` (a :class:`~repro.serving.sandbox.HandlerSandbox`) puts a
    timeout + exception boundary around *named* quality handlers: when one
    raises, stalls or is quarantined, :meth:`outgoing` falls back to the
    trivial projection handler — and to the full-fidelity application
    format if even that fails — instead of letting user handler code fail
    the request.

    .. warning:: **Handler purity under caching.**  With a ``cache``
       attached, a handler's output must be a pure function of the input
       value, the format pair, and attributes *other than* the policy's
       monitored attribute and the RTT telemetry.  Those two are exempt
       from the attribute-update flush (the monitored attribute's effect
       is the chosen message type, which is part of the cache key; RTT
       changes on essentially every exchange), so a handler that reads
       either one *directly* from the :class:`AttributeStore` would have
       stale output replayed from the cache — and incorrectly
       ``304``-validated.  Handlers needing the monitored value must act
       on it only through the quality file's interval → message-type
       mapping; handlers that genuinely depend on other per-request state
       must run cache-less (``cache=None``).  See ``docs/caching.md``.
    """

    def __init__(self, policy: QualityPolicy, registry: FormatRegistry,
                 handlers: Optional[HandlerRegistry] = None,
                 attributes: Optional[AttributeStore] = None,
                 alpha: float = 0.875,
                 sandbox: Optional["HandlerSandbox"] = None,
                 cache: Optional[QualityCache] = None) -> None:
        self.policy = policy
        self.registry = registry
        self.handlers = handlers or HandlerRegistry()
        self.attributes = attributes or AttributeStore()
        self.estimator = RttEstimator(alpha=alpha)
        self.selector: HysteresisSelector[str] = HysteresisSelector(
            history=policy.history)
        self.sandbox = sandbox
        #: times a named handler failed and the trivial projection (or the
        #: full-fidelity format) was substituted
        self.handler_fallbacks = 0
        #: content-addressed memoization of handler outputs (server side);
        #: None keeps the manager zero-cost for cache-less deployments.
        self.cache = cache
        if cache is not None:
            # Handlers may read any attribute, so a change to one the key
            # does not capture must flush.  Two are exempt: the policy's
            # monitored attribute (its effect is the chosen message type,
            # already a key component) and the RTT telemetry attribute
            # (fed on essentially every request).
            self.attributes.subscribe(self._on_attribute_update)
        for message_type in policy.message_types():
            if not registry.has_name(message_type):
                raise QualityFileError(
                    f"policy references unregistered format "
                    f"{message_type!r}")

    # ------------------------------------------------------------------
    @classmethod
    def from_text(cls, quality_text: str, registry: FormatRegistry,
                  handlers: Optional[HandlerRegistry] = None,
                  attributes: Optional[AttributeStore] = None,
                  sandbox: Optional["HandlerSandbox"] = None,
                  cache: Optional[QualityCache] = None) -> "QualityManager":
        """Build a manager straight from quality-file text."""
        return cls(parse_quality_file(quality_text), registry,
                   handlers=handlers, attributes=attributes, sandbox=sandbox,
                   cache=cache)

    # ------------------------------------------------------------------
    def _on_attribute_update(self, name: str, _value: float) -> None:
        if name != self.policy.attribute and name != RTT:
            self.cache.invalidate()

    # ------------------------------------------------------------------
    # monitoring inputs
    # ------------------------------------------------------------------
    def observe_rtt(self, measured: float, server_time: float = 0.0) -> float:
        """Fold a measured RTT into the estimate and the attribute store."""
        estimate = self.estimator.update(measured, server_time)
        self.attributes.update_attribute(RTT, estimate)
        return estimate

    def update_attribute(self, name: str, value: float) -> None:
        """Application-driven attribute change (paper §III-B.d)."""
        self.attributes.update_attribute(name, value)

    def current_attribute_value(self) -> float:
        return self.attributes.get(self.policy.attribute, 0.0)

    # ------------------------------------------------------------------
    # message-type selection and transformation
    # ------------------------------------------------------------------
    def choose_message_type(self) -> str:
        """Debounced message type for the current attribute value."""
        rule = self.policy.select(self.current_attribute_value())
        return self.selector.observe(rule.message_type)

    def outgoing(self, value: Dict[str, Any],
                 app_format: Format) -> Tuple[Format, Dict[str, Any]]:
        """Transform an application message just before sending.

        Looks up the policy, applies the chosen message type's quality
        handler (trivial projection unless the quality file names one) and
        returns ``(wire_format, wire_value)``.
        """
        wire_format, wire_value, _etag, _not_modified = self.outgoing_keyed(
            value, app_format)
        return wire_format, wire_value

    def outgoing_keyed(
            self, value: Dict[str, Any], app_format: Format,
            if_none_match: Optional[str] = None,
            variant: str = "pbio",
    ) -> Tuple[Format, Optional[Dict[str, Any]], Optional[str], bool]:
        """:meth:`outgoing` with content-addressed memoization.

        Returns ``(wire_format, wire_value, etag, not_modified)``.  With a
        :class:`~repro.core.qcache.QualityCache` attached, ``etag`` is the
        strong validator addressing the bytes of this representation
        (``variant`` distinguishes PBIO from per-operation XML encodings);
        a matching ``if_none_match`` short-circuits *before* the handler
        runs — ``wire_value`` comes back ``None`` and ``not_modified``
        True.  Fallback output (sandboxed handler failed or quarantined)
        is never cached and carries no validator: the key addresses the
        healthy handler's output, not the substitute's.
        """
        chosen_name = self.choose_message_type()
        identity = chosen_name == app_format.name
        wire_format = (app_format if identity
                       else self.registry.by_name(chosen_name))
        cache = self.cache
        if cache is None:
            if identity:
                return app_format, value, None, False
            out_format, wire_value, _ok = self._transform(
                value, app_format, wire_format)
            return out_format, wire_value, None, False
        key = cache.key(app_format, wire_format, value, variant)
        if etag_matches(if_none_match, key):
            return wire_format, None, key, True
        if identity:
            return app_format, value, key, False
        entry = cache.lookup(key)
        if entry is not None:
            return entry.wire_format, entry.wire_value, key, False
        out_format, wire_value, ok = self._transform(
            value, app_format, wire_format)
        if not ok:
            return out_format, wire_value, None, False
        cache.store(key, out_format, wire_value)
        return out_format, wire_value, key, False

    def _transform(self, value: Dict[str, Any], app_format: Format,
                   wire_format: Format
                   ) -> Tuple[Format, Dict[str, Any], bool]:
        """Run the quality handler; the bool is False when a fallback
        substituted for the named handler (such output must not be cached
        or validated against the degraded representation's key)."""
        handler_name = self.policy.handler_for(wire_format.name)
        handler = self.handlers.get(handler_name)
        if self.sandbox is not None and handler_name is not None:
            ok, wire_value = self.sandbox.run(
                handler_name, handler, value, app_format, wire_format,
                self.registry, self.attributes)
            if not ok:
                self.handler_fallbacks += 1
                try:
                    wire_value = trivial_handler(value, app_format,
                                                 wire_format, self.registry,
                                                 self.attributes)
                except Exception:  # noqa: BLE001 - last-resort fallback
                    return app_format, value, False
                return wire_format, wire_value, False
        else:
            wire_value = handler(value, app_format, wire_format,
                                 self.registry, self.attributes)
        return wire_format, wire_value, True

    def restore(self, wire_value: Dict[str, Any], wire_format: Format,
                app_format: Format) -> Dict[str, Any]:
        """Project a received wire message up to the application's type.

        "the relevant fields are copied from the message received from the
        transport, and the remaining entries are padded with zeroes.  This
        feature permits legacy applications to be integrated seamlessly."
        """
        if wire_format.fingerprint == app_format.fingerprint:
            return wire_value
        return trivial_handler(wire_value, wire_format, app_format,
                               self.registry, self.attributes)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Observability snapshot used by benchmarks and examples."""
        stats = {
            "attribute": self.policy.attribute,
            "value": self.current_attribute_value(),
            "rtt_estimate": self.estimator.estimate,
            "rtt_samples": self.estimator.samples,
            "current_message_type": self.selector.current,
            "switches": self.selector.switches,
            "handler_fallbacks": self.handler_fallbacks,
        }
        if self.sandbox is not None:
            stats["sandbox"] = self.sandbox.stats()
        if self.cache is not None:
            stats["cache"] = self.cache.stats()
        return stats
