"""Runtime installation of quality handlers from source code.

§V (future work): "our current implementation installs handlers
statically, at compile-time.  In other work, we have already developed the
technologies necessary to install binary handlers at runtime, using dynamic
binary code generation techniques and/or using code repositories."

This module implements that extension for the reproduction: quality
handlers compiled from *source text* at runtime, plus a
:class:`HandlerRepository` (the "code repository") from which services can
pull handlers by name.  The compilation model matches the ECho filter
sandbox: the source is the body of a function, restricted builtins, no
imports or dunder access.

Handler source contract: the body sees ``value`` (the application message
dict), ``src_fields``/``dst_fields`` (field-name lists of the two
formats), and ``attrs`` (a read-only snapshot of the quality attributes);
it must return the dict for the destination message type.  The result is
run through the trivial projection afterwards, so handlers may return a
superset of the destination fields and let projection trim it.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from ..echo.filters import _SAFE_BUILTINS, _reject_dangerous
from ..pbio import Format, FormatRegistry
from .attributes import AttributeStore
from .errors import QualityHandlerError
from .quality_handlers import HandlerRegistry, QualityHandler, trivial_handler


def compile_quality_handler(source: str,
                            name: str = "dynamic") -> QualityHandler:
    """Compile quality-handler source into a :data:`QualityHandler`.

    >>> handler = compile_quality_handler(
    ...     "return {'data': value['data'][:2]}")
    """
    try:
        _reject_dangerous(source)
    except Exception as exc:
        raise QualityHandlerError(str(exc))
    indented = "\n".join("    " + line for line in source.splitlines())
    wrapper = (f"def _handler_fn(value, src_fields, dst_fields, attrs):\n"
               f"{indented or '    return value'}\n")
    namespace: Dict[str, Any] = {"__builtins__": dict(_SAFE_BUILTINS)}
    try:
        exec(compile(wrapper, f"<quality-handler:{name}>", "exec"),
             namespace)
    except SyntaxError as exc:
        raise QualityHandlerError(f"handler does not compile: {exc}")
    fn = namespace["_handler_fn"]

    def handler(value: Dict[str, Any], src: Format, dst: Format,
                registry: FormatRegistry,
                attrs: AttributeStore) -> Dict[str, Any]:
        try:
            result = fn(dict(value), src.field_names(), dst.field_names(),
                        attrs.snapshot())
        except Exception as exc:  # noqa: BLE001 - user code boundary
            raise QualityHandlerError(
                f"handler {name!r} raised {type(exc).__name__}: {exc}")
        if not isinstance(result, dict):
            raise QualityHandlerError(
                f"handler {name!r} must return a dict, got "
                f"{type(result).__name__}")
        # projection guarantees the wire value matches the wire format
        return trivial_handler(result, src, dst, registry, attrs)

    handler.__handler_source__ = source
    return handler


class HandlerRepository:
    """A named store of handler *sources* (the paper's code repository).

    Services fetch and compile handlers on demand; sources can be updated
    at runtime, and the next fetch picks up the new version.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sources: Dict[str, str] = {}

    def publish(self, name: str, source: str) -> None:
        """Validate (by compiling once) and store handler source."""
        compile_quality_handler(source, name)  # raises on bad source
        with self._lock:
            self._sources[name] = source

    def source(self, name: str) -> str:
        with self._lock:
            try:
                return self._sources[name]
            except KeyError:
                raise QualityHandlerError(
                    f"repository has no handler named {name!r}")

    def fetch(self, name: str) -> QualityHandler:
        """Compile and return the current version of a handler."""
        return compile_quality_handler(self.source(name), name)

    def names(self):
        with self._lock:
            return sorted(self._sources)

    def install_into(self, registry: HandlerRegistry,
                     name: Optional[str] = None) -> None:
        """Install one (or every) published handler into a live registry."""
        targets = [name] if name else self.names()
        for target in targets:
            registry.register(target, self.fetch(target))
