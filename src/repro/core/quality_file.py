"""Quality files: the policy DSL mapping attribute intervals to messages.

§III-B.b gives the template::

    quality_attribute_1 quality_attribute_2 - message_type_0
    quality_attribute_2 quality_attribute_3 - message_type_1
    quality_attribute_3 quality_attribute_4 - message_type_2

Each line binds a half-open interval ``[lo, hi)`` of the monitored quality
attribute to the message type to use while the attribute is in that range.
This implementation extends the template with three directive lines so a
quality file is self-contained:

* ``attribute <name>`` — which quality attribute the intervals refer to
  (default ``rtt``);
* ``handler <message_type> <handler_name>`` — use a named quality handler
  instead of the trivial field-projection handler when down-converting to
  ``message_type``;
* ``history <n>`` — hysteresis depth for the anti-oscillation mechanism.

``#`` starts a comment; blank lines are ignored; ``inf`` is a valid upper
bound.  Example::

    # imaging policy: full image on a fast link, half otherwise
    attribute rtt
    history 3
    0.0   0.080 - image_full
    0.080 inf   - image_half
    handler image_half resize_half
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .errors import QualityFileError


@dataclass(frozen=True)
class QualityRule:
    """One interval -> message-type binding."""

    lo: float
    hi: float
    message_type: str

    def contains(self, value: float) -> bool:
        return self.lo <= value < self.hi


@dataclass
class QualityPolicy:
    """A parsed quality file."""

    attribute: str = "rtt"
    rules: List[QualityRule] = field(default_factory=list)
    handlers: Dict[str, str] = field(default_factory=dict)
    history: int = 3

    def select(self, value: float) -> QualityRule:
        """The rule whose interval contains ``value``.

        Values below every interval take the first rule and values above
        every interval take the last one, so selection is total — network
        conditions outside the author's imagination degrade gracefully.
        """
        if not self.rules:
            raise QualityFileError("policy has no rules")
        for rule in self.rules:
            if rule.contains(value):
                return rule
        if value < self.rules[0].lo:
            return self.rules[0]
        return self.rules[-1]

    def handler_for(self, message_type: str) -> Optional[str]:
        """Named quality handler for a message type, if the file names one."""
        return self.handlers.get(message_type)

    def message_types(self) -> List[str]:
        return [rule.message_type for rule in self.rules]


def parse_quality_file(text: str) -> QualityPolicy:
    """Parse quality-file text into a :class:`QualityPolicy`.

    Raises :class:`~repro.core.errors.QualityFileError` with the offending
    line number for syntax errors, overlapping intervals, or gaps.
    """
    policy = QualityPolicy()
    rules: List[QualityRule] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        if tokens[0] == "attribute":
            if len(tokens) != 2:
                raise QualityFileError("attribute takes one name", lineno)
            policy.attribute = tokens[1]
        elif tokens[0] == "history":
            if len(tokens) != 2:
                raise QualityFileError("history takes one integer", lineno)
            try:
                policy.history = int(tokens[1])
            except ValueError:
                raise QualityFileError(
                    f"bad history value {tokens[1]!r}", lineno)
            if policy.history < 1:
                raise QualityFileError("history must be >= 1", lineno)
        elif tokens[0] == "handler":
            if len(tokens) != 3:
                raise QualityFileError(
                    "handler takes <message_type> <handler_name>", lineno)
            policy.handlers[tokens[1]] = tokens[2]
        else:
            rules.append(_parse_rule(tokens, lineno))
    if not rules:
        raise QualityFileError("quality file defines no interval rules")
    _validate_intervals(rules)
    policy.rules = rules
    for message_type in policy.handlers:
        if message_type not in policy.message_types():
            raise QualityFileError(
                f"handler bound to unknown message type {message_type!r}")
    return policy


def _parse_rule(tokens: List[str], lineno: int) -> QualityRule:
    if len(tokens) != 4 or tokens[2] != "-":
        raise QualityFileError(
            "expected '<lo> <hi> - <message_type>'", lineno)
    try:
        lo = float(tokens[0])
        hi = float(tokens[1])
    except ValueError:
        raise QualityFileError(
            f"bad interval bounds {tokens[0]!r} {tokens[1]!r}", lineno)
    if math.isnan(lo) or math.isnan(hi):
        raise QualityFileError("interval bounds cannot be NaN", lineno)
    if not lo < hi:
        raise QualityFileError(
            f"empty interval [{lo}, {hi})", lineno)
    return QualityRule(lo=lo, hi=hi, message_type=tokens[3])


def _validate_intervals(rules: List[QualityRule]) -> None:
    ordered = sorted(rules, key=lambda r: r.lo)
    for earlier, later in zip(ordered, ordered[1:]):
        if later.lo < earlier.hi:
            raise QualityFileError(
                f"intervals [{earlier.lo}, {earlier.hi}) and "
                f"[{later.lo}, {later.hi}) overlap")
        if later.lo > earlier.hi:
            raise QualityFileError(
                f"gap between intervals [{earlier.lo}, {earlier.hi}) and "
                f"[{later.lo}, {later.hi})")
    rules[:] = ordered


def format_quality_file(policy: QualityPolicy) -> str:
    """Render a policy back to quality-file text (round-trips with
    :func:`parse_quality_file`)."""
    lines = [f"attribute {policy.attribute}", f"history {policy.history}"]
    for rule in policy.rules:
        lines.append(f"{rule.lo:g} {rule.hi:g} - {rule.message_type}")
    for message_type, handler in policy.handlers.items():
        lines.append(f"handler {message_type} {handler}")
    return "\n".join(lines) + "\n"
