"""SOAP-bin and SOAP-binQ: the paper's primary contribution.

Binary SOAP invocations over PBIO with XML only where endpoints need it
(three modes), plus continuous quality management: quality files bind
intervals of a monitored attribute (RTT by default) to message types,
quality handlers transform payloads, and a history-based estimator keeps
selection stable.

Minimal SOAP-binQ setup::

    from repro import pbio
    from repro.core import SoapBinClient, SoapBinService
    from repro.transport import DirectChannel

    registry = pbio.FormatRegistry()
    req = pbio.Format.from_dict("GetDataRequest", {"n": "int32"})
    full = pbio.Format.from_dict("GetDataResponse", {"data": "float64[]"})
    small = pbio.Format.from_dict("GetDataSmall", {"data": "float64[]"})
    for fmt in (req, full, small):
        registry.register(fmt)

    service = SoapBinService(registry, quality_text='''
        attribute rtt
        0.0  0.05 - GetDataResponse
        0.05 inf  - GetDataSmall
    ''')
    service.add_operation("GetData", req, full,
                          lambda p: {"data": [0.0] * p["n"]})

    client = SoapBinClient(DirectChannel(service.endpoint), registry)
    out = client.call("GetData", {"n": 4}, req, full)
"""

from .attributes import (CPU_LOAD, MARSHALLING_COST, MEMORY, RESOLUTION, RTT,
                         AttributeStore)
from .binclient import SoapBinClient
from .binservice import SoapBinService
from .conversion import ConversionHandler
from .dynamic import HandlerRepository, compile_quality_handler
from .xmlq import (XmlQualityClient, build_attribute_headers,
                   build_message_type_header, parse_attribute_headers,
                   parse_message_type_header)
from .monitor import (BandwidthMonitor, BreakerRttCoupling,
                      ExchangeObservation, MarshallingCostMonitor,
                      MonitorHub, NetworkTimeMonitor, ServerTimeMonitor,
                      worst_interval_rtt)
from .errors import (BinProtocolError, BinqError, QualityFileError,
                     QualityHandlerError)
from .lru import LruTtlCache
from .manager import QualityManager
from .modes import (HEADER_CLIENT_ID, HEADER_OPERATION, HEADER_RTT,
                    HEADER_SERVER_TIME, HEADER_TIMESTAMP,
                    HEADER_TIMESTAMP_ECHO, Mode, PBIO_CONTENT_TYPE)
from .qcache import QualityCache, canonical_digest
from .quality_file import (QualityPolicy, QualityRule, format_quality_file,
                           parse_quality_file)
from .quality_handlers import (HandlerRegistry, QualityHandler,
                               downsample_arrays_handler, trivial_handler)
from .rtt import DEFAULT_ALPHA, HysteresisSelector, RttEstimator

__all__ = [
    "BinqError", "QualityFileError", "QualityHandlerError",
    "BinProtocolError",
    "Mode", "PBIO_CONTENT_TYPE", "HEADER_CLIENT_ID", "HEADER_TIMESTAMP",
    "HEADER_TIMESTAMP_ECHO", "HEADER_RTT", "HEADER_SERVER_TIME",
    "HEADER_OPERATION",
    "AttributeStore", "RTT", "RESOLUTION", "CPU_LOAD", "MARSHALLING_COST",
    "MEMORY",
    "RttEstimator", "HysteresisSelector", "DEFAULT_ALPHA",
    "QualityRule", "QualityPolicy", "parse_quality_file",
    "format_quality_file",
    "QualityHandler", "HandlerRegistry", "trivial_handler",
    "downsample_arrays_handler",
    "QualityManager", "ConversionHandler",
    "LruTtlCache", "QualityCache", "canonical_digest",
    "SoapBinClient", "SoapBinService",
    "compile_quality_handler", "HandlerRepository",
    "ExchangeObservation", "MonitorHub", "NetworkTimeMonitor",
    "ServerTimeMonitor", "BandwidthMonitor", "MarshallingCostMonitor",
    "BreakerRttCoupling", "worst_interval_rtt",
    "XmlQualityClient", "build_attribute_headers",
    "parse_attribute_headers", "build_message_type_header",
    "parse_message_type_header",
]
