"""The SOAP-bin service: binary-first dispatch with optional quality
management and full XML interoperability.

A :class:`SoapBinService` wraps the operation table of a standard
:class:`~repro.soap.service.SoapService` and accepts *both* payload kinds on
one endpoint:

* ``application/x-pbio`` — the SOAP-bin fast path.  The request payload is
  a PBIO message (announcement + data on first contact); the operation is
  identified by the request's format name; the response goes back as PBIO.
* ``text/xml`` — standard SOAP.  External clients interoperate with zero
  changes; the server converts at the boundary ("servers receive requests
  from and return data to external clients [as] standard XML data, but
  servers use binary data", §I).

When constructed with a quality policy (SOAP-binQ), the service consults it
just before sending every response: the client's reported RTT picks the
interval, the interval picks the message type, the message type's quality
handler shrinks the payload.  Request-side reduced message types are
transparently restored ("padded with zeroes") before handlers run.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional, Tuple

from ..pbio import (Format, FormatRegistry, PbioSession,
                    UnknownFormatError, WIRE_MODES)
from ..soap.errors import SoapFault
from ..soap.service import Operation, SoapService
from ..transport import ChannelReply
from .errors import BinProtocolError
from .lru import LruTtlCache
from .manager import QualityManager
from .modes import (HEADER_CLIENT_ID, HEADER_OPERATION, HEADER_RTT,
                    HEADER_SERVER_TIME, HEADER_TIMESTAMP,
                    HEADER_TIMESTAMP_ECHO, PBIO_CONTENT_TYPE)
from .qcache import QualityCache
from .quality_handlers import HandlerRegistry


class SoapBinService:
    """Binary SOAP dispatcher with continuous quality management."""

    def __init__(self, registry: Optional[FormatRegistry] = None,
                 quality_text: Optional[str] = None,
                 handlers: Optional[HandlerRegistry] = None,
                 prep_time_fn: Optional[Callable[[], float]] = None,
                 max_sessions: int = 4096,
                 session_idle_ttl_s: Optional[float] = None,
                 sandbox: Optional[object] = None,
                 response_cache: bool = True,
                 cache_entries: int = 1024,
                 cache_max_payload_bytes: int = 64 << 20,
                 cache_ttl_s: Optional[float] = None,
                 wire: str = "auto") -> None:
        if wire not in WIRE_MODES:
            raise ValueError(f"wire must be one of {WIRE_MODES}, got {wire!r}")
        #: compact-encoding policy handed to every per-client session
        self.wire = wire
        self.registry = registry if registry is not None else FormatRegistry()
        self.xml_service = SoapService(self.registry)
        self.compiler = self.registry.compiler
        self.handlers = handlers or HandlerRegistry()
        #: measures server response-preparation time for RTT rectification;
        #: overridable so simulated deployments report virtual prep time.
        #: Doubles as the session-idle and cache-TTL time source.
        self._prep_time_fn = prep_time_fn or time.perf_counter
        #: quality handlers run under this boundary (see
        #: repro.serving.sandbox): a raising/stalling handler falls back to
        #: the trivial projection instead of failing the request.
        self.sandbox = sandbox if sandbox is not None \
            else self._default_sandbox()
        #: response-cache sizing (per process: the per-worker RSS budget)
        self.response_cache = response_cache
        self.cache_entries = cache_entries
        self.cache_max_payload_bytes = cache_max_payload_bytes
        self.cache_ttl_s = cache_ttl_s
        self.quality: Optional[QualityManager] = None
        if quality_text is not None:
            self.quality = QualityManager.from_text(
                quality_text, self.registry, handlers=self.handlers,
                sandbox=self.sandbox, cache=self._make_quality_cache())
        #: per-client PBIO sessions (format announcements are per client),
        #: LRU-ordered and bounded: beyond ``max_sessions`` (or past
        #: ``session_idle_ttl_s`` of inactivity) the coldest session is
        #: evicted, so a million distinct client ids cannot retain a
        #: million sessions.  An evicted client's next data-only message
        #: fails format lookup and must re-announce (first-contact rules).
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self.session_idle_ttl_s = session_idle_ttl_s
        self._sessions: LruTtlCache = LruTtlCache(
            capacity=max_sessions, ttl_s=session_idle_ttl_s,
            time_fn=self._prep_time_fn)
        self._ops_by_format: Dict[str, Operation] = {}

    @staticmethod
    def _default_sandbox():
        from ..serving.sandbox import HandlerSandbox
        return HandlerSandbox()

    def _make_quality_cache(self) -> Optional[QualityCache]:
        if not self.response_cache:
            return None
        return QualityCache(self.registry, capacity=self.cache_entries,
                            ttl_s=self.cache_ttl_s,
                            max_payload_bytes=self.cache_max_payload_bytes,
                            time_fn=self._prep_time_fn)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add_operation(self, name: str, input_format: Format,
                      output_format: Format, handler: Callable,
                      wants_headers: bool = False,
                      request_message_types: Tuple[str, ...] = ()) -> Operation:
        """Register an operation for both the XML and binary paths.

        ``request_message_types`` lists additional (reduced) request formats
        that a quality-managed client may substitute for ``input_format``.
        """
        op = self.xml_service.add_operation(name, input_format, output_format,
                                            handler,
                                            wants_headers=wants_headers)
        self._ops_by_format[input_format.name] = op
        for type_name in request_message_types:
            self._ops_by_format[type_name] = op
        return op

    def install_quality(self, quality_text: str) -> QualityManager:
        """Attach (or replace) the response-side quality policy at runtime.

        Together with :meth:`install_handler_source` this realizes the
        paper's future-work goal of dynamically re-defining quality
        management (§V).
        """
        self.quality = QualityManager.from_text(
            quality_text, self.registry, handlers=self.handlers,
            sandbox=self.sandbox, cache=self._make_quality_cache())
        return self.quality

    def install_handler_source(self, name: str, source: str) -> None:
        """Compile handler *source* and install it under ``name`` at
        runtime (dynamic code generation, §V future work)."""
        from .dynamic import compile_quality_handler
        self.handlers.register(name, compile_quality_handler(source, name))

    # ------------------------------------------------------------------
    # transport endpoint
    # ------------------------------------------------------------------
    def endpoint(self, body: bytes, content_type: str,
                 headers: Dict[str, str]) -> ChannelReply:
        """Dispatch one request, binary or XML.

        XML requests get quality management too when a policy is installed
        (attributes arrive as ``binq`` SOAP header entries, §III-B.b's
        alternative to zero-padding); compressed XML requests skip the
        quality path and go through plain dispatch.
        """
        if content_type.split(";")[0].strip() == PBIO_CONTENT_TYPE:
            return self._binary_request(body, headers)
        if self.quality is not None and "content-encoding" not in {
                k.lower() for k in headers}:
            return self._xml_quality_request(body, headers)
        # Interoperability: plain SOAP clients hit the same endpoint.
        return self.xml_service.endpoint(body, content_type, headers)

    def _xml_quality_request(self, body: bytes,
                             headers: Dict[str, str]) -> ChannelReply:
        from ..soap.service import XML_CONTENT_TYPE
        from .xmlq import encode_quality_response, parse_attribute_headers
        try:
            params, op, envelope = self.xml_service.decode_request(body)
            for name, value in parse_attribute_headers(envelope).items():
                self.quality.attributes.update_attribute(name, value)
            result = self.xml_service.invoke(op, params, headers)
            # The XML body depends on the response element name, so the
            # validator variant is per-operation: two ops sharing an
            # output format and value must not 304 for each other.
            wire_format, wire_value, etag, not_modified = \
                self.quality.outgoing_keyed(
                    result, op.output_format,
                    if_none_match=self._if_none_match(headers),
                    variant=f"xml:{op.response_name}")
            if not_modified:
                return ChannelReply(body=b"", content_type=XML_CONTENT_TYPE,
                                    headers={"ETag": etag}, status=304)
            payload = encode_quality_response(op.response_name, wire_value,
                                              wire_format, self.registry)
            reply_headers = {"ETag": etag} if etag is not None else {}
            return ChannelReply(body=payload, content_type=XML_CONTENT_TYPE,
                                headers=reply_headers)
        except SoapFault as fault:
            return self.xml_service._fault_reply(fault, compressed=False)
        except Exception as exc:  # noqa: BLE001 - dispatch boundary
            return self.xml_service._fault_reply(
                SoapFault("Server", str(exc)), compressed=False)

    # ------------------------------------------------------------------
    def _binary_request(self, body: bytes,
                        headers: Dict[str, str]) -> ChannelReply:
        prep_started = self._prep_time_fn()
        session = self._session_for(headers.get(HEADER_CLIENT_ID, "anon"))
        try:
            reply_value, reply_format, etag, not_modified = self._run_binary(
                body, headers, session)
        except (BinProtocolError, UnknownFormatError, SoapFault) as exc:
            return ChannelReply(body=str(exc).encode("utf-8"),
                                content_type="text/plain", status=500)
        except Exception as exc:  # noqa: BLE001 - dispatch boundary
            return ChannelReply(body=f"internal error: {exc}".encode(),
                                content_type="text/plain", status=500)
        reply_headers = self._reply_headers(headers, prep_started)
        if not_modified:
            # Header-only fast path: the client's cached representation is
            # current, so the quality handler AND the encode are skipped.
            reply_headers["ETag"] = etag
            return ChannelReply(body=b"", content_type=PBIO_CONTENT_TYPE,
                                headers=reply_headers, status=304)
        payload = self._pack_reply(session, reply_format, reply_value, etag)
        if etag is not None:
            reply_headers["ETag"] = etag
        return ChannelReply(body=payload, content_type=PBIO_CONTENT_TYPE,
                            headers=reply_headers)

    def _run_binary(self, body: bytes, headers: Dict[str, str],
                    session: PbioSession):
        wire_format, wire_value = session.unpack_stream(body)
        op = self._operation_for(wire_format, headers)
        params = self._restore_request(wire_value, wire_format, op)
        self._ingest_reported_rtt(headers)
        result = self.xml_service.invoke(op, params, headers)
        # The cache/ETag variant must reflect the representation this reply
        # will be *encoded* in, and the session may have just learned the
        # peer's compact capability from announcements in this very body —
        # so it is computed after unpack_stream, never before.
        variant = f"pbio:{session.wire_rep()}"
        reply_format, reply_value, etag, not_modified = self._apply_quality(
            result, op.output_format, self._if_none_match(headers),
            variant=variant)
        return reply_value, reply_format, etag, not_modified

    @staticmethod
    def _if_none_match(headers: Dict[str, str]) -> Optional[str]:
        for name, value in headers.items():
            if name.lower() == "if-none-match":
                return value
        return None

    def _pack_reply(self, session: PbioSession, reply_format: Format,
                    reply_value: Dict[str, Any],
                    etag: Optional[str]) -> bytes:
        """Encode the reply, reusing cached data-message bytes when safe.

        Steady-state PBIO data bytes depend only on the registry-wide
        format id and the value — not on which session sends them — so
        once a session has announced the reply format, a payload cached
        under the same content-addressed key can be replayed verbatim.
        First-contact replies carry the announcement and are never cached.
        """
        cache = self.quality.cache if self.quality is not None else None
        if cache is None or etag is None:
            return session.pack_bytes(reply_format, reply_value)
        announced = session.has_announced(reply_format)
        if announced:
            blob = cache.payload(etag)
            if blob is not None:
                return session.send_cached(blob)
        payload = session.pack_bytes(reply_format, reply_value)
        if announced:
            cache.attach_payload(etag, payload)
        return payload

    def _operation_for(self, wire_format: Format,
                       headers: Dict[str, str]) -> Operation:
        op = self._ops_by_format.get(wire_format.name)
        if op is not None:
            return op
        name = headers.get(HEADER_OPERATION)
        if name and name in self.xml_service.operations:
            return self.xml_service.operations[name]
        raise BinProtocolError(
            f"no operation accepts message format {wire_format.name!r}")

    def _restore_request(self, wire_value: Dict[str, Any],
                         wire_format: Format, op: Operation) -> Dict[str, Any]:
        if wire_format.fingerprint == op.input_format.fingerprint:
            return wire_value
        if self.quality is not None:
            return self.quality.restore(wire_value, wire_format,
                                        op.input_format)
        from .quality_handlers import trivial_handler
        from .attributes import AttributeStore
        return trivial_handler(wire_value, wire_format, op.input_format,
                               self.registry, AttributeStore())

    def _ingest_reported_rtt(self, headers: Dict[str, str]) -> None:
        if self.quality is None:
            return
        reported = headers.get(HEADER_RTT)
        if reported is None:
            return
        try:
            value = float(reported)
        except ValueError:
            return
        self.quality.attributes.update_attribute("rtt", value)

    def _apply_quality(
            self, result: Dict[str, Any], output_format: Format,
            if_none_match: Optional[str] = None,
            variant: str = "pbio:native",
    ) -> Tuple[Format, Optional[Dict[str, Any]], Optional[str], bool]:
        if self.quality is None:
            return output_format, result, None, False
        wire_format, wire_value, etag, not_modified = \
            self.quality.outgoing_keyed(result, output_format,
                                        if_none_match=if_none_match,
                                        variant=variant)
        return wire_format, wire_value, etag, not_modified

    def _reply_headers(self, request_headers: Dict[str, str],
                       prep_started: float) -> Dict[str, str]:
        reply: Dict[str, str] = {}
        timestamp = request_headers.get(HEADER_TIMESTAMP)
        if timestamp is not None:
            reply[HEADER_TIMESTAMP_ECHO] = timestamp
        prep = max(0.0, self._prep_time_fn() - prep_started)
        reply[HEADER_SERVER_TIME] = f"{prep:.9f}"
        return reply

    def _session_for(self, client_id: str) -> PbioSession:
        return self._sessions.get_or_create(
            client_id, lambda: PbioSession(self.registry, self.compiler,
                                           wire=self.wire))

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    @property
    def sessions_evicted(self) -> int:
        """Sessions dropped by capacity pressure or the idle TTL."""
        return self._sessions.evicted_total

    # ------------------------------------------------------------------
    def quality_stats(self) -> Optional[Dict[str, Any]]:
        """The quality manager's observability snapshot (handler
        fallbacks, sandbox state, cache counters) plus the ``wire``
        negotiation block, or ``None`` when no policy is installed.
        Surfaced in the server ``/healthz`` and ``/metrics``."""
        if self.quality is None:
            return None
        stats = self.quality.stats()
        stats["wire"] = self.wire_stats()
        return stats

    def wire_stats(self) -> Dict[str, Any]:
        """Compact-wire negotiation counters aggregated over the live
        per-client sessions — surfaced as ``/metrics`` families."""
        sessions = self._sessions.values()
        compact_sessions = 0
        compact_sent = compact_received = 0
        for session in sessions:
            if session.wire_rep() == "compact":
                compact_sessions += 1
            compact_sent += session.stats.compact_sent
            compact_received += session.stats.compact_received
        return {
            "mode": self.wire,
            "sessions": len(sessions),
            "compact_sessions": compact_sessions,
            "compact_messages_sent": compact_sent,
            "compact_messages_received": compact_received,
        }
