"""Quality management over the XML SOAP path, via SOAP header entries.

§III-B.b ends with: the zero-padding scheme "permits legacy applications to
be integrated seamlessly with SOAP-binQ, but it could be removed by
transmitting quality attributes along with SOAP communications and then
using them to match sender with receiver actions."

This module implements that alternative for XML clients:

* requests carry ``<binq:attribute name=... value=...>`` SOAP header
  entries (the client's RTT estimate, or any application attribute);
* the server's quality policy reacts exactly as it does for binary
  clients, and the response carries a ``<binq:message-type>`` header
  naming the (possibly reduced) message type actually sent;
* :class:`XmlQualityClient` reads that header, decodes the reduced fields
  and projects them up to the application's type — quality-aware end to
  end, without a single binary byte on the wire.

The namespace is :data:`repro.xmlcore.names.BINQ_NS`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..netsim.clock import Clock, WallClock
from ..pbio import Format, FormatRegistry
from ..soap.client import SoapClient
from ..soap.encoding import decode_fields
from ..soap.envelope import (ParsedEnvelope, envelope_bytes_from_xml,
                             parse_envelope)
from ..soap.service import XML_CONTENT_TYPE
from ..transport import Channel
from ..xmlcore import BINQ_NS, Element, tostring
from .quality_handlers import trivial_handler
from .rtt import RttEstimator

#: prefix used for binq header entries in produced envelopes
_PREFIX = "binq"


def build_attribute_headers(attributes: Dict[str, float]) -> List[Element]:
    """SOAP header entries carrying quality attributes.

    >>> [el.tag for el in build_attribute_headers({"rtt": 0.5})]
    ['binq:attribute']
    """
    entries = []
    for name, value in sorted(attributes.items()):
        el = Element(f"{_PREFIX}:attribute", {
            f"xmlns:{_PREFIX}": BINQ_NS,
            "name": name,
            "value": repr(float(value)),
        })
        entries.append(el)
    return entries


def parse_attribute_headers(envelope: ParsedEnvelope) -> Dict[str, float]:
    """Extract quality attributes from an envelope's header entries."""
    out: Dict[str, float] = {}
    for entry in envelope.header_entries:
        if entry.local_name != "attribute":
            continue
        name = entry.get("name")
        raw = entry.get("value")
        if not name or raw is None:
            continue
        try:
            out[name] = float(raw)
        except ValueError:
            continue
    return out


def build_message_type_header(message_type: str) -> Element:
    """The response header naming the message type actually sent."""
    return Element(f"{_PREFIX}:message-type", {
        f"xmlns:{_PREFIX}": BINQ_NS,
        "name": message_type,
    })


def parse_message_type_header(envelope: ParsedEnvelope) -> Optional[str]:
    for entry in envelope.header_entries:
        if entry.local_name == "message-type":
            return entry.get("name")
    return None


class XmlQualityClient:
    """A quality-aware client speaking *pure XML* SOAP.

    Same adaptation behaviour as :class:`~repro.core.binclient
    .SoapBinClient` — RTT measured per call, smoothed, reported — but the
    attribute rides in a SOAP header entry and the reduced response is
    matched through the ``binq:message-type`` header rather than a wire
    format id.
    """

    def __init__(self, channel: Channel, registry: FormatRegistry,
                 clock: Optional[Clock] = None) -> None:
        self.channel = channel
        self.registry = registry
        self.clock = clock or WallClock()
        self.estimator = RttEstimator()
        self._soap = SoapClient(channel, registry)

    def call(self, operation: str, params: Dict[str, Any],
             input_format: Format,
             output_format: Format) -> Dict[str, Any]:
        headers: Dict[str, float] = {}
        if self.estimator.estimate is not None:
            headers["rtt"] = self.estimator.estimate
        payload = self._soap.build_request(
            operation, params, input_format,
            header_entries=build_attribute_headers(headers))
        start = self.clock.now()
        reply = self.channel.call(payload, XML_CONTENT_TYPE,
                                  {"SOAPAction": f'"{operation}"'})
        elapsed = self.clock.now() - start
        self.estimator.update(elapsed)
        envelope = parse_envelope(reply.body)
        envelope.raise_if_fault()
        response_el = envelope.first_body_element()
        wire_name = parse_message_type_header(envelope)
        wire_format = output_format
        if wire_name and wire_name != output_format.name \
                and self.registry.has_name(wire_name):
            wire_format = self.registry.by_name(wire_name)
        value = decode_fields(response_el, wire_format, self.registry)
        if wire_format.fingerprint != output_format.fingerprint:
            from .attributes import AttributeStore
            value = trivial_handler(value, wire_format, output_format,
                                    self.registry, AttributeStore())
        return value


def encode_quality_response(op_response_name: str, value: Dict[str, Any],
                            wire_format: Format,
                            registry: FormatRegistry) -> bytes:
    """Server side: encode a (possibly reduced) XML response with the
    message-type header."""
    body_xml = registry.xlate.emitter(wire_format)(value, op_response_name)
    header_xml = tostring(build_message_type_header(wire_format.name))
    return envelope_bytes_from_xml(body_xml, header_xml)
