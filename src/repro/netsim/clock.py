"""Clock abstractions: real time and deterministic virtual time.

The paper's quality-management experiments (Figs. 8 and 9) run clients
against links whose conditions change over minutes of wall-clock time.  To
reproduce their *shape* deterministically and in milliseconds of test time,
the application stack is written against a clock interface; benchmarks
inject a :class:`VirtualClock` and the integration tests a
:class:`WallClock`.
"""

from __future__ import annotations

import time


class Clock:
    """Interface: something that tells time and can wait."""

    def now(self) -> float:
        """Current time in seconds (monotonic)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Let ``seconds`` pass."""
        raise NotImplementedError


class WallClock(Clock):
    """Real time, via :func:`time.perf_counter`."""

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock(Clock):
    """Deterministic simulated time.

    ``sleep`` advances time instantly; nothing actually waits.  Time never
    goes backwards; advancing by a negative amount is an error so simulation
    bugs surface instead of silently warping.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Advance the clock and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds}")
        self._now += seconds
        return self._now
