"""Cross-traffic schedules: the iperf stand-in.

The paper emulates network variation by blasting UDP packets at varying
speeds with iperf while the application runs (§IV-C.1: "cross-traffic is
introduced using the IPerf tool, which sends UDP packets at varying
speeds").  A :class:`CrossTrafficSchedule` is the deterministic equivalent:
a piecewise-constant function from time to competing load in bits/second.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class Phase:
    """One constant-load interval ``[start, start + duration)``."""

    start: float
    duration: float
    load_bps: float

    @property
    def end(self) -> float:
        return self.start + self.duration


class CrossTrafficSchedule:
    """Piecewise-constant competing load over time.

    Load outside all phases is zero.  Phases must be non-overlapping and
    sorted; the factory helpers below guarantee that.
    """

    def __init__(self, phases: Sequence[Phase]) -> None:
        self.phases: List[Phase] = sorted(phases, key=lambda p: p.start)
        for earlier, later in zip(self.phases, self.phases[1:]):
            if later.start < earlier.end - 1e-12:
                raise ValueError(
                    f"overlapping cross-traffic phases at t={later.start}")
        self._starts = [p.start for p in self.phases]

    def load_at(self, t: float) -> float:
        """Competing load in bits/second at time ``t``."""
        idx = bisect_right(self._starts, t) - 1
        if idx < 0:
            return 0.0
        phase = self.phases[idx]
        if t < phase.end:
            return phase.load_bps
        return 0.0

    @property
    def end_time(self) -> float:
        return self.phases[-1].end if self.phases else 0.0

    def __repr__(self) -> str:
        return f"<CrossTrafficSchedule {len(self.phases)} phases>"

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    @classmethod
    def quiet(cls) -> "CrossTrafficSchedule":
        """No cross-traffic at all."""
        return cls([])

    @classmethod
    def steps(cls, levels_bps: Sequence[float],
              step_duration: float) -> "CrossTrafficSchedule":
        """Consecutive equal-length phases with the given loads.

        This is the shape of the Fig. 8 experiment: iperf stepped through a
        series of UDP rates while response times were recorded.
        """
        phases = [Phase(i * step_duration, step_duration, load)
                  for i, load in enumerate(levels_bps)]
        return cls(phases)

    @classmethod
    def square_wave(cls, low_bps: float, high_bps: float, period: float,
                    cycles: int) -> "CrossTrafficSchedule":
        """Alternate low/high load, ``cycles`` times."""
        phases = []
        for i in range(cycles):
            base = i * period
            phases.append(Phase(base, period / 2, low_bps))
            phases.append(Phase(base + period / 2, period / 2, high_bps))
        return cls(phases)

    @classmethod
    def random_bursts(cls, total_time: float, mean_load_bps: float,
                      burstiness: float = 0.5, n_phases: int = 20,
                      seed: int = 42) -> "CrossTrafficSchedule":
        """Seeded random load levels (used by the jitter ablation)."""
        rng = random.Random(seed)
        duration = total_time / n_phases
        phases = []
        for i in range(n_phases):
            factor = 1.0 + burstiness * (2 * rng.random() - 1)
            phases.append(Phase(i * duration, duration,
                                max(0.0, mean_load_bps * factor)))
        return cls(phases)
