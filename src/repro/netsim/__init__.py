"""Deterministic network emulation (the testbed stand-in).

The paper measured on a real 100 Mbps LAN and a real ADSL line, with iperf
generating UDP cross-traffic.  This package models those as deterministic
link models driven by virtual clocks, so the figure-reproduction benchmarks
are fast and repeatable while preserving the shapes that matter (who wins,
where the crossovers are, how adaptation reduces jitter).
"""

from .clock import Clock, VirtualClock, WallClock
from .crosstraffic import CrossTrafficSchedule, Phase
from .link import LinkModel, adsl, lan_100mbps
from .scenario import (Scenario, imaging_cross_traffic, imaging_scenario,
                       mdbond_cross_traffic, mdbond_scenario,
                       microbenchmark_links)

__all__ = [
    "Clock", "WallClock", "VirtualClock",
    "Phase", "CrossTrafficSchedule",
    "LinkModel", "lan_100mbps", "adsl",
    "Scenario", "microbenchmark_links", "imaging_cross_traffic",
    "mdbond_cross_traffic", "imaging_scenario", "mdbond_scenario",
]
