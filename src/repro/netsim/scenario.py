"""Named experiment scenarios combining links, traffic and clocks.

The microbenchmark figures all report two columns — "100 Mbps" and "ADSL" —
and the application figures add scripted cross-traffic.  This module gives
those setups names so that benchmark code reads like the paper's
experimental-setup paragraphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .clock import VirtualClock
from .crosstraffic import CrossTrafficSchedule
from .link import LinkModel, adsl, lan_100mbps


@dataclass
class Scenario:
    """A link plus the clock that experiment time advances on."""

    name: str
    link: LinkModel
    clock: VirtualClock

    @classmethod
    def create(cls, name: str, link: LinkModel) -> "Scenario":
        return cls(name=name, link=link, clock=VirtualClock())

    def transfer_time(self, nbytes: int) -> float:
        """One-way transfer time for ``nbytes`` at the current sim time."""
        return self.link.transfer_time(nbytes, self.clock.now())


def microbenchmark_links() -> Dict[str, LinkModel]:
    """The two links every microbenchmark figure sweeps over."""
    return {"100Mbps": lan_100mbps(), "ADSL": adsl()}


def imaging_cross_traffic(step_duration: float = 10.0) -> CrossTrafficSchedule:
    """The Fig. 8 traffic pattern: UDP load stepping up then back down on
    the 100 Mbps link, heavy enough to squeeze a ~1 MB/response workload."""
    levels = [0e6, 30e6, 60e6, 90e6, 97e6, 90e6, 60e6, 30e6, 0e6]
    return CrossTrafficSchedule.steps(levels, step_duration)


def mdbond_cross_traffic(step_duration: float = 5.0) -> CrossTrafficSchedule:
    """The Fig. 9 pattern: UDP bursts on the ADSL link while a scientist
    pulls molecular-dynamics timesteps from a server farm."""
    levels = [0.0, 0.3e6, 0.7e6, 0.9e6, 0.5e6, 0.9e6, 0.2e6, 0.0]
    return CrossTrafficSchedule.steps(levels, step_duration)


def imaging_scenario(jitter_s: float = 0.0005,
                     seed: int = 2004) -> Scenario:
    """100 Mbps link + stepped cross-traffic (imaging application)."""
    link = lan_100mbps(cross_traffic=imaging_cross_traffic(),
                       jitter_s=jitter_s, seed=seed)
    return Scenario.create("imaging", link)


def mdbond_scenario(jitter_s: float = 0.001, seed: int = 2004) -> Scenario:
    """ADSL link + bursty cross-traffic (molecular dynamics application)."""
    link = adsl(cross_traffic=mdbond_cross_traffic(), jitter_s=jitter_s,
                seed=seed)
    return Scenario.create("mdbond", link)
