"""Deterministic network link models.

A :class:`LinkModel` answers one question: how long does ``n`` bytes take to
cross this link at time ``t``?  The answer is

    one-way latency + n*8 / effective_bandwidth(t) + jitter(t)

where effective bandwidth is the nominal rate minus whatever cross-traffic
(:mod:`repro.netsim.crosstraffic`) is consuming, and jitter is drawn from a
seeded RNG so every run of a benchmark produces the same series.

Two presets mirror the paper's testbed:

* :func:`lan_100mbps` — the 100 Mbps single-hop laboratory Ethernet link,
* :func:`adsl` — the ~1 Mbps peak home ADSL link.
"""

from __future__ import annotations

import random
from typing import Optional

from .crosstraffic import CrossTrafficSchedule


class LinkModel:
    """A point-to-point link with bandwidth, latency, jitter and cross-traffic.

    Parameters
    ----------
    bandwidth_bps:
        Nominal capacity in bits/second.
    latency_s:
        One-way propagation + per-hop processing delay in seconds.
    jitter_s:
        Standard deviation of a truncated-gaussian latency jitter; 0 gives a
        perfectly smooth link.
    cross_traffic:
        Optional schedule of competing UDP load (iperf-style).
    min_bandwidth_fraction:
        Floor on the fraction of nominal bandwidth that remains available no
        matter how heavy the cross-traffic (UDP blasting a real switch still
        lets some TCP through; 0.05 matches the qualitative Fig. 8 behaviour).
    seed:
        Jitter RNG seed; same seed = same series.
    """

    def __init__(self, bandwidth_bps: float, latency_s: float,
                 jitter_s: float = 0.0,
                 cross_traffic: Optional[CrossTrafficSchedule] = None,
                 min_bandwidth_fraction: float = 0.05,
                 seed: int = 2004) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self.jitter_s = float(jitter_s)
        self.cross_traffic = cross_traffic
        self.min_bandwidth_fraction = float(min_bandwidth_fraction)
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    def effective_bandwidth(self, at_time: float = 0.0) -> float:
        """Bits/second available to us at ``at_time``."""
        if self.cross_traffic is None:
            return self.bandwidth_bps
        load = self.cross_traffic.load_at(at_time)
        floor = self.bandwidth_bps * self.min_bandwidth_fraction
        return max(self.bandwidth_bps - load, floor)

    def jitter(self) -> float:
        """One jitter sample (non-negative, capped at 4 sigma)."""
        if self.jitter_s <= 0:
            return 0.0
        sample = abs(self._rng.gauss(0.0, self.jitter_s))
        return min(sample, 4 * self.jitter_s)

    def transfer_time(self, nbytes: int, at_time: float = 0.0) -> float:
        """Seconds for ``nbytes`` to cross the link one-way at ``at_time``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        serialization = nbytes * 8.0 / self.effective_bandwidth(at_time)
        return self.latency_s + serialization + self.jitter()

    def round_trip_time(self, request_bytes: int, response_bytes: int,
                        at_time: float = 0.0,
                        server_time_s: float = 0.0) -> float:
        """Request out + server work + response back."""
        out = self.transfer_time(request_bytes, at_time)
        back = self.transfer_time(response_bytes, at_time + out + server_time_s)
        return out + server_time_s + back

    def __repr__(self) -> str:
        mbps = self.bandwidth_bps / 1e6
        return (f"<LinkModel {mbps:g} Mbps latency={self.latency_s * 1e3:g}ms"
                f" jitter={self.jitter_s * 1e3:g}ms>")


def lan_100mbps(cross_traffic: Optional[CrossTrafficSchedule] = None,
                jitter_s: float = 0.0, seed: int = 2004) -> LinkModel:
    """The paper's 100 Mbps single-hop laboratory Ethernet link."""
    return LinkModel(100e6, latency_s=0.0002, jitter_s=jitter_s,
                     cross_traffic=cross_traffic, seed=seed)


def adsl(cross_traffic: Optional[CrossTrafficSchedule] = None,
         jitter_s: float = 0.002, seed: int = 2004) -> LinkModel:
    """The paper's home ADSL link: ~1 Mbps peak, tens of ms latency."""
    return LinkModel(1e6, latency_s=0.015, jitter_s=jitter_s,
                     cross_traffic=cross_traffic, seed=seed)
