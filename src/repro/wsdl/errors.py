"""Exception types for the WSDL layer."""

from __future__ import annotations


class WsdlError(Exception):
    """A WSDL document is invalid or unsupported."""


class SchemaError(WsdlError):
    """The embedded XML-Schema section is invalid or unsupported."""


class CompileError(WsdlError):
    """Stub generation failed."""
