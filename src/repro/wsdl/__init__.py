"""WSDL: parsing, emission and the stub-generating compiler.

The entry point mirrors the original system's pipeline — WSDL (plus an
optional quality file) in, stubs out::

    from repro.wsdl import WsdlCompiler, parse_wsdl

    compiler = WsdlCompiler.from_text(wsdl_text)
    stubs = compiler.load_stubs(quality_text)
    client = stubs["Client"](channel)           # one method per operation
    skeleton_cls = stubs["Skeleton"]            # subclass + implement
"""

from .compiler import (CompiledInterface, CompiledOperation, WsdlCompiler)
from .emit import emit_wsdl
from .errors import CompileError, SchemaError, WsdlError
from .model import WsdlDocument, WsdlMessage, WsdlOperation, WsdlPortType
from .parser import parse_wsdl
from .schema import parse_complex_type, parse_schema_types, resolve_type_name

__all__ = [
    "WsdlError", "SchemaError", "CompileError",
    "WsdlMessage", "WsdlOperation", "WsdlPortType", "WsdlDocument",
    "parse_wsdl", "emit_wsdl",
    "parse_schema_types", "parse_complex_type", "resolve_type_name",
    "WsdlCompiler", "CompiledInterface", "CompiledOperation",
]
