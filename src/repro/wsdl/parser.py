"""Parsing WSDL documents into the object model."""

from __future__ import annotations

from typing import List, Tuple

from ..pbio import FieldType
from ..xmlcore import Element, parse
from .errors import WsdlError
from .model import WsdlDocument, WsdlMessage, WsdlOperation, WsdlPortType
from .schema import parse_schema_types, resolve_type_name


def parse_wsdl(text: str) -> WsdlDocument:
    """Parse WSDL text into a validated :class:`WsdlDocument`.

    Supported layout (the subset Soup's WSDL compiler reads)::

        <definitions name=... targetNamespace=...>
          <types><xsd:schema> complexTypes... </xsd:schema></types>
          <message name=...><part name=... type=.../>...</message>
          <portType name=...>
            <operation name=...>
              <input message="tns:Req"/><output message="tns:Res"/>
            </operation>
          </portType>
          <service name=...><port...><soap:address location=.../></port></service>
        </definitions>

    Bindings are accepted and skipped — the transport binding in this stack
    is always SOAP-over-HTTP (or its binary sibling on the same endpoint).
    """
    root = parse(text)
    if root.local_name != "definitions":
        raise WsdlError(f"root element is <{root.tag}>, expected definitions")
    document = WsdlDocument(
        name=root.get("name", "service"),
        target_namespace=root.get("targetNamespace", "urn:repro:service"))

    for child in root.elements():
        local = child.local_name
        if local == "types":
            for schema_el in child.findall("schema"):
                document.types.update(parse_schema_types(schema_el))
        elif local == "message":
            document.add_message(_parse_message(child))
        elif local == "portType":
            port_type = _parse_port_type(child)
            document.port_types[port_type.name] = port_type
        elif local == "service":
            document.location = _parse_service_location(child)
        elif local in ("binding", "documentation", "import"):
            continue
        else:
            raise WsdlError(f"unsupported WSDL construct <{child.tag}>")

    document.validate()
    return document


def _parse_message(message_el: Element) -> WsdlMessage:
    name = message_el.get("name")
    if not name:
        raise WsdlError("message requires a name")
    parts: List[Tuple[str, FieldType]] = []
    for part in message_el.findall("part"):
        part_name = part.get("name")
        type_name = part.get("type")
        if not part_name or not type_name:
            raise WsdlError(f"message {name!r}: part needs name and type")
        parts.append((part_name, resolve_type_name(type_name)))
    return WsdlMessage(name=name, parts=parts)


def _parse_port_type(pt_el: Element) -> WsdlPortType:
    name = pt_el.get("name")
    if not name:
        raise WsdlError("portType requires a name")
    port_type = WsdlPortType(name=name)
    for op_el in pt_el.findall("operation"):
        op_name = op_el.get("name")
        if not op_name:
            raise WsdlError(f"portType {name!r}: operation requires a name")
        input_el = op_el.find("input")
        output_el = op_el.find("output")
        if input_el is None or output_el is None:
            raise WsdlError(
                f"operation {op_name!r}: request/response operations need "
                f"both input and output")
        port_type.operations.append(WsdlOperation(
            name=op_name,
            input_message=_message_ref(input_el, op_name),
            output_message=_message_ref(output_el, op_name)))
    return port_type


def _message_ref(el: Element, op_name: str) -> str:
    ref = el.get("message")
    if not ref:
        raise WsdlError(f"operation {op_name!r}: missing message attribute")
    return ref.rsplit(":", 1)[-1]


def _parse_service_location(service_el: Element) -> str:
    for port in service_el.findall("port"):
        address = port.find("address")
        if address is not None:
            location = address.get("location")
            if location:
                return location
    raise WsdlError("service declares no soap:address location")
