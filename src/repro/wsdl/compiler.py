"""The WSDL compiler: formats, conversion handlers and generated stubs.

Fig. 1's pipeline: "a WSDL compiler that generates the client and server
side stubs, with conversion handlers for XML/binary interconversion.
Quality attributes are specified in a quality file, which is compiled
jointly with the WSDL file to generate stub files."

:class:`WsdlCompiler` does all three jobs:

* :meth:`compile` registers a PBIO format for every message (and every
  complexType), returning a :class:`CompiledInterface` with the operation
  table;
* :meth:`generate_client_source` / :meth:`generate_server_source` emit
  *actual Python source text* for the stubs — one method per operation,
  with the message formats baked in — mirroring the generated C stubs of
  the original system;
* :meth:`load_stubs` compiles that source (``compile()``/``exec``) and
  returns the stub classes ready to instantiate.  Passing quality-file text
  compiles it jointly: the service stub installs the policy and the client
  stub gains ``update_attribute``.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..pbio import Format, FormatRegistry
from .errors import CompileError
from .model import WsdlDocument
from .parser import parse_wsdl


@dataclass
class CompiledOperation:
    """Operation with resolved message formats."""

    name: str
    input_format: Format
    output_format: Format

    @property
    def python_name(self) -> str:
        return _snake_case(self.name)


@dataclass
class CompiledInterface:
    """The output of :meth:`WsdlCompiler.compile`."""

    document: WsdlDocument
    registry: FormatRegistry
    operations: List[CompiledOperation] = field(default_factory=list)

    def operation(self, name: str) -> CompiledOperation:
        for op in self.operations:
            if op.name == name or op.python_name == name:
                return op
        raise CompileError(f"no operation named {name!r}")


class WsdlCompiler:
    """Compiles a WSDL document (plus optional quality file) into stubs."""

    def __init__(self, document: WsdlDocument,
                 registry: Optional[FormatRegistry] = None) -> None:
        self.document = document
        self.registry = registry if registry is not None else FormatRegistry()
        self._compiled: Optional[CompiledInterface] = None

    @classmethod
    def from_text(cls, wsdl_text: str,
                  registry: Optional[FormatRegistry] = None) -> "WsdlCompiler":
        return cls(parse_wsdl(wsdl_text), registry)

    # ------------------------------------------------------------------
    def compile(self) -> CompiledInterface:
        """Register all formats and build the operation table."""
        if self._compiled is not None:
            return self._compiled
        self.document.validate()
        for fmt in self.document.types.values():
            self.registry.register(fmt)
        message_formats: Dict[str, Format] = {}
        for message in self.document.messages.values():
            fmt = message.to_format()
            self.registry.register(fmt)
            message_formats[message.name] = fmt
        interface = CompiledInterface(document=self.document,
                                      registry=self.registry)
        for op in self.document.all_operations():
            interface.operations.append(CompiledOperation(
                name=op.name,
                input_format=message_formats[op.input_message],
                output_format=message_formats[op.output_message]))
        self._compiled = interface
        return interface

    # ------------------------------------------------------------------
    # stub source generation
    # ------------------------------------------------------------------
    def generate_client_source(self) -> str:
        """Python source for the client-side stub class."""
        interface = self.compile()
        class_name = f"{_camel(self.document.name)}Client"
        out = io.StringIO()
        out.write(_CLIENT_PREAMBLE.format(class_name=class_name,
                                          service=self.document.name))
        for op in interface.operations:
            params = [name for name, _ in _op_fields(op.input_format)]
            arglist = ", ".join(params)
            out.write(_CLIENT_METHOD.format(
                python_name=op.python_name,
                arglist=(", " + arglist) if arglist else "",
                params_dict=", ".join(f"{p!r}: {p}" for p in params),
                op_name=op.name,
                input_format=op.input_format.name,
                output_format=op.output_format.name,
            ))
        return out.getvalue()

    def generate_server_source(self) -> str:
        """Python source for the server-side skeleton class."""
        interface = self.compile()
        class_name = f"{_camel(self.document.name)}Skeleton"
        out = io.StringIO()
        out.write(_SERVER_PREAMBLE.format(class_name=class_name,
                                          service=self.document.name))
        for op in interface.operations:
            out.write(_SERVER_METHOD.format(
                python_name=op.python_name,
                op_name=op.name,
                input_format=op.input_format.name,
                output_format=op.output_format.name,
            ))
        out.write(_SERVER_BIND.format(class_name=class_name))
        for op in interface.operations:
            out.write(_SERVER_BIND_OP.format(
                python_name=op.python_name,
                op_name=op.name,
                input_format=op.input_format.name,
                output_format=op.output_format.name,
            ))
        out.write("        return service\n")
        return out.getvalue()

    # ------------------------------------------------------------------
    def load_stubs(self, quality_text: Optional[str] = None) -> Dict[str, Any]:
        """Compile and execute the generated stub sources.

        Returns a namespace with ``Client`` and ``Skeleton`` classes plus
        the generated sources (``client_source`` / ``server_source``) for
        inspection.  When ``quality_text`` is given it is compiled jointly:
        the skeleton's ``create_service`` installs the policy.
        """
        interface = self.compile()
        client_source = self.generate_client_source()
        server_source = self.generate_server_source()
        namespace: Dict[str, Any] = {
            "__builtins__": __builtins__,
            "_REGISTRY": self.registry,
            "_QUALITY_TEXT": quality_text,
        }
        exec(compile(client_source, f"<wsdl-client:{self.document.name}>",
                     "exec"), namespace)
        exec(compile(server_source, f"<wsdl-server:{self.document.name}>",
                     "exec"), namespace)
        client_cls = namespace[f"{_camel(self.document.name)}Client"]
        skeleton_cls = namespace[f"{_camel(self.document.name)}Skeleton"]
        return {
            "Client": client_cls,
            "Skeleton": skeleton_cls,
            "interface": interface,
            "registry": self.registry,
            "client_source": client_source,
            "server_source": server_source,
        }


def _op_fields(fmt: Format):
    return [(f.name, f.ftype) for f in fmt.fields]


def _snake_case(name: str) -> str:
    out = []
    for i, ch in enumerate(name):
        if ch.isupper() and i > 0 and (not name[i - 1].isupper()):
            out.append("_")
        out.append(ch.lower())
    return "".join(out).replace("-", "_")


def _camel(name: str) -> str:
    parts = name.replace("-", "_").split("_")
    return "".join(p[:1].upper() + p[1:] for p in parts if p)


_CLIENT_PREAMBLE = '''\
"""Generated client stub for the {service!r} service. Do not edit."""

from repro.core import QualityManager, SoapBinClient
from repro.soap import SoapClient


class {class_name}:
    """Client stub: one method per WSDL operation.

    ``style`` selects the wire protocol: "bin" (SOAP-bin, the default) or
    "xml" (standard SOAP, for interoperating with non-bin services).
    """

    def __init__(self, channel, style="bin", clock=None, quality_text=None):
        self.registry = _REGISTRY
        self.style = style
        quality = None
        if quality_text is not None:
            quality = QualityManager.from_text(quality_text, self.registry)
        self.quality = quality
        if style == "bin":
            self._client = SoapBinClient(channel, self.registry,
                                         clock=clock, quality=quality)
        elif style == "xml":
            self._client = SoapClient(channel, self.registry)
        else:
            raise ValueError("style must be 'bin' or 'xml'")

    def update_attribute(self, name, value):
        """Dynamically update a quality attribute (SOAP-binQ API)."""
        if self.quality is None:
            raise RuntimeError("no quality file was compiled into this stub")
        self.quality.update_attribute(name, value)

    def _invoke(self, op_name, params, input_format, output_format):
        return self._client.call(op_name, params,
                                 self.registry.by_name(input_format),
                                 self.registry.by_name(output_format))
'''

_CLIENT_METHOD = '''
    def {python_name}(self{arglist}):
        """Invoke the {op_name!r} operation."""
        params = {{{params_dict}}}
        return self._invoke({op_name!r}, params,
                            {input_format!r}, {output_format!r})
'''

_SERVER_PREAMBLE = '''\
"""Generated server skeleton for the {service!r} service. Do not edit."""

from repro.core import SoapBinService


class {class_name}:
    """Server skeleton: subclass and implement one method per operation."""

    def __init__(self):
        self.registry = _REGISTRY
'''

_SERVER_METHOD = '''
    def {python_name}(self, params):
        """Implement the {op_name!r} operation.

        ``params`` is a dict matching format {input_format!r}; return a
        dict matching format {output_format!r}.
        """
        raise NotImplementedError(
            "implement {python_name}() in your subclass")
'''

_SERVER_BIND = '''
    def create_service(self, quality_text=None, handlers=None):
        """Build a SoapBinService dispatching to this implementation.

        The quality file compiled jointly with the WSDL (if any) is
        installed unless overridden here.
        """
        service = SoapBinService(self.registry,
                                 quality_text=quality_text or _QUALITY_TEXT,
                                 handlers=handlers)
'''

_SERVER_BIND_OP = '''\
        service.add_operation({op_name!r},
                              self.registry.by_name({input_format!r}),
                              self.registry.by_name({output_format!r}),
                              self.{python_name})
'''
