"""XML-Schema subset parsing: complexTypes -> PBIO formats.

"The schema used in Soup identifies the basic types as integer, char,
string and float, and it allows the user to build more complex types
through the use of lists and structs." (§III-B)

Supported constructs::

    <xsd:complexType name="Point">
      <xsd:sequence>
        <xsd:element name="x" type="xsd:double"/>
        <xsd:element name="y" type="xsd:double"/>
        <xsd:element name="history" type="xsd:double" maxOccurs="unbounded"/>
        <xsd:element name="window" type="xsd:int" maxOccurs="4"/>
        <xsd:element name="parent" type="tns:Point0"/>
      </xsd:sequence>
    </xsd:complexType>

``maxOccurs="unbounded"`` produces a variable-length array, a numeric
``maxOccurs`` > 1 a fixed-length array, a ``tns:``-prefixed type a nested
struct.  Anything outside this subset raises :class:`SchemaError` loudly —
silent partial parses of interface definitions are how stubs end up subtly
wrong.
"""

from __future__ import annotations

from typing import Dict, List

from ..pbio import Array, Field, FieldType, Format, StructRef, schema_type
from ..pbio.types import is_base_schema_type
from ..xmlcore import Element
from .errors import SchemaError


def parse_schema_types(schema_el: Element) -> Dict[str, Format]:
    """Parse all complexTypes under an ``<xsd:schema>`` element."""
    types: Dict[str, Format] = {}
    for child in schema_el.elements():
        local = child.local_name
        if local == "complexType":
            fmt = parse_complex_type(child)
            types[fmt.name] = fmt
        elif local in ("element", "annotation", "import", "simpleType"):
            # top-level elements/annotations are tolerated and skipped;
            # simpleType restrictions are outside the Soup subset
            continue
        else:
            raise SchemaError(f"unsupported schema construct <{child.tag}>")
    return types


def parse_complex_type(ct_el: Element) -> Format:
    """Parse one ``<xsd:complexType>`` into a :class:`Format`."""
    name = ct_el.get("name")
    if not name:
        raise SchemaError("complexType requires a name attribute")
    sequence = ct_el.find("sequence")
    if sequence is None:
        raise SchemaError(f"complexType {name!r} must contain a sequence")
    fields: List[Field] = []
    for element in sequence.elements():
        if element.local_name != "element":
            raise SchemaError(
                f"complexType {name!r}: unsupported child <{element.tag}>")
        fields.append(_parse_element(element, name))
    return Format(name, fields)


def _parse_element(el: Element, owner: str) -> Field:
    field_name = el.get("name")
    type_name = el.get("type")
    if not field_name or not type_name:
        raise SchemaError(
            f"complexType {owner!r}: element needs name and type")
    base = resolve_type_name(type_name)
    max_occurs = el.get("maxOccurs", "1")
    ftype = _apply_occurs(base, max_occurs, owner, field_name)
    return Field(field_name, ftype)


def resolve_type_name(type_name: str) -> FieldType:
    """Map a schema type QName to a PBIO field type."""
    local = type_name.rsplit(":", 1)[-1]
    prefix = type_name.rsplit(":", 1)[0] if ":" in type_name else None
    if prefix in (None, "xsd", "xs") and is_base_schema_type(local):
        return schema_type(local)
    if prefix in (None, "xsd", "xs"):
        raise SchemaError(f"unsupported base schema type {type_name!r}")
    return StructRef(local)


def _apply_occurs(base: FieldType, max_occurs: str, owner: str,
                  field_name: str) -> FieldType:
    if max_occurs == "1":
        return base
    if max_occurs == "unbounded":
        return Array(base, None)
    try:
        count = int(max_occurs)
    except ValueError:
        raise SchemaError(
            f"{owner}.{field_name}: bad maxOccurs {max_occurs!r}")
    if count < 1:
        raise SchemaError(
            f"{owner}.{field_name}: maxOccurs must be >= 1")
    if count == 1:
        return base
    return Array(base, count)


def emit_complex_type(fmt: Format, tns_prefix: str = "tns") -> Element:
    """Inverse of :func:`parse_complex_type` (used by the WSDL emitter)."""
    ct = Element("xsd:complexType", {"name": fmt.name})
    seq = ct.subelement("xsd:sequence")
    for field in fmt.fields:
        seq.append(_emit_element(field.name, field.ftype, tns_prefix))
    return ct


_PRIM_TO_XSD = {
    "int8": "xsd:byte",
    "int16": "xsd:short",
    "int32": "xsd:int",
    "int64": "xsd:long",
    "uint8": "xsd:unsignedByte",
    "uint16": "xsd:unsignedShort",
    "uint32": "xsd:unsignedInt",
    "uint64": "xsd:unsignedLong",
    "float32": "xsd:float",
    "float64": "xsd:double",
    "char": "xsd:char",
    "string": "xsd:string",
}

_XSD_EXTRA_BASES = {
    "unsignedByte": "uint8",
    "unsignedShort": "uint16",
    "unsignedLong": "uint64",
}


def _emit_element(name: str, ftype: FieldType, tns_prefix: str) -> Element:
    attrs = {"name": name}
    occurs = None
    inner = ftype
    if isinstance(inner, Array):
        occurs = "unbounded" if inner.length is None else str(inner.length)
        inner = inner.element
        if isinstance(inner, Array):
            raise SchemaError(
                f"element {name!r}: nested arrays cannot be expressed in "
                f"the schema subset; wrap the inner array in a complexType")
    if isinstance(inner, StructRef):
        attrs["type"] = f"{tns_prefix}:{inner.format_name}"
    else:
        attrs["type"] = _PRIM_TO_XSD[inner.kind]
    if occurs is not None:
        attrs["maxOccurs"] = occurs
        attrs["minOccurs"] = "0"
    return Element("xsd:element", attrs)
