"""The WSDL object model.

A deliberately small model covering the subset the paper's Soup stack uses:
types (complexTypes built from the four base types plus lists and structs),
messages with typed parts, portTypes with request/response operations, and
a service location.  PBIO :class:`~repro.pbio.fmt.Format` objects double as
the representation of complex types — the WSDL compiler's whole point is
that message schemas *are* binary format descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..pbio import Field, Format, FieldType
from .errors import WsdlError


@dataclass
class WsdlMessage:
    """A named message with ordered, typed parts."""

    name: str
    parts: List[Tuple[str, FieldType]] = field(default_factory=list)

    def to_format(self) -> Format:
        """The PBIO format equivalent of this message."""
        return Format(self.name, [Field(n, t) for n, t in self.parts])


@dataclass
class WsdlOperation:
    """One request/response operation."""

    name: str
    input_message: str
    output_message: str


@dataclass
class WsdlPortType:
    """A named set of operations."""

    name: str
    operations: List[WsdlOperation] = field(default_factory=list)

    def operation(self, name: str) -> WsdlOperation:
        for op in self.operations:
            if op.name == name:
                return op
        raise WsdlError(f"portType {self.name!r} has no operation {name!r}")


@dataclass
class WsdlDocument:
    """A parsed (or programmatically built) WSDL definition."""

    name: str
    target_namespace: str = "urn:repro:service"
    #: complex types, keyed by name (PBIO formats stand in for XSD types)
    types: Dict[str, Format] = field(default_factory=dict)
    messages: Dict[str, WsdlMessage] = field(default_factory=dict)
    port_types: Dict[str, WsdlPortType] = field(default_factory=dict)
    #: service location URL (soap:address), if declared
    location: Optional[str] = None

    # ------------------------------------------------------------------
    def add_type(self, fmt: Format) -> Format:
        self.types[fmt.name] = fmt
        return fmt

    def add_message(self, message: WsdlMessage) -> WsdlMessage:
        self.messages[message.name] = message
        return message

    def message(self, name: str) -> WsdlMessage:
        try:
            return self.messages[name]
        except KeyError:
            raise WsdlError(f"no message named {name!r}")

    def single_port_type(self) -> WsdlPortType:
        """The document's only portType (the common case)."""
        if len(self.port_types) != 1:
            raise WsdlError(
                f"expected exactly one portType, found "
                f"{sorted(self.port_types)}")
        return next(iter(self.port_types.values()))

    def all_operations(self) -> List[WsdlOperation]:
        return [op for pt in self.port_types.values()
                for op in pt.operations]

    def validate(self) -> None:
        """Check cross-references: operations -> messages -> types."""
        from ..pbio.types import struct_refs
        for op in self.all_operations():
            for message_name in (op.input_message, op.output_message):
                if message_name not in self.messages:
                    raise WsdlError(
                        f"operation {op.name!r} references unknown message "
                        f"{message_name!r}")
        for message in self.messages.values():
            for part_name, ftype in message.parts:
                for ref in struct_refs(ftype):
                    if ref not in self.types:
                        raise WsdlError(
                            f"message {message.name!r} part {part_name!r} "
                            f"references unknown type {ref!r}")
        for fmt in self.types.values():
            for ref in fmt.referenced_formats():
                if ref not in self.types:
                    raise WsdlError(
                        f"type {fmt.name!r} references unknown type {ref!r}")
