"""Emitting WSDL documents from the object model.

Services *advertise* themselves through WSDL (the remote-visualization
portal "advertises its services through a set of WSDL files", §IV-C.4);
this module renders a :class:`~repro.wsdl.model.WsdlDocument` back to XML
text that :func:`~repro.wsdl.parser.parse_wsdl` round-trips.
"""

from __future__ import annotations

from ..pbio import Array, FieldType, Primitive, StructRef
from ..xmlcore import WSDL_NS, WSDL_SOAP_NS, XSD_NS, Element, tostring
from .model import WsdlDocument
from .schema import _PRIM_TO_XSD, emit_complex_type
from .errors import WsdlError


def emit_wsdl(document: WsdlDocument, indent: int = 2) -> str:
    """Render a WSDL document as XML text."""
    root = Element("wsdl:definitions", {
        "name": document.name,
        "targetNamespace": document.target_namespace,
        "xmlns:wsdl": WSDL_NS,
        "xmlns:soap": WSDL_SOAP_NS,
        "xmlns:xsd": XSD_NS,
        "xmlns:tns": document.target_namespace,
    })

    if document.types:
        types_el = root.subelement("wsdl:types")
        schema = types_el.subelement(
            "xsd:schema", {"targetNamespace": document.target_namespace})
        for fmt in document.types.values():
            schema.append(emit_complex_type(fmt))

    for message in document.messages.values():
        message_el = root.subelement("wsdl:message",
                                     {"name": message.name})
        for part_name, ftype in message.parts:
            message_el.subelement("wsdl:part", {
                "name": part_name,
                "type": _part_type_name(ftype, message.name, part_name),
            })

    for port_type in document.port_types.values():
        pt_el = root.subelement("wsdl:portType", {"name": port_type.name})
        for op in port_type.operations:
            op_el = pt_el.subelement("wsdl:operation", {"name": op.name})
            op_el.subelement("wsdl:input",
                             {"message": f"tns:{op.input_message}"})
            op_el.subelement("wsdl:output",
                             {"message": f"tns:{op.output_message}"})

    if document.location is not None:
        service_el = root.subelement("wsdl:service",
                                     {"name": document.name})
        port_el = service_el.subelement("wsdl:port", {
            "name": f"{document.name}Port",
            "binding": f"tns:{document.name}Binding",
        })
        port_el.subelement("soap:address", {"location": document.location})

    return tostring(root, indent=indent, xml_declaration=True)


def _part_type_name(ftype: FieldType, message: str, part: str) -> str:
    if isinstance(ftype, Primitive):
        return _PRIM_TO_XSD[ftype.kind]
    if isinstance(ftype, StructRef):
        return f"tns:{ftype.format_name}"
    if isinstance(ftype, Array):
        raise WsdlError(
            f"message {message!r} part {part!r}: array parts must be "
            f"wrapped in a complexType (the Soup convention)")
    raise WsdlError(f"message {message!r} part {part!r}: "
                    f"unsupported type {ftype!r}")
