"""Sun RPC client over TCP with a persistent connection."""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Optional, Tuple

from .errors import RpcDenied, RpcProtocolError
from .rpc import (ACCEPT_STAT_NAMES, SUCCESS, CallHeader, decode_reply,
                  encode_call, read_record, write_record)

_xid_counter = itertools.count(0x10000)


class RpcClient:
    """Client for one (program, version) on one server.

    Thread-safe: calls are serialized over the single TCP connection, which
    matches the synchronous Sun RPC semantics the paper benchmarks.
    """

    def __init__(self, address: Tuple[str, int], prog: int, vers: int,
                 timeout: float = 30.0) -> None:
        self.address = address
        self.prog = prog
        self.vers = vers
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self.calls_made = 0

    def _connection(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(self.address,
                                                  timeout=self.timeout)
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return self._sock

    def call(self, proc: int, args: bytes = b"") -> bytes:
        """Invoke procedure ``proc`` and return its XDR result bytes."""
        xid = next(_xid_counter)
        message = encode_call(CallHeader(xid=xid, prog=self.prog,
                                         vers=self.vers, proc=proc), args)
        with self._lock:
            sock = self._connection()
            write_record(sock, message)
            response = read_record(sock)
        if response is None:
            self.close()
            raise RpcProtocolError("server closed connection without reply")
        reply_xid, accept_stat, results = decode_reply(response)
        if reply_xid != xid:
            raise RpcProtocolError(
                f"xid mismatch: sent {xid}, got {reply_xid}")
        if accept_stat != SUCCESS:
            name = ACCEPT_STAT_NAMES.get(accept_stat, str(accept_stat))
            raise RpcDenied(name)
        self.calls_made += 1
        return results

    def ping(self) -> None:
        """Invoke the null procedure (procedure 0)."""
        self.call(0)

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                finally:
                    self._sock = None

    def __enter__(self) -> "RpcClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
