"""XDR (RFC 4506) encoding — Sun RPC's data representation.

The paper's Fig. 4 baseline is "TCP-based Sun RPC (which uses the XDR data
representation)".  XDR is a canonical big-endian format with 4-byte
alignment: both peers always translate to/from the standard — precisely the
"symmetric up and down translation" PBIO's receiver-makes-right design
avoids, which is why the comparison is interesting.

This module gives stream-style encoder/decoder classes covering the XDR
types the benchmark workloads need: integers, hypers, floats, doubles,
booleans, strings, opaques and arrays.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Sequence, TypeVar

from .errors import XdrError

T = TypeVar("T")

_PAD = b"\x00\x00\x00"


def _padding(n: int) -> int:
    return (4 - (n % 4)) % 4


class XdrEncoder:
    """Accumulates XDR-encoded data."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def getvalue(self) -> bytes:
        return b"".join(self._parts)

    # -- primitives ----------------------------------------------------
    def pack_int(self, value: int) -> None:
        try:
            self._parts.append(struct.pack(">i", value))
        except struct.error as exc:
            raise XdrError(f"int out of range: {exc}")

    def pack_uint(self, value: int) -> None:
        try:
            self._parts.append(struct.pack(">I", value))
        except struct.error as exc:
            raise XdrError(f"uint out of range: {exc}")

    def pack_hyper(self, value: int) -> None:
        try:
            self._parts.append(struct.pack(">q", value))
        except struct.error as exc:
            raise XdrError(f"hyper out of range: {exc}")

    def pack_bool(self, value: bool) -> None:
        self.pack_int(1 if value else 0)

    def pack_float(self, value: float) -> None:
        self._parts.append(struct.pack(">f", value))

    def pack_double(self, value: float) -> None:
        self._parts.append(struct.pack(">d", value))

    # -- opaque / string -----------------------------------------------
    def pack_fixed_opaque(self, data: bytes, n: int) -> None:
        if len(data) != n:
            raise XdrError(f"fixed opaque expected {n} bytes, "
                           f"got {len(data)}")
        self._parts.append(data)
        self._parts.append(_PAD[:_padding(n)])

    def pack_opaque(self, data: bytes) -> None:
        self.pack_uint(len(data))
        self._parts.append(bytes(data))
        self._parts.append(_PAD[:_padding(len(data))])

    def pack_string(self, value: str) -> None:
        self.pack_opaque(value.encode("utf-8"))

    # -- arrays ----------------------------------------------------------
    def pack_fixed_array(self, items: Sequence[T], n: int,
                         pack_item: Callable[[T], None]) -> None:
        if len(items) != n:
            raise XdrError(f"fixed array expected {n} items, "
                           f"got {len(items)}")
        for item in items:
            pack_item(item)

    def pack_array(self, items: Sequence[T],
                   pack_item: Callable[[T], None]) -> None:
        self.pack_uint(len(items))
        for item in items:
            pack_item(item)

    def pack_int_array(self, values: Sequence[int]) -> None:
        """Bulk path for the Fig. 4 integer-array workload."""
        self.pack_uint(len(values))
        try:
            self._parts.append(struct.pack(f">{len(values)}i", *values))
        except struct.error as exc:
            raise XdrError(f"int array: {exc}")


class XdrDecoder:
    """Decodes XDR data from a buffer."""

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def done(self) -> bool:
        return self._pos == len(self._data)

    def _take(self, n: int) -> bytes:
        end = self._pos + n
        if end > len(self._data):
            raise XdrError(f"truncated XDR data: wanted {n} bytes, "
                           f"have {len(self._data) - self._pos}")
        out = self._data[self._pos:end]
        self._pos = end
        return out

    # -- primitives ----------------------------------------------------
    def unpack_int(self) -> int:
        return struct.unpack(">i", self._take(4))[0]

    def unpack_uint(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def unpack_hyper(self) -> int:
        return struct.unpack(">q", self._take(8))[0]

    def unpack_bool(self) -> bool:
        return self.unpack_int() != 0

    def unpack_float(self) -> float:
        return struct.unpack(">f", self._take(4))[0]

    def unpack_double(self) -> float:
        return struct.unpack(">d", self._take(8))[0]

    # -- opaque / string -----------------------------------------------
    def unpack_fixed_opaque(self, n: int) -> bytes:
        data = self._take(n)
        self._take(_padding(n))
        return data

    def unpack_opaque(self) -> bytes:
        n = self.unpack_uint()
        return self.unpack_fixed_opaque(n)

    def unpack_string(self) -> str:
        return self.unpack_opaque().decode("utf-8")

    # -- arrays ----------------------------------------------------------
    def unpack_fixed_array(self, n: int,
                           unpack_item: Callable[[], T]) -> List[T]:
        return [unpack_item() for _ in range(n)]

    def unpack_array(self, unpack_item: Callable[[], T]) -> List[T]:
        n = self.unpack_uint()
        if n * 4 > self.remaining():
            # every XDR item is at least 4 bytes; cheap sanity bound
            raise XdrError(f"array of {n} items cannot fit in "
                           f"{self.remaining()} bytes")
        return [unpack_item() for _ in range(n)]

    def unpack_int_array(self) -> List[int]:
        n = self.unpack_uint()
        raw = self._take(4 * n)
        return list(struct.unpack(f">{n}i", raw))
