"""ONC RPC v2 (RFC 5531) message structure and TCP record marking.

Implements the message framing Sun RPC uses over TCP:

* *record marking*: each message is one or more fragments, each prefixed by
  a 4-byte header whose high bit marks the last fragment;
* *call* messages: xid, CALL, rpcvers=2, (prog, vers, proc), null auth;
* *reply* messages: xid, REPLY, accepted/denied, accept status, results.

Only ``AUTH_NONE`` credentials are implemented — the paper's benchmark
programs do not authenticate.
"""

from __future__ import annotations

import socket
import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from .errors import RpcProtocolError
from .xdr import XdrDecoder, XdrEncoder

RPC_VERSION = 2

CALL = 0
REPLY = 1

# reply_stat
MSG_ACCEPTED = 0
MSG_DENIED = 1

# accept_stat
SUCCESS = 0
PROG_UNAVAIL = 1
PROG_MISMATCH = 2
PROC_UNAVAIL = 3
GARBAGE_ARGS = 4
SYSTEM_ERR = 5

ACCEPT_STAT_NAMES = {
    SUCCESS: "SUCCESS",
    PROG_UNAVAIL: "PROG_UNAVAIL",
    PROG_MISMATCH: "PROG_MISMATCH",
    PROC_UNAVAIL: "PROC_UNAVAIL",
    GARBAGE_ARGS: "GARBAGE_ARGS",
    SYSTEM_ERR: "SYSTEM_ERR",
}

_LAST_FRAGMENT = 0x80000000
_MAX_FRAGMENT = 1 << 20  # split large messages into 1 MiB fragments


# ----------------------------------------------------------------------
# record marking
# ----------------------------------------------------------------------

def write_record(sock: socket.socket, payload: bytes) -> None:
    """Send ``payload`` as a record-marked message."""
    view = memoryview(payload)
    offset = 0
    total = len(payload)
    if total == 0:
        sock.sendall(struct.pack(">I", _LAST_FRAGMENT))
        return
    while offset < total:
        chunk = view[offset:offset + _MAX_FRAGMENT]
        offset += len(chunk)
        header = len(chunk) | (_LAST_FRAGMENT if offset >= total else 0)
        sock.sendall(struct.pack(">I", header) + bytes(chunk))


def read_record(sock: socket.socket) -> Optional[bytes]:
    """Read one record-marked message; None on clean EOF."""
    fragments = []
    while True:
        header = _recv_exact(sock, 4)
        if header is None:
            if fragments:
                raise RpcProtocolError("connection closed mid-record")
            return None
        (word,) = struct.unpack(">I", header)
        length = word & ~_LAST_FRAGMENT
        body = _recv_exact(sock, length)
        if body is None:
            raise RpcProtocolError("connection closed mid-fragment")
        fragments.append(body)
        if word & _LAST_FRAGMENT:
            return b"".join(fragments)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# call / reply messages
# ----------------------------------------------------------------------

@dataclass
class CallHeader:
    xid: int
    prog: int
    vers: int
    proc: int


def encode_call(header: CallHeader, args: bytes) -> bytes:
    enc = XdrEncoder()
    enc.pack_uint(header.xid)
    enc.pack_uint(CALL)
    enc.pack_uint(RPC_VERSION)
    enc.pack_uint(header.prog)
    enc.pack_uint(header.vers)
    enc.pack_uint(header.proc)
    enc.pack_uint(0)  # cred flavor AUTH_NONE
    enc.pack_uint(0)  # cred length
    enc.pack_uint(0)  # verf flavor AUTH_NONE
    enc.pack_uint(0)  # verf length
    return enc.getvalue() + args


def decode_call(message: bytes) -> Tuple[CallHeader, bytes]:
    dec = XdrDecoder(message)
    xid = dec.unpack_uint()
    mtype = dec.unpack_uint()
    if mtype != CALL:
        raise RpcProtocolError(f"expected CALL, got message type {mtype}")
    rpcvers = dec.unpack_uint()
    if rpcvers != RPC_VERSION:
        raise RpcProtocolError(f"unsupported RPC version {rpcvers}")
    prog = dec.unpack_uint()
    vers = dec.unpack_uint()
    proc = dec.unpack_uint()
    _skip_auth(dec)  # cred
    _skip_auth(dec)  # verf
    return CallHeader(xid, prog, vers, proc), message[dec.position:]


def encode_reply(xid: int, accept_stat: int, results: bytes = b"") -> bytes:
    enc = XdrEncoder()
    enc.pack_uint(xid)
    enc.pack_uint(REPLY)
    enc.pack_uint(MSG_ACCEPTED)
    enc.pack_uint(0)  # verf flavor
    enc.pack_uint(0)  # verf length
    enc.pack_uint(accept_stat)
    return enc.getvalue() + results


def decode_reply(message: bytes) -> Tuple[int, int, bytes]:
    """Returns (xid, accept_stat, results)."""
    dec = XdrDecoder(message)
    xid = dec.unpack_uint()
    mtype = dec.unpack_uint()
    if mtype != REPLY:
        raise RpcProtocolError(f"expected REPLY, got message type {mtype}")
    reply_stat = dec.unpack_uint()
    if reply_stat == MSG_DENIED:
        raise RpcProtocolError("RPC message denied by server")
    if reply_stat != MSG_ACCEPTED:
        raise RpcProtocolError(f"bad reply_stat {reply_stat}")
    _skip_auth(dec)  # verf
    accept_stat = dec.unpack_uint()
    return xid, accept_stat, message[dec.position:]


def _skip_auth(dec: XdrDecoder) -> None:
    _flavor = dec.unpack_uint()
    length = dec.unpack_uint()
    if length > 400:
        raise RpcProtocolError(f"auth body of {length} bytes exceeds RFC max")
    dec.unpack_fixed_opaque(length)
