"""Sun RPC (ONC RPC v2) over TCP with XDR — the Fig. 4 baseline.

A from-scratch implementation of the classic RPC stack the paper compares
SOAP-bin against: XDR data representation (big-endian, 4-byte aligned,
symmetric translation at both ends), record-marked TCP framing, numbered
programs/versions/procedures::

    from repro.sunrpc import RpcProgram, RpcServer, RpcClient, XdrEncoder

    program = RpcProgram(prog=0x20000001, vers=1)

    @program.procedure(1)
    def echo(args):
        return args

    with RpcServer() as server:
        server.add_program(program)
        with RpcClient(server.address, 0x20000001, 1) as client:
            assert client.call(1, b"1234") == b"1234"
"""

from .client import RpcClient
from .errors import RpcDenied, RpcError, RpcProtocolError, XdrError
from .rpc import (ACCEPT_STAT_NAMES, GARBAGE_ARGS, PROC_UNAVAIL,
                  PROG_UNAVAIL, SUCCESS, SYSTEM_ERR, CallHeader, decode_call,
                  decode_reply, encode_call, encode_reply, read_record,
                  write_record)
from .server import RpcProgram, RpcServer
from .xdr import XdrDecoder, XdrEncoder

__all__ = [
    "RpcError", "XdrError", "RpcProtocolError", "RpcDenied",
    "XdrEncoder", "XdrDecoder",
    "CallHeader", "encode_call", "decode_call", "encode_reply",
    "decode_reply", "read_record", "write_record",
    "SUCCESS", "PROG_UNAVAIL", "PROC_UNAVAIL", "GARBAGE_ARGS", "SYSTEM_ERR",
    "ACCEPT_STAT_NAMES",
    "RpcProgram", "RpcServer", "RpcClient",
]
