"""A threaded Sun RPC (ONC RPC v2) server over TCP."""

from __future__ import annotations

import socket
import threading
from typing import Callable, Dict, Tuple

from .errors import RpcProtocolError
from .rpc import (GARBAGE_ARGS, PROC_UNAVAIL, PROG_UNAVAIL, SUCCESS,
                  SYSTEM_ERR, decode_call, encode_reply, read_record,
                  write_record)
from .xdr import XdrError

#: A procedure takes XDR-encoded argument bytes and returns XDR result bytes.
Procedure = Callable[[bytes], bytes]


class RpcProgram:
    """One (program number, version) with numbered procedures.

    Procedure 0 is conventionally the null procedure (ping); it is
    registered automatically and simply returns no results.
    """

    def __init__(self, prog: int, vers: int) -> None:
        self.prog = prog
        self.vers = vers
        self._procedures: Dict[int, Procedure] = {0: lambda args: b""}

    def register(self, proc: int, fn: Procedure) -> None:
        if proc == 0:
            raise ValueError("procedure 0 is reserved for the null procedure")
        self._procedures[proc] = fn

    def procedure(self, proc: int):
        """Decorator form of :meth:`register`."""
        def wrap(fn: Procedure) -> Procedure:
            self.register(proc, fn)
            return fn
        return wrap

    def lookup(self, proc: int):
        return self._procedures.get(proc)


class RpcServer:
    """Serves one or more :class:`RpcProgram` instances over TCP.

    Mirrors the classic rpcgen server shape: accept loop, per-connection
    thread, record-marked messages, accept-stat error reporting.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._programs: Dict[Tuple[int, int], RpcProgram] = {}
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)
        self.address: Tuple[str, int] = self._sock.getsockname()
        self._running = True
        self.calls_served = 0
        self._thread = threading.Thread(target=self._accept_loop,
                                        name="sunrpc-server", daemon=True)
        self._thread.start()

    def add_program(self, program: RpcProgram) -> None:
        self._programs[(program.prog, program.vers)] = program

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with conn:
            while self._running:
                try:
                    message = read_record(conn)
                except (RpcProtocolError, OSError):
                    return
                if message is None:
                    return
                try:
                    response = self._handle(message)
                except RpcProtocolError:
                    return  # cannot even parse the xid; drop the connection
                try:
                    write_record(conn, response)
                except OSError:
                    return
                self.calls_served += 1

    def _handle(self, message: bytes) -> bytes:
        header, args = decode_call(message)
        program = self._programs.get((header.prog, header.vers))
        if program is None:
            return encode_reply(header.xid, PROG_UNAVAIL)
        fn = program.lookup(header.proc)
        if fn is None:
            return encode_reply(header.xid, PROC_UNAVAIL)
        try:
            results = fn(args)
        except XdrError:
            return encode_reply(header.xid, GARBAGE_ARGS)
        except Exception:  # noqa: BLE001 - server boundary
            return encode_reply(header.xid, SYSTEM_ERR)
        return encode_reply(header.xid, SUCCESS, results)

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._running = False
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "RpcServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
