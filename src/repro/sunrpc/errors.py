"""Exception types for the Sun RPC / XDR baseline."""

from __future__ import annotations


class RpcError(Exception):
    """Base class for Sun RPC errors."""


class XdrError(RpcError):
    """XDR encoding/decoding failure (truncation, bad padding...)."""


class RpcProtocolError(RpcError):
    """A wire message violated the ONC RPC v2 protocol."""


class RpcDenied(RpcError):
    """The server rejected or could not execute the call."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(f"RPC denied: {reason}")
