"""Media substrate: PPM images, image operations, SVG, synthetic data."""

from .ops import (OPERATIONS, apply_operation, crop, edge_detect, grayscale,
                  identity, invert, scale_half, scale_nearest)
from .ppm import PpmError, decode, encode_p3, encode_p6, image_bytes
from .svg import SvgDocument, molecule_to_svg
from .synth import MoleculeTrajectory, starfield

__all__ = [
    "PpmError", "encode_p6", "encode_p3", "decode", "image_bytes",
    "OPERATIONS", "apply_operation", "grayscale", "scale_nearest",
    "scale_half", "edge_detect", "crop", "invert", "identity",
    "SvgDocument", "molecule_to_svg",
    "MoleculeTrajectory", "starfield",
]
