"""PPM image codec (P6 binary and P3 ASCII variants).

The imaging application transports "raw sensor data represented in ppm
format" (Fig. 3) — PPM because "it is not suitable to use lossy compression
methods like JPEG" on raw telescope data.  Images are numpy arrays of shape
``(height, width, 3)`` and dtype ``uint8``.
"""

from __future__ import annotations

import re
from typing import Tuple

import numpy as np


class PpmError(Exception):
    """Raised on malformed PPM data."""


def encode_p6(image: np.ndarray) -> bytes:
    """Encode an image as binary PPM (P6)."""
    image = _check_image(image)
    height, width, _ = image.shape
    header = f"P6\n{width} {height}\n255\n".encode("ascii")
    return header + image.tobytes()


def encode_p3(image: np.ndarray) -> bytes:
    """Encode an image as ASCII PPM (P3) — the bulky text twin of P6."""
    image = _check_image(image)
    height, width, _ = image.shape
    lines = [f"P3\n{width} {height}\n255"]
    flat = image.reshape(-1)
    for start in range(0, len(flat), 15):
        lines.append(" ".join(str(v) for v in flat[start:start + 15]))
    return ("\n".join(lines) + "\n").encode("ascii")


def decode(data: bytes) -> np.ndarray:
    """Decode P6 or P3 PPM bytes into an image array."""
    if data[:2] == b"P6":
        return _decode_p6(data)
    if data[:2] == b"P3":
        return _decode_p3(data)
    raise PpmError(f"not a PPM image (magic {data[:2]!r})")


def _decode_p6(data: bytes) -> np.ndarray:
    width, height, maxval, offset = _parse_header(data)
    if maxval > 255:
        raise PpmError("16-bit PPM is not supported")
    expected = width * height * 3
    body = data[offset:offset + expected]
    if len(body) != expected:
        raise PpmError(
            f"truncated P6 body: expected {expected} bytes, got {len(body)}")
    return np.frombuffer(body, dtype=np.uint8).reshape(height, width, 3).copy()


def _decode_p3(data: bytes) -> np.ndarray:
    text = data.decode("ascii", "replace")
    tokens = re.sub(r"#[^\n]*", "", text).split()
    if tokens[0] != "P3":
        raise PpmError("not a P3 image")
    try:
        width, height, maxval = int(tokens[1]), int(tokens[2]), int(tokens[3])
        values = [int(t) for t in tokens[4:4 + width * height * 3]]
    except (ValueError, IndexError):
        raise PpmError("malformed P3 body")
    if len(values) != width * height * 3:
        raise PpmError("truncated P3 body")
    if maxval > 255:
        raise PpmError("16-bit PPM is not supported")
    return np.array(values, dtype=np.uint8).reshape(height, width, 3)


def _parse_header(data: bytes) -> Tuple[int, int, int, int]:
    """Parse the P6 header; returns (width, height, maxval, body offset)."""
    fields = []
    pos = 2  # past magic
    while len(fields) < 3:
        while pos < len(data) and data[pos:pos + 1].isspace():
            pos += 1
        if data[pos:pos + 1] == b"#":  # comment to end of line
            nl = data.find(b"\n", pos)
            if nl < 0:
                raise PpmError("unterminated header comment")
            pos = nl + 1
            continue
        start = pos
        while pos < len(data) and not data[pos:pos + 1].isspace():
            pos += 1
        token = data[start:pos]
        if not token.isdigit():
            raise PpmError(f"bad header token {token!r}")
        fields.append(int(token))
    # exactly one whitespace byte separates the header from the body
    pos += 1
    width, height, maxval = fields
    if width <= 0 or height <= 0:
        raise PpmError(f"bad dimensions {width}x{height}")
    return width, height, maxval, pos


def _check_image(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise PpmError(f"image must be (H, W, 3), got {image.shape}")
    if image.dtype != np.uint8:
        image = np.clip(image, 0, 255).astype(np.uint8)
    return image


def image_bytes(width: int, height: int) -> int:
    """Size of a raw (P6) PPM body for the given resolution.

    >>> image_bytes(640, 480)  # the paper's "close to 1MB" response
    921600
    """
    return width * height * 3
