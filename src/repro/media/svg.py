"""SVG generation — the remote-visualization output format.

"the display expects data in SVG format, which is just an XML document"
(§IV-C.4).  Built directly on :mod:`repro.xmlcore`, so the visualization
pipeline exercises the same XML machinery the SOAP path does.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from ..xmlcore import SVG_NS, Element, tostring


class SvgDocument:
    """A small SVG builder: shapes in, XML text out."""

    def __init__(self, width: int, height: int,
                 background: Optional[str] = None) -> None:
        self.root = Element("svg", {
            "xmlns": SVG_NS,
            "width": str(width),
            "height": str(height),
            "viewBox": f"0 0 {width} {height}",
        })
        if background is not None:
            self.rect(0, 0, width, height, fill=background)

    def circle(self, cx: float, cy: float, r: float, fill: str = "black",
               **attrs: str) -> Element:
        el = self.root.subelement("circle", {
            "cx": _fmt(cx), "cy": _fmt(cy), "r": _fmt(r), "fill": fill})
        el.attrib.update({k.replace("_", "-"): str(v)
                          for k, v in attrs.items()})
        return el

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str = "black", stroke_width: float = 1.0) -> Element:
        return self.root.subelement("line", {
            "x1": _fmt(x1), "y1": _fmt(y1), "x2": _fmt(x2), "y2": _fmt(y2),
            "stroke": stroke, "stroke-width": _fmt(stroke_width)})

    def rect(self, x: float, y: float, width: float, height: float,
             fill: str = "black") -> Element:
        return self.root.subelement("rect", {
            "x": _fmt(x), "y": _fmt(y), "width": _fmt(width),
            "height": _fmt(height), "fill": fill})

    def text(self, x: float, y: float, content: str,
             fill: str = "black", font_size: int = 12) -> Element:
        el = self.root.subelement("text", {
            "x": _fmt(x), "y": _fmt(y), "fill": fill,
            "font-size": str(font_size)})
        el.text = content
        return el

    def to_xml(self, indent: Optional[int] = None) -> str:
        return tostring(self.root, indent=indent, xml_declaration=True)

    def __len__(self) -> int:
        return len(self.root)


def _fmt(value: float) -> str:
    return f"{value:.2f}".rstrip("0").rstrip(".")


def molecule_to_svg(atoms: Iterable[Dict[str, Any]],
                    bonds: Iterable[Tuple[int, int]],
                    width: int = 480, height: int = 480,
                    atom_radius: float = 4.0) -> str:
    """Render a molecular-dynamics timestep as SVG.

    Atoms are dicts with ``id``, ``x``, ``y`` in [0, 1] (normalized
    coordinates); bonds are ``(atom_id, atom_id)`` pairs.  This is the
    filter output the display client of §IV-C.4 consumes.
    """
    atom_list = list(atoms)
    positions = {atom["id"]: (atom["x"] * width, atom["y"] * height)
                 for atom in atom_list}
    doc = SvgDocument(width, height, background="#101020")
    for a, b in bonds:
        if a in positions and b in positions:
            (x1, y1), (x2, y2) = positions[a], positions[b]
            doc.line(x1, y1, x2, y2, stroke="#8899cc", stroke_width=1.2)
    for atom in atom_list:
        x, y = positions[atom["id"]]
        doc.circle(x, y, atom_radius, fill="#ffcc33", stroke="#886600")
    return doc.to_xml()
