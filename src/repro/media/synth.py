"""Synthetic workload data: star-field images and molecule trajectories.

The paper's data came from telescopes (Skyserver-like image servers) and
molecular-dynamics simulations; neither is shippable, so these generators
produce deterministic stand-ins with the same shapes and sizes — 640x480x3
raw frames (~0.9 MB) and ~4 KB-per-timestep bond graphs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np


def starfield(width: int = 640, height: int = 480, n_stars: int = 120,
              seed: int = 51) -> np.ndarray:
    """A synthetic low-light astronomy frame (the Skyserver stand-in).

    Dark sky with Poisson-ish noise plus gaussian star blobs of varying
    brightness.  Deterministic per seed.
    """
    rng = np.random.default_rng(seed)
    sky = rng.poisson(6.0, size=(height, width)).astype(np.float64)
    ys, xs = np.mgrid[0:height, 0:width]
    for _ in range(n_stars):
        cx = rng.uniform(0, width)
        cy = rng.uniform(0, height)
        brightness = rng.uniform(40, 255)
        sigma = rng.uniform(0.8, 2.5)
        d2 = (xs - cx) ** 2 + (ys - cy) ** 2
        mask = d2 < (6 * sigma) ** 2
        sky[mask] += brightness * np.exp(-d2[mask] / (2 * sigma * sigma))
    frame = np.clip(sky, 0, 255).astype(np.uint8)
    return np.repeat(frame[..., None], 3, axis=2)


class MoleculeTrajectory:
    """A deterministic molecular-dynamics trajectory.

    Atoms start on a jittered grid and random-walk between timesteps; bonds
    connect atoms within a cutoff radius, recomputed per timestep (so the
    graph changes over time, as a real bond server's would).

    The default sizing targets the paper's "about 4KB" per timestep: with
    ``n_atoms=100``, one timestep is 100 atoms x (id + x + y + z as
    int32/float64) plus ~140 bonds — just under 4 KB in PBIO form.
    """

    def __init__(self, n_atoms: int = 100, cutoff: float = 0.10,
                 step_size: float = 0.01, seed: int = 7) -> None:
        self.n_atoms = n_atoms
        self.cutoff = cutoff
        self.step_size = step_size
        self._rng = np.random.default_rng(seed)
        side = int(np.ceil(np.sqrt(n_atoms)))
        grid = np.stack(np.meshgrid(np.linspace(0.1, 0.9, side),
                                    np.linspace(0.1, 0.9, side)), axis=-1)
        self._positions = (grid.reshape(-1, 2)[:n_atoms]
                           + self._rng.normal(0, 0.01, (n_atoms, 2)))
        self._z = self._rng.uniform(0.0, 1.0, n_atoms)
        self._step = 0

    def advance(self) -> None:
        """Move every atom one random-walk step (reflecting at the walls)."""
        delta = self._rng.normal(0.0, self.step_size, self._positions.shape)
        self._positions = np.abs(self._positions + delta)
        self._positions = 1.0 - np.abs(1.0 - self._positions)
        self._step += 1

    def timestep(self) -> Dict[str, object]:
        """The current timestep as a bond-server message value."""
        atoms = [{"id": i,
                  "x": float(self._positions[i, 0]),
                  "y": float(self._positions[i, 1]),
                  "z": float(self._z[i])}
                 for i in range(self.n_atoms)]
        bonds = [{"a": a, "b": b} for a, b in self.bonds()]
        return {"step": self._step, "atoms": atoms, "bonds": bonds}

    def bonds(self) -> List[Tuple[int, int]]:
        """Atom pairs within the cutoff radius (the bond graph's edges)."""
        diff = self._positions[:, None, :] - self._positions[None, :, :]
        d2 = np.einsum("ijk,ijk->ij", diff, diff)
        close = d2 < self.cutoff * self.cutoff
        pairs = np.argwhere(np.triu(close, k=1))
        return [(int(a), int(b)) for a, b in pairs]

    def run(self, n_steps: int) -> List[Dict[str, object]]:
        """Generate ``n_steps`` consecutive timesteps."""
        out = []
        for _ in range(n_steps):
            out.append(self.timestep())
            self.advance()
        return out
