"""Image transformations: the operations the image server offers.

"Transformations include routines like scaling, edge detection, etc."
(§IV-C.1).  All operations take and return ``(H, W, 3) uint8`` arrays.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np


def grayscale(image: np.ndarray) -> np.ndarray:
    """Luma grayscale, replicated over three channels."""
    weights = np.array([0.299, 0.587, 0.114])
    gray = (image.astype(np.float64) @ weights)
    return np.repeat(np.clip(gray, 0, 255).astype(np.uint8)[..., None], 3,
                     axis=2)


def scale_nearest(image: np.ndarray, width: int, height: int) -> np.ndarray:
    """Nearest-neighbour resize to exactly (height, width)."""
    if width <= 0 or height <= 0:
        raise ValueError("target dimensions must be positive")
    src_h, src_w = image.shape[:2]
    rows = (np.arange(height) * (src_h / height)).astype(np.intp)
    cols = (np.arange(width) * (src_w / width)).astype(np.intp)
    return image[rows][:, cols].copy()


def scale_half(image: np.ndarray) -> np.ndarray:
    """2x2 box-filter downscale — the 640x480 -> 320x240 quality step."""
    h, w = image.shape[:2]
    h2, w2 = h // 2, w // 2
    trimmed = image[:h2 * 2, :w2 * 2].astype(np.uint16)
    pooled = (trimmed[0::2, 0::2] + trimmed[1::2, 0::2]
              + trimmed[0::2, 1::2] + trimmed[1::2, 1::2]) // 4
    return pooled.astype(np.uint8)


def edge_detect(image: np.ndarray) -> np.ndarray:
    """Sobel edge magnitude (the paper's demo transformation)."""
    gray = (image.astype(np.float64) @ np.array([0.299, 0.587, 0.114]))
    padded = np.pad(gray, 1, mode="edge")
    gx = (padded[:-2, 2:] + 2 * padded[1:-1, 2:] + padded[2:, 2:]
          - padded[:-2, :-2] - 2 * padded[1:-1, :-2] - padded[2:, :-2])
    gy = (padded[2:, :-2] + 2 * padded[2:, 1:-1] + padded[2:, 2:]
          - padded[:-2, :-2] - 2 * padded[:-2, 1:-1] - padded[:-2, 2:])
    magnitude = np.sqrt(gx * gx + gy * gy)
    scaled = np.clip(magnitude / magnitude.max() * 255 if magnitude.max()
                     else magnitude, 0, 255).astype(np.uint8)
    return np.repeat(scaled[..., None], 3, axis=2)


def crop(image: np.ndarray, x: int, y: int, width: int,
         height: int) -> np.ndarray:
    """Crop to a region of interest (the military-application filter of §I)."""
    h, w = image.shape[:2]
    if not (0 <= x < w and 0 <= y < h):
        raise ValueError(f"crop origin ({x}, {y}) outside {w}x{h} image")
    if width <= 0 or height <= 0:
        raise ValueError("crop dimensions must be positive")
    return image[y:min(y + height, h), x:min(x + width, w)].copy()


def invert(image: np.ndarray) -> np.ndarray:
    """Negative (useful on astronomy plates)."""
    return (255 - image.astype(np.int16)).astype(np.uint8)


def identity(image: np.ndarray) -> np.ndarray:
    """No transformation (fetch the raw frame)."""
    return image.copy()


#: Named operations the image server dispatches on.
OPERATIONS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "identity": identity,
    "grayscale": grayscale,
    "edge": edge_detect,
    "invert": invert,
}


def apply_operation(name: str, image: np.ndarray) -> np.ndarray:
    """Apply a named operation; unknown names raise ``KeyError``."""
    try:
        op = OPERATIONS[name]
    except KeyError:
        raise KeyError(f"unknown image operation {name!r}; "
                       f"available: {sorted(OPERATIONS)}")
    return op(image)
