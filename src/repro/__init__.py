"""SOAP-binQ: high-performance SOAP with continuous quality management.

A from-scratch Python reproduction of Seshasayee, Schwan & Widener,
*SOAP-binQ: High-Performance SOAP with Continuous Quality Management*
(ICDCS 2004), including every substrate the paper builds on:

==================  =====================================================
``repro.xmlcore``   hand-written XML tokenizer / tree / pull parser
``repro.pbio``      PBIO binary formats, format server, generated codecs
``repro.compress``  Lempel-Ziv codecs (LZSS, LZW, zlib)
``repro.http11``    minimal HTTP/1.1 client + threaded server
``repro.netsim``    deterministic links, cross-traffic, virtual clocks
``repro.transport`` channel abstraction (sockets / simulated / direct)
``repro.sunrpc``    Sun RPC + XDR baseline (Fig. 4)
``repro.soap``      standard XML SOAP 1.1 (envelope, dispatch, client)
``repro.wsdl``      WSDL parser/emitter + stub-generating compiler
``repro.core``      SOAP-bin + SOAP-binQ (modes, quality files, RTT)
``repro.echo``      ECho-style pub/sub with runtime filters
``repro.media``     PPM images, image ops, SVG, synthetic workloads
``repro.apps``      the four evaluation applications
``repro.bench``     the figure/table reproduction harness
==================  =====================================================

Quick taste (see ``examples/quickstart.py`` for the full tour)::

    from repro import pbio
    from repro.core import SoapBinClient, SoapBinService
    from repro.transport import DirectChannel

    registry = pbio.FormatRegistry()
    req = pbio.Format.from_dict("EchoRequest", {"data": "float64[]"})
    res = pbio.Format.from_dict("EchoResponse", {"n": "int32"})
    registry.register(req); registry.register(res)

    service = SoapBinService(registry)
    service.add_operation("Echo", req, res,
                          lambda p: {"n": len(p["data"])})
    client = SoapBinClient(DirectChannel(service.endpoint), registry)
    assert client.call("Echo", {"data": [1.0, 2.0]}, req, res) == {"n": 2}
"""

__version__ = "1.0.0"

from . import (apps, bench, compress, core, echo, http11, media, netsim,
               pbio, soap, sunrpc, transport, wsdl, xmlcore)

__all__ = [
    "xmlcore", "pbio", "compress", "http11", "netsim", "transport",
    "sunrpc", "soap", "wsdl", "core", "echo", "media", "apps", "bench",
    "__version__",
]
