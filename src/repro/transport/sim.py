"""Simulated transport: in-process calls charged to a link model.

:class:`SimChannel` is the deterministic testbed.  A call costs:

* request transfer over the link (at the virtual time of sending),
* server processing time (a pluggable model, default zero),
* response transfer (at the virtual time the response starts).

Time advances on the injected virtual clock, so application-level RTT
measurement — the heart of SOAP-binQ's continuous quality management —
observes exactly the congestion the scenario scripts.  Every call is logged
for the response-time figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..netsim.clock import VirtualClock
from ..netsim.link import LinkModel
from .base import Channel, ChannelReply, Endpoint

#: Model of server-side processing time, given request and response sizes.
ServerTimeModel = Callable[[int, int], float]


@dataclass
class CallRecord:
    """Timing log entry for one simulated exchange."""

    start_time: float
    end_time: float
    request_bytes: int
    response_bytes: int

    @property
    def elapsed(self) -> float:
        return self.end_time - self.start_time


class SimChannel(Channel):
    """A channel whose latency comes from a :class:`LinkModel`.

    Parameters
    ----------
    endpoint:
        The server-side handler, invoked in-process.
    link:
        Link model; its cross-traffic schedule is evaluated against the
        virtual clock, so congestion happens "when" the scenario says.
    clock:
        The virtual clock shared by client, server and scenario.
    server_time:
        Optional processing-time model (seconds) charged between request
        arrival and response send; defaults to free.
    """

    def __init__(self, endpoint: Endpoint, link: LinkModel,
                 clock: Optional[VirtualClock] = None,
                 server_time: Optional[ServerTimeModel] = None) -> None:
        self.endpoint = endpoint
        self.link = link
        self.clock = clock or VirtualClock()
        self.server_time = server_time
        self.log: List[CallRecord] = []

    def call(self, body: bytes, content_type: str,
             headers: Optional[Dict[str, str]] = None) -> ChannelReply:
        start = self.clock.now()
        self.clock.advance(self.link.transfer_time(len(body), start))
        reply = self.endpoint(body, content_type, dict(headers or {}))
        if self.server_time is not None:
            self.clock.advance(self.server_time(len(body), len(reply.body)))
        self.clock.advance(
            self.link.transfer_time(len(reply.body), self.clock.now()))
        record = CallRecord(start_time=start, end_time=self.clock.now(),
                            request_bytes=len(body),
                            response_bytes=len(reply.body))
        self.log.append(record)
        return reply

    # ------------------------------------------------------------------
    def response_times(self) -> List[float]:
        """Elapsed time of every call, in call order (figure series)."""
        return [record.elapsed for record in self.log]

    def timeline(self) -> List[tuple]:
        """``(start_time, elapsed)`` pairs — x/y series for Figs. 8/9."""
        return [(record.start_time, record.elapsed) for record in self.log]
