"""Transport channels: real HTTP sockets or a simulated link."""

from .base import Channel, ChannelReply, DirectChannel, Endpoint
from .sim import CallRecord, ServerTimeModel, SimChannel
from .sockets import (BatchResult, HttpChannel, PipelinedHttpChannel,
                      PooledHttpChannel, endpoint_http_handler,
                      serve_endpoint)

__all__ = [
    "Channel", "ChannelReply", "Endpoint", "DirectChannel",
    "SimChannel", "CallRecord", "ServerTimeModel",
    "HttpChannel", "PooledHttpChannel", "PipelinedHttpChannel",
    "BatchResult", "endpoint_http_handler", "serve_endpoint",
]
