"""Real-socket transport: Channel over HTTP/1.1."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from ..http11 import (Headers, HttpConnection, HttpConnectionPool,
                      HttpServer, Request, Response, default_pool)
from .base import Channel, ChannelReply, Endpoint


class HttpChannel(Channel):
    """A channel speaking HTTP POST over a persistent connection."""

    def __init__(self, address: Union[Tuple[str, int], str],
                 target: str = "/", timeout: float = 30.0) -> None:
        self.connection = HttpConnection(address, timeout=timeout)
        self.target = target

    def call(self, body: bytes, content_type: str,
             headers: Optional[Dict[str, str]] = None) -> ChannelReply:
        extra = Headers()
        for name, value in (headers or {}).items():
            extra.set(name, value)
        response = self.connection.post(self.target, body, content_type,
                                        headers=extra)
        return ChannelReply(
            body=response.body,
            content_type=response.content_type,
            headers={name: value for name, value in response.headers},
            status=response.status,
        )

    def close(self) -> None:
        self.connection.close()


class PooledHttpChannel(Channel):
    """A channel drawing keep-alive connections from a shared pool.

    Where :class:`HttpChannel` pins one socket per channel object, this
    variant checks a connection out of an :class:`HttpConnectionPool` per
    call — the right shape when many short-lived channels (or many threads)
    target the same host: TCP setup is paid once per pooled socket, not
    once per channel.
    """

    def __init__(self, address: Union[Tuple[str, int], str],
                 target: str = "/",
                 pool: Optional[HttpConnectionPool] = None) -> None:
        self.address = address
        self.target = target
        self.pool = pool if pool is not None else default_pool()

    def call(self, body: bytes, content_type: str,
             headers: Optional[Dict[str, str]] = None) -> ChannelReply:
        extra = Headers()
        for name, value in (headers or {}).items():
            extra.set(name, value)
        response = self.pool.post(self.address, self.target, body,
                                  content_type, headers=extra)
        return ChannelReply(
            body=response.body,
            content_type=response.content_type,
            headers={name: value for name, value in response.headers},
            status=response.status,
        )

    def close(self) -> None:
        # Connections belong to the pool; closing the channel is a no-op.
        pass


def endpoint_http_handler(endpoint: Endpoint) -> Callable[[Request], Response]:
    """Adapt an endpoint into an :class:`~repro.http11.HttpServer` handler."""

    def handler(request: Request) -> Response:
        if request.method != "POST":
            return Response.text(405, "POST only")
        headers = {name: value for name, value in request.headers}
        reply = endpoint(request.body, request.content_type, headers)
        response = Response(status=reply.status, body=reply.body)
        response.headers.set("Content-Type", reply.content_type)
        for name, value in reply.headers.items():
            response.headers.set(name, value)
        return response

    return handler


def serve_endpoint(endpoint: Endpoint, host: str = "127.0.0.1",
                   port: int = 0) -> HttpServer:
    """Start an HTTP server exposing ``endpoint`` at every path."""
    return HttpServer(endpoint_http_handler(endpoint), host=host, port=port)
