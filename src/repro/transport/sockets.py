"""Real-socket transport: Channel over HTTP/1.1.

Both socket channels optionally run every call under a
:class:`~repro.reliability.policy.RetryPolicy` (plus an optional
:class:`~repro.reliability.breaker.CircuitBreaker`): pass ``retry_policy=``
and transient transport faults — stale sockets, refused connects, 503
shedding from ``HttpServer(max_connections=...)`` — are classified, retried
within the policy's deadline budget, and surfaced as typed
:class:`~repro.reliability.errors.ReliabilityError` instead of bare
``OSError``.  Without a policy the channels behave exactly as before.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import (Callable, Dict, List, Optional, Sequence, Tuple, Union,
                    TYPE_CHECKING)

from ..http11 import (Headers, HttpConnection, HttpConnectionPool,
                      HttpError, HttpServer, PipelinedHttpConnection,
                      PipelineError, Request, Response, default_pool)
from .base import Channel, ChannelReply, Endpoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netsim.clock import Clock
    from ..reliability.breaker import CircuitBreaker
    from ..reliability.policy import CallMeta, RetryPolicy


def _policed(channel: "HttpChannel | PooledHttpChannel",
             call_once: Callable[[Optional[Dict[str, str]]], ChannelReply],
             headers: Optional[Dict[str, str]]) -> ChannelReply:
    """Run one channel call under the channel's retry policy.

    When the policy carries an end-to-end deadline budget, every attempt is
    stamped with ``X-Deadline-Ms`` — the budget *remaining at send time* —
    so an admission-controlled server (see :mod:`repro.serving`) can refuse
    work this client is going to abandon anyway.  The value shrinks across
    retries because it is recomputed per attempt.

    Imported lazily so ``repro.transport`` and ``repro.reliability`` can be
    imported in either order without a cycle.
    """
    from ..netsim.clock import WallClock
    from ..reliability.channel import reply_unavailable
    from ..reliability.policy import call_with_policy
    from ..serving.deadline import with_deadline_header

    clock = channel.clock or WallClock()
    deadline = None
    if channel.retry_policy.deadline_s is not None:
        deadline = clock.now() + channel.retry_policy.deadline_s

    def attempt() -> ChannelReply:
        sent = headers
        if deadline is not None:
            sent = with_deadline_header(headers, deadline - clock.now())
        reply = call_once(sent)
        if reply.status == 503:
            raise reply_unavailable(reply)
        return reply

    try:
        reply, meta = call_with_policy(
            attempt, channel.retry_policy, clock=channel.clock,
            idempotent=channel.idempotent, breaker=channel.breaker)
    except Exception as exc:
        channel.last_call = getattr(exc, "meta", None)
        raise
    channel.last_call = meta
    return reply


class HttpChannel(Channel):
    """A channel speaking HTTP POST over a persistent connection."""

    def __init__(self, address: Union[Tuple[str, int], str],
                 target: str = "/", timeout: float = 30.0,
                 retry_policy: Optional["RetryPolicy"] = None,
                 breaker: Optional["CircuitBreaker"] = None,
                 clock: Optional["Clock"] = None,
                 idempotent: bool = True) -> None:
        if retry_policy is not None \
                and retry_policy.call_timeout_s is not None:
            timeout = retry_policy.call_timeout_s
        self.connection = HttpConnection(address, timeout=timeout)
        self.target = target
        self.retry_policy = retry_policy
        self.breaker = breaker
        self.clock = clock
        self.idempotent = idempotent
        self.last_call: Optional["CallMeta"] = None

    def call(self, body: bytes, content_type: str,
             headers: Optional[Dict[str, str]] = None) -> ChannelReply:
        if self.retry_policy is None:
            return self._call_once(body, content_type, headers)
        return _policed(
            self, lambda h: self._call_once(body, content_type, h), headers)

    def _call_once(self, body: bytes, content_type: str,
                   headers: Optional[Dict[str, str]]) -> ChannelReply:
        extra = Headers()
        for name, value in (headers or {}).items():
            extra.set(name, value)
        response = self.connection.post(self.target, body, content_type,
                                        headers=extra)
        return ChannelReply(
            body=response.body,
            content_type=response.content_type,
            headers={name: value for name, value in response.headers},
            status=response.status,
        )

    def close(self) -> None:
        self.connection.close()


class PooledHttpChannel(Channel):
    """A channel drawing keep-alive connections from a shared pool.

    Where :class:`HttpChannel` pins one socket per channel object, this
    variant checks a connection out of an :class:`HttpConnectionPool` per
    call — the right shape when many short-lived channels (or many threads)
    target the same host: TCP setup is paid once per pooled socket, not
    once per channel.
    """

    def __init__(self, address: Union[Tuple[str, int], str],
                 target: str = "/",
                 pool: Optional[HttpConnectionPool] = None,
                 retry_policy: Optional["RetryPolicy"] = None,
                 breaker: Optional["CircuitBreaker"] = None,
                 clock: Optional["Clock"] = None,
                 idempotent: bool = True) -> None:
        self.address = address
        self.target = target
        self.pool = pool if pool is not None else default_pool()
        self.retry_policy = retry_policy
        self.breaker = breaker
        self.clock = clock
        self.idempotent = idempotent
        self.last_call: Optional["CallMeta"] = None

    def call(self, body: bytes, content_type: str,
             headers: Optional[Dict[str, str]] = None) -> ChannelReply:
        if self.retry_policy is None:
            return self._call_once(body, content_type, headers)
        return _policed(
            self, lambda h: self._call_once(body, content_type, h), headers)

    def _call_once(self, body: bytes, content_type: str,
                   headers: Optional[Dict[str, str]]) -> ChannelReply:
        extra = Headers()
        for name, value in (headers or {}).items():
            extra.set(name, value)
        response = self.pool.post(self.address, self.target, body,
                                  content_type, headers=extra)
        return ChannelReply(
            body=response.body,
            content_type=response.content_type,
            headers={name: value for name, value in response.headers},
            status=response.status,
        )

    def close(self) -> None:
        # Connections belong to the pool; closing the channel is a no-op.
        pass


def _to_reply(response: Response) -> ChannelReply:
    return ChannelReply(
        body=response.body,
        content_type=response.content_type,
        headers={name: value for name, value in response.headers},
        status=response.status,
    )


@dataclass
class BatchResult:
    """Outcome of one sub-call in a :meth:`PipelinedHttpChannel.call_many`
    batch: exactly one of ``reply`` / ``error`` is set, and ``meta`` carries
    the per-sub-call :class:`~repro.reliability.policy.CallMeta` whenever a
    retry policy drove the batch."""

    reply: Optional[ChannelReply] = None
    error: Optional[Exception] = None
    meta: Optional["CallMeta"] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.reply is not None


class _PendingCall:
    """One sub-call's mutable state inside the batch engine."""

    __slots__ = ("index", "body", "headers", "meta")

    def __init__(self, index: int, body: bytes,
                 headers: Optional[Dict[str, str]], meta) -> None:
        self.index = index
        self.body = body
        self.headers = headers
        self.meta = meta


class PipelinedHttpChannel(Channel):
    """A channel that keeps up to ``depth`` requests in flight per
    connection and spreads batches across ``connections`` sockets.

    :meth:`call` behaves exactly like :class:`HttpChannel.call` (one
    request, policed when a ``retry_policy`` is configured).
    :meth:`call_many` is the concurrency layer: the batch is split into
    contiguous chunks, one per connection, each chunk driven through an
    HTTP/1.1 pipeline at the configured depth.  With a ``retry_policy``
    the engine re-drives *only the failed suffix* of a broken pipeline —
    completed prefix responses are never re-sent — under the same
    semantics as :func:`~repro.reliability.policy.call_with_policy`:
    typed failure classification, exponential backoff honoring
    ``Retry-After``, the end-to-end deadline budget stamped per attempt
    as ``X-Deadline-Ms``, and per-sub-call
    :class:`~repro.reliability.policy.CallMeta`.  503 replies are
    treated as retryable shedding (like every policed channel); without
    a policy they are returned as ordinary replies.
    """

    def __init__(self, address: Union[Tuple[str, int], str],
                 target: str = "/", depth: int = 8, connections: int = 1,
                 timeout: float = 30.0,
                 retry_policy: Optional["RetryPolicy"] = None,
                 breaker: Optional["CircuitBreaker"] = None,
                 clock: Optional["Clock"] = None,
                 idempotent: bool = True) -> None:
        if connections < 1:
            raise ValueError("connections must be >= 1")
        if retry_policy is not None \
                and retry_policy.call_timeout_s is not None:
            timeout = retry_policy.call_timeout_s
        self.address = address
        self.target = target
        self.depth = depth
        self.connections = connections
        self.timeout = timeout
        self.retry_policy = retry_policy
        self.breaker = breaker
        self.clock = clock
        self.idempotent = idempotent
        self.last_call: Optional["CallMeta"] = None
        #: per-sub-call metadata of the most recent call_many batch
        self.last_calls: List[Optional["CallMeta"]] = []
        #: dedicated connection for single calls (never shared with the
        #: batch workers, so call() stays safe alongside call_many())
        self._call_conn = PipelinedHttpConnection(address, depth=1,
                                                  timeout=timeout)
        self._pipes: List[PipelinedHttpConnection] = []

    # ------------------------------------------------------------------
    # single-call surface (Channel protocol)
    # ------------------------------------------------------------------
    def call(self, body: bytes, content_type: str,
             headers: Optional[Dict[str, str]] = None) -> ChannelReply:
        if self.retry_policy is None:
            return self._call_once(body, content_type, headers)
        return _policed(
            self, lambda h: self._call_once(body, content_type, h), headers)

    def _call_once(self, body: bytes, content_type: str,
                   headers: Optional[Dict[str, str]]) -> ChannelReply:
        return _to_reply(self._call_conn.request(
            self._build_request(body, content_type, headers)))

    # ------------------------------------------------------------------
    # batch surface
    # ------------------------------------------------------------------
    def call_many(self, bodies: Sequence[bytes], content_type: str,
                  headers: Optional[Union[Dict[str, str],
                                          Sequence[Optional[Dict[str, str]]]]]
                  = None) -> List[BatchResult]:
        """Drive ``bodies`` concurrently; one :class:`BatchResult` each.

        ``headers`` is either one dict shared by every sub-call or a
        per-sub-call sequence of the same length as ``bodies``.  Results
        come back in input order regardless of how the batch was spread
        across connections.
        """
        total = len(bodies)
        if total == 0:
            self.last_calls = []
            return []
        if headers is None or isinstance(headers, dict):
            headers_list: List[Optional[Dict[str, str]]] = \
                [headers] * total  # type: ignore[list-item]
        else:
            if len(headers) != total:
                raise ValueError(
                    f"got {len(headers)} header dicts for {total} bodies")
            headers_list = list(headers)
        fanout = min(self.connections, total)
        while len(self._pipes) < fanout:
            self._pipes.append(PipelinedHttpConnection(
                self.address, depth=self.depth, timeout=self.timeout))
        chunks: List[List[_PendingCall]] = [[] for _ in range(fanout)]
        per_chunk = -(-total // fanout)  # contiguous chunks, ceil division
        for index in range(total):
            chunks[index // per_chunk].append(
                _PendingCall(index, bodies[index], headers_list[index],
                             meta=None))
        results: Dict[int, BatchResult] = {}
        if fanout == 1:
            results.update(self._drive(self._pipes[0], chunks[0],
                                       content_type))
        else:
            errors: List[BaseException] = []
            lock = threading.Lock()

            def worker(pipe: PipelinedHttpConnection,
                       chunk: List[_PendingCall]) -> None:
                try:
                    chunk_results = self._drive(pipe, chunk, content_type)
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    with lock:
                        errors.append(exc)
                    return
                with lock:
                    results.update(chunk_results)

            threads = [threading.Thread(target=worker,
                                        args=(self._pipes[i], chunks[i]),
                                        daemon=True)
                       for i in range(fanout) if chunks[i]]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if errors:
                raise errors[0]
        ordered = [results[i] for i in range(total)]
        self.last_calls = [r.meta for r in ordered]
        return ordered

    # ------------------------------------------------------------------
    def _build_request(self, body: bytes, content_type: str,
                       headers: Optional[Dict[str, str]]) -> Request:
        extra = Headers()
        for name, value in (headers or {}).items():
            extra.set(name, value)
        request = Request(method="POST", target=self.target,
                          headers=extra, body=body)
        request.headers.set("Content-Type", content_type)
        return request

    def _drive(self, pipe: PipelinedHttpConnection,
               chunk: List[_PendingCall],
               content_type: str) -> Dict[int, BatchResult]:
        """Run one chunk through one pipelined connection (with retries)."""
        if self.retry_policy is None:
            return self._drive_once(pipe, chunk, content_type)
        return self._drive_policed(pipe, chunk, content_type)

    def _drive_once(self, pipe: PipelinedHttpConnection,
                    chunk: List[_PendingCall],
                    content_type: str) -> Dict[int, BatchResult]:
        results: Dict[int, BatchResult] = {}
        requests = [self._build_request(item.body, content_type,
                                        item.headers) for item in chunk]
        try:
            responses = pipe.request_many(requests)
        except PipelineError as exc:
            for item, response in zip(chunk, exc.responses):
                results[item.index] = BatchResult(reply=_to_reply(response))
            for item in chunk[len(exc.responses):]:
                results[item.index] = BatchResult(error=exc)
            return results
        except (HttpError, OSError) as exc:
            for item in chunk:
                results[item.index] = BatchResult(error=exc)
            return results
        for item, response in zip(chunk, responses):
            results[item.index] = BatchResult(reply=_to_reply(response))
        return results

    def _drive_policed(self, pipe: PipelinedHttpConnection,
                       chunk: List[_PendingCall],
                       content_type: str) -> Dict[int, BatchResult]:
        # The batched twin of reliability.policy.call_with_policy: same
        # classification, retry-safety, backoff and deadline rules, but
        # one *round* pipelines every still-pending sub-call, and only
        # the unanswered suffix of a broken round is re-driven.
        from ..netsim.clock import WallClock
        from ..reliability.channel import reply_unavailable
        from ..reliability.errors import (CircuitOpen, DeadlineExceeded,
                                          classify_failure)
        from ..reliability.policy import CallMeta
        from ..serving.deadline import with_deadline_header

        policy = self.retry_policy
        assert policy is not None
        clock = self.clock or WallClock()
        start = clock.now()
        deadline = (start + policy.deadline_s
                    if policy.deadline_s is not None else None)
        results: Dict[int, BatchResult] = {}
        for item in chunk:
            item.meta = CallMeta(deadline_s=policy.deadline_s)

        def finalize(item: _PendingCall, error) -> None:
            item.meta.elapsed_s = clock.now() - start
            if deadline is not None:
                item.meta.deadline_remaining_s = max(
                    0.0, deadline - clock.now())
            error.attempts = item.meta.attempts
            error.meta = item.meta
            results[item.index] = BatchResult(error=error, meta=item.meta)

        def succeed(item: _PendingCall, reply: ChannelReply) -> None:
            item.meta.elapsed_s = clock.now() - start
            if deadline is not None:
                item.meta.deadline_remaining_s = deadline - clock.now()
            results[item.index] = BatchResult(reply=reply, meta=item.meta)

        pending = list(chunk)
        while pending:
            if deadline is not None and clock.now() >= deadline:
                for item in pending:
                    item.meta.faults.append("DeadlineExceeded")
                    finalize(item, DeadlineExceeded(
                        f"deadline budget of {policy.deadline_s:g}s "
                        f"exhausted after {item.meta.attempts} attempt(s)"))
                return results
            for item in pending:
                item.meta.attempts += 1
            failed: List[Tuple[_PendingCall, object]] = []
            if self.breaker is not None and not self.breaker.allow():
                for item in pending:
                    failed.append((item, CircuitOpen(
                        "circuit breaker is open",
                        retry_after_s=self.breaker.cooldown_remaining())))
            else:
                requests = []
                for item in pending:
                    sent = item.headers
                    if deadline is not None:
                        sent = with_deadline_header(
                            item.headers, deadline - clock.now())
                    requests.append(self._build_request(
                        item.body, content_type, sent))
                answered: List[Response] = []
                batch_error: Optional[BaseException] = None
                try:
                    answered = pipe.request_many(requests)
                except PipelineError as exc:
                    answered = exc.responses
                    batch_error = exc
                except (HttpError, OSError) as exc:
                    batch_error = exc
                for item, response in zip(pending, answered):
                    if response.status == 503:
                        if self.breaker is not None:
                            self.breaker.record_failure()
                        failed.append(
                            (item, reply_unavailable(_to_reply(response))))
                    else:
                        if self.breaker is not None:
                            self.breaker.record_success()
                        succeed(item, _to_reply(response))
                if batch_error is not None:
                    # Every unanswered sub-call shares the round's typed
                    # error: the head of the suffix genuinely failed, the
                    # rest were aborted by pipeline ordering.  The shared
                    # bytes_written annotation keeps the conservative
                    # idempotency rule for all of them.
                    typed = classify_failure(batch_error)
                    for item in pending[len(answered):]:
                        if self.breaker is not None:
                            self.breaker.record_failure()
                        failed.append((item, typed))
            survivors: List[_PendingCall] = []
            pauses: List[float] = []
            for item, error in failed:
                item.meta.faults.append(type(error).__name__)
                if (not policy.may_retry(error, self.idempotent)
                        or item.meta.attempts >= policy.max_attempts):
                    finalize(item, error)
                    continue
                pause = policy.backoff_for(item.meta.attempts)
                if error.retry_after_s is not None:
                    pause = max(pause, error.retry_after_s)
                survivors.append(item)
                pauses.append(pause)
            if not survivors:
                return results
            pause = max(pauses)
            if deadline is not None and clock.now() + pause >= deadline:
                for item in survivors:
                    overrun = DeadlineExceeded(
                        f"backoff of {pause:g}s would overrun the "
                        f"{policy.deadline_s:g}s deadline budget")
                    item.meta.faults.append("DeadlineExceeded")
                    finalize(item, overrun)
                return results
            for item in survivors:
                item.meta.retried = True
                item.meta.backoff_s += pause
            clock.sleep(pause)
            pending = survivors
        return results

    def close(self) -> None:
        self._call_conn.close()
        for pipe in self._pipes:
            pipe.close()
        self._pipes = []


def endpoint_http_handler(endpoint: Endpoint) -> Callable[[Request], Response]:
    """Adapt an endpoint into an :class:`~repro.http11.HttpServer` handler."""

    def handler(request: Request) -> Response:
        if request.method != "POST":
            return Response.text(405, "POST only")
        headers = {name: value for name, value in request.headers}
        reply = endpoint(request.body, request.content_type, headers)
        response = Response(status=reply.status, body=reply.body)
        response.headers.set("Content-Type", reply.content_type)
        for name, value in reply.headers.items():
            response.headers.set(name, value)
        return response

    return handler


def serve_endpoint(endpoint: Endpoint, host: str = "127.0.0.1",
                   port: int = 0, **server_kwargs) -> HttpServer:
    """Start an HTTP server exposing ``endpoint`` at every path."""
    return HttpServer(endpoint_http_handler(endpoint), host=host, port=port,
                      **server_kwargs)
